"""Sanctioned seeded-stream derivation.

Baselines that train from scratch per task need a fresh-but-reproducible
RNG per ``(seed, task)`` pair.  Building ``np.random.SeedSequence`` inline
at each call site scatters the seeding policy across the codebase and is
exactly the pattern the ``RNG103`` repolint rule bans; this module is the
one sanctioned place such sequences are minted, so "one seed reproduces
the whole run" stays a property you can check mechanically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["derive_seed", "spawn_generators", "task_rng", "task_seed_sequence"]


def task_seed_sequence(seed: int, *components: int) -> np.random.SeedSequence:
    """Deterministic :class:`~numpy.random.SeedSequence` for a keyed stream.

    ``components`` identify the consumer — typically a task's
    ``label_index`` — so different tasks get independent streams while the
    same ``(seed, components)`` pair always reproduces the same one.
    """
    return np.random.SeedSequence([int(seed), *[int(c) for c in components]])


def task_rng(seed: int, *components: int) -> np.random.Generator:
    """A fresh :class:`~numpy.random.Generator` for a keyed stream."""
    return np.random.default_rng(task_seed_sequence(seed, *components))


def spawn_generators(
    sequence: np.random.SeedSequence, n: int
) -> list[np.random.Generator]:
    """``n`` independent generators spawned from one sequence, in order."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [np.random.default_rng(child) for child in sequence.spawn(n)]


def derive_seed(sequence: np.random.SeedSequence) -> int:
    """A single 32-bit integer seed drawn from a spawned child stream.

    For components that take an ``int`` seed (e.g. classifier constructors)
    rather than a generator; consumes one spawn so successive calls on the
    same sequence yield independent seeds.
    """
    return int(sequence.spawn(1)[0].generate_state(1)[0])
