"""Sanctioned seeded-stream derivation.

Baselines that train from scratch per task need a fresh-but-reproducible
RNG per ``(seed, task)`` pair.  Building ``np.random.SeedSequence`` inline
at each call site scatters the seeding policy across the codebase and is
exactly the pattern the ``RNG103`` repolint rule bans; this module is the
one sanctioned place such sequences are minted, so "one seed reproduces
the whole run" stays a property you can check mechanically.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "derive_seed",
    "rollout_shard",
    "spawn_generators",
    "task_rng",
    "task_seed_sequence",
]

#: Stream tag separating rollout-shard sequences from task sequences minted
#: by :func:`task_seed_sequence` (which uses the raw ``(seed, components)``
#: key).  Without it ``rollout_shard(seed, k)`` and ``task_seed_sequence(
#: seed, k)`` would alias the same stream.
_ROLLOUT_STREAM = 0x726F6C6C  # "roll"


def task_seed_sequence(seed: int, *components: int) -> np.random.SeedSequence:
    """Deterministic :class:`~numpy.random.SeedSequence` for a keyed stream.

    ``components`` identify the consumer — typically a task's
    ``label_index`` — so different tasks get independent streams while the
    same ``(seed, components)`` pair always reproduces the same one.
    """
    return np.random.SeedSequence([int(seed), *[int(c) for c in components]])


def task_rng(seed: int, *components: int) -> np.random.Generator:
    """A fresh :class:`~numpy.random.Generator` for a keyed stream."""
    return np.random.default_rng(task_seed_sequence(seed, *components))


def spawn_generators(
    sequence: np.random.SeedSequence, n: int
) -> list[np.random.Generator]:
    """``n`` independent generators spawned from one sequence, in order."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [np.random.default_rng(child) for child in sequence.spawn(n)]


def rollout_shard(seed: int, episode_index: int) -> np.random.SeedSequence:
    """The RNG shard for one planned rollout episode.

    The parallel rollout engine (:mod:`repro.rollout`) gives every episode
    its own seeded stream keyed on ``(seed, episode_index)``, where the
    index counts planned episodes globally across the run.  Keying on the
    plan rather than the worker makes episode randomness independent of
    how episodes land on workers — the engine's results are identical for
    any worker count, and a checkpoint only needs the episode counter to
    resume the stream.
    """
    if episode_index < 0:
        raise ValueError(f"episode_index must be >= 0, got {episode_index}")
    return np.random.SeedSequence([int(seed), _ROLLOUT_STREAM, int(episode_index)])


def derive_seed(sequence: np.random.SeedSequence) -> int:
    """A single 32-bit integer seed drawn from a spawned child stream.

    For components that take an ``int`` seed (e.g. classifier constructors)
    rather than a generator; consumes one spawn so successive calls on the
    same sequence yield independent seeds.
    """
    return int(sequence.spawn(1)[0].generate_state(1)[0])
