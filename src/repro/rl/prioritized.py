"""Prioritized experience replay (Schaul et al., 2016) — optional extension.

The paper samples replay minibatches uniformly; prioritized replay sends
high-TD-error transitions back to the learner more often, which can sharpen
credit assignment on the small action gaps of the feature-selection MDP.
It is off by default (``AgentConfig.prioritized_replay=False``) and
benchmarked as one of the DESIGN.md §5 extra ablations.

Implementation: proportional prioritisation ``p_i = (|delta_i| + eps)^alpha``
over a ring buffer, with NumPy categorical sampling — exact and fast at the
buffer sizes this reproduction uses (≤ tens of thousands of transitions),
so no sum-tree is needed.  Importance-sampling weights are exposed via
:attr:`last_weights` with the usual ``beta`` annealing.
"""

from __future__ import annotations

import numpy as np
from repro.errors import LifecycleError

from repro.analysis.numerics import normalized
from repro.rl.replay import ReplayBuffer
from repro.rl.transition import Transition


class PrioritizedReplayBuffer(ReplayBuffer):
    """Proportional prioritized replay on top of the ring buffer."""

    def __init__(
        self,
        capacity: int,
        trajectory_window: int = 32,
        alpha: float = 0.6,
        beta: float = 0.4,
        epsilon: float = 1e-3,
    ) -> None:
        super().__init__(capacity, trajectory_window=trajectory_window)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        if epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.alpha = alpha
        self.beta = beta
        self.epsilon = epsilon
        self._priorities: list[float] = []
        self._max_priority = 1.0
        self.last_indices: np.ndarray | None = None
        self.last_weights: np.ndarray | None = None

    def add(self, transition: Transition) -> None:
        at_capacity = len(self._storage) == self.capacity
        super().add(transition)
        if at_capacity and self._priorities:
            self._priorities.pop(0)
        # New experiences enter with maximal priority so each is seen once.
        self._priorities.append(self._max_priority)

    def sample(self, batch_size: int, rng: np.random.Generator) -> list[Transition]:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not self._storage:
            raise ValueError("cannot sample from an empty buffer")
        priorities = np.asarray(self._priorities, dtype=np.float64)
        scaled = (priorities + self.epsilon) ** self.alpha
        probabilities = normalized(scaled)
        indices = rng.choice(len(self._storage), size=batch_size, p=probabilities)
        self.last_indices = indices
        weights = (len(self._storage) * probabilities[indices]) ** (-self.beta)
        self.last_weights = weights / weights.max()
        return [self._storage[i] for i in indices]

    def capture_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        meta, arrays = super().capture_state()
        meta["max_priority"] = self._max_priority
        arrays["priorities"] = np.asarray(self._priorities, dtype=np.float64)
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        super().restore_state(meta, arrays)
        self._priorities = [float(p) for p in arrays["priorities"]]
        self._max_priority = float(meta["max_priority"])
        # Sampling bookkeeping is transient: a checkpoint is taken between
        # iterations, never between sample() and update_priorities().
        self.last_indices = None
        self.last_weights = None

    def update_priorities(self, td_errors: np.ndarray) -> None:
        """Refresh the priorities of the most recently sampled batch."""
        if self.last_indices is None:
            raise LifecycleError("update_priorities called before sample")
        td_errors = np.abs(np.asarray(td_errors, dtype=np.float64)).reshape(-1)
        if td_errors.shape[0] != self.last_indices.shape[0]:
            raise ValueError(
                f"{td_errors.shape[0]} TD errors for "
                f"{self.last_indices.shape[0]} sampled transitions"
            )
        for index, error in zip(self.last_indices, td_errors):
            priority = float(error)
            self._priorities[int(index)] = priority
            self._max_priority = max(self._max_priority, priority)
