"""Replay buffers: uniform per-task storage plus a per-task registry.

Algorithm 1 of the paper keeps one replay buffer per seen task
(``B^k``) and samples minibatches from each in turn.  ``ReplayRegistry``
is that per-task map; each :class:`ReplayBuffer` stores transitions in a
ring and remembers recent *trajectories* for the Inter-Task Scheduler's
progress probes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.analysis import tsan
from repro.rl.transition import Trajectory, Transition


class ReplayBuffer:
    """Bounded uniform-sampling transition store with a trajectory tail."""

    def __init__(self, capacity: int, trajectory_window: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if trajectory_window < 1:
            raise ValueError(f"trajectory_window must be >= 1, got {trajectory_window}")
        self.capacity = capacity
        self._storage: deque[Transition] = deque(maxlen=capacity)
        self._recent_trajectories: deque[Trajectory] = deque(maxlen=trajectory_window)

    def add(self, transition: Transition) -> None:
        self._storage.append(transition)

    def add_trajectory(self, trajectory: Trajectory) -> None:
        """Store a whole episode: transitions into the ring, tail for ITS.

        Buffer mutation is single-writer by contract: serial collection or
        the rollout engine's merge barrier (``TrackedLock("rollout.merge")``,
        ARCHITECTURE §10).  The sanitizer note lets the runtime lockset
        check catch any concurrent writer that bypasses the barrier.
        """
        tsan.note(self, "_storage", write=True)
        for transition in trajectory.transitions:
            self.add(transition)  # via add() so subclasses track metadata
        self._recent_trajectories.append(trajectory)

    def recent_trajectories(self, n: int | None = None) -> list[Trajectory]:
        """The most recent episodes (the ``load`` module of Eqn. 4a)."""
        trajectories = list(self._recent_trajectories)
        if n is not None:
            if n < 1:
                raise ValueError(f"n must be >= 1, got {n}")
            trajectories = trajectories[-n:]
        return trajectories

    def sample(self, batch_size: int, rng: np.random.Generator) -> list[Transition]:
        """Uniform sample with replacement, as in standard DQN."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not self._storage:
            raise ValueError("cannot sample from an empty buffer")
        indices = rng.integers(0, len(self._storage), size=batch_size)
        return [self._storage[i] for i in indices]

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def is_empty(self) -> bool:
        return not self._storage

    # ------------------------------------------------------------------
    # Durable checkpointing
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Snapshot the ring and the trajectory tail as ``(meta, arrays)``.

        Transitions are stacked into flat arrays (bit-exact float64 round
        trip through ``.npz``); the recent-trajectory tail — which feeds
        the ITS progress probes — is stored as concatenated step arrays
        with per-trajectory offsets.
        """
        meta: dict = {"size": len(self._storage)}
        arrays = _pack_transitions(list(self._storage), prefix="ring/")
        trajectories = list(self._recent_trajectories)
        meta["trajectories"] = [
            {
                "task_id": t.task_id,
                "selected_features": list(t.selected_features),
                "final_reward": t.final_reward,
                "length": t.length,
            }
            for t in trajectories
        ]
        flat = [step for t in trajectories for step in t.transitions]
        arrays.update(_pack_transitions(flat, prefix="tail/"))
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        """Restore a snapshot captured by :meth:`capture_state`."""
        self._storage.clear()
        for transition in _unpack_transitions(arrays, prefix="ring/"):
            self._storage.append(transition)
        self._recent_trajectories.clear()
        steps = _unpack_transitions(arrays, prefix="tail/")
        cursor = 0
        for record in meta.get("trajectories", []):
            length = int(record["length"])
            trajectory = Trajectory(
                task_id=int(record["task_id"]),
                transitions=steps[cursor : cursor + length],
                selected_features=tuple(
                    int(i) for i in record["selected_features"]
                ),
                final_reward=float(record["final_reward"]),
            )
            cursor += length
            self._recent_trajectories.append(trajectory)


def _pack_transitions(
    transitions: list[Transition], prefix: str = ""
) -> dict[str, np.ndarray]:
    """Stack a transition list into flat arrays keyed ``{prefix}{field}``."""
    if transitions:
        states = np.stack([t.state for t in transitions])
        next_states = np.stack([t.next_state for t in transitions])
    else:
        states = np.zeros((0, 0))
        next_states = np.zeros((0, 0))
    returns = np.array(
        [np.nan if t.return_to_go is None else t.return_to_go for t in transitions],
        dtype=np.float64,
    )
    return {
        f"{prefix}states": states,
        f"{prefix}actions": np.array([t.action for t in transitions], dtype=np.int64),
        f"{prefix}rewards": np.array([t.reward for t in transitions], dtype=np.float64),
        f"{prefix}next_states": next_states,
        f"{prefix}dones": np.array([t.done for t in transitions], dtype=bool),
        f"{prefix}returns": returns,
    }


def _unpack_transitions(
    arrays: dict[str, np.ndarray], prefix: str = ""
) -> list[Transition]:
    """Inverse of :func:`_pack_transitions`."""
    actions = arrays[f"{prefix}actions"]
    states = arrays[f"{prefix}states"]
    next_states = arrays[f"{prefix}next_states"]
    rewards = arrays[f"{prefix}rewards"]
    dones = arrays[f"{prefix}dones"]
    returns = arrays[f"{prefix}returns"]
    return [
        Transition(
            state=states[i],
            action=int(actions[i]),
            reward=float(rewards[i]),
            next_state=next_states[i],
            done=bool(dones[i]),
            return_to_go=None if np.isnan(returns[i]) else float(returns[i]),
        )
        for i in range(len(actions))
    ]


class ReplayRegistry:
    """Map task id → :class:`ReplayBuffer`, creating buffers lazily.

    ``buffer_factory`` customises the buffer type (e.g.
    :class:`~repro.rl.prioritized.PrioritizedReplayBuffer`); it receives
    ``(capacity, trajectory_window)`` and must return a ReplayBuffer.
    """

    def __init__(
        self,
        capacity: int,
        trajectory_window: int = 32,
        buffer_factory: Callable[[int, int], "ReplayBuffer"] | None = None,
    ) -> None:
        self._capacity = capacity
        self._trajectory_window = trajectory_window
        self._buffer_factory = buffer_factory or (
            lambda capacity, window: ReplayBuffer(capacity, trajectory_window=window)
        )
        self._buffers: dict[int, ReplayBuffer] = {}

    def buffer(self, task_id: int) -> ReplayBuffer:
        if task_id not in self._buffers:
            self._buffers[task_id] = self._buffer_factory(
                self._capacity, self._trajectory_window
            )
        return self._buffers[task_id]

    def task_ids(self) -> list[int]:
        return sorted(self._buffers)

    def non_empty_task_ids(self) -> list[int]:
        return [task_id for task_id in self.task_ids() if len(self._buffers[task_id])]

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._buffers

    def __len__(self) -> int:
        return len(self._buffers)

    # ------------------------------------------------------------------
    # Durable checkpointing
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Snapshot every per-task buffer (JSON keys are strings)."""
        meta: dict = {"buffers": {}}
        arrays: dict[str, np.ndarray] = {}
        for task_id in self.task_ids():
            buffer_meta, buffer_arrays = self._buffers[task_id].capture_state()
            meta["buffers"][str(task_id)] = buffer_meta
            for name, value in buffer_arrays.items():
                arrays[f"{task_id}/{name}"] = value
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        """Rebuild buffers lazily via the factory, then restore each."""
        self._buffers.clear()
        for key, buffer_meta in meta.get("buffers", {}).items():
            task_id = int(key)
            prefix = f"{task_id}/"
            self.buffer(task_id).restore_state(
                buffer_meta,
                {
                    name[len(prefix):]: value
                    for name, value in arrays.items()
                    if name.startswith(prefix)
                },
            )
