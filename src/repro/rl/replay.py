"""Replay buffers: uniform per-task storage plus a per-task registry.

Algorithm 1 of the paper keeps one replay buffer per seen task
(``B^k``) and samples minibatches from each in turn.  ``ReplayRegistry``
is that per-task map; each :class:`ReplayBuffer` stores transitions in a
ring and remembers recent *trajectories* for the Inter-Task Scheduler's
progress probes.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.rl.transition import Trajectory, Transition


class ReplayBuffer:
    """Bounded uniform-sampling transition store with a trajectory tail."""

    def __init__(self, capacity: int, trajectory_window: int = 32):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if trajectory_window < 1:
            raise ValueError(f"trajectory_window must be >= 1, got {trajectory_window}")
        self.capacity = capacity
        self._storage: deque[Transition] = deque(maxlen=capacity)
        self._recent_trajectories: deque[Trajectory] = deque(maxlen=trajectory_window)

    def add(self, transition: Transition) -> None:
        self._storage.append(transition)

    def add_trajectory(self, trajectory: Trajectory) -> None:
        """Store a whole episode: transitions into the ring, tail for ITS."""
        for transition in trajectory.transitions:
            self.add(transition)  # via add() so subclasses track metadata
        self._recent_trajectories.append(trajectory)

    def recent_trajectories(self, n: int | None = None) -> list[Trajectory]:
        """The most recent episodes (the ``load`` module of Eqn. 4a)."""
        trajectories = list(self._recent_trajectories)
        if n is not None:
            if n < 1:
                raise ValueError(f"n must be >= 1, got {n}")
            trajectories = trajectories[-n:]
        return trajectories

    def sample(self, batch_size: int, rng: np.random.Generator) -> list[Transition]:
        """Uniform sample with replacement, as in standard DQN."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not self._storage:
            raise ValueError("cannot sample from an empty buffer")
        indices = rng.integers(0, len(self._storage), size=batch_size)
        return [self._storage[i] for i in indices]

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def is_empty(self) -> bool:
        return not self._storage


class ReplayRegistry:
    """Map task id → :class:`ReplayBuffer`, creating buffers lazily.

    ``buffer_factory`` customises the buffer type (e.g.
    :class:`~repro.rl.prioritized.PrioritizedReplayBuffer`); it receives
    ``(capacity, trajectory_window)`` and must return a ReplayBuffer.
    """

    def __init__(self, capacity: int, trajectory_window: int = 32, buffer_factory=None):
        self._capacity = capacity
        self._trajectory_window = trajectory_window
        self._buffer_factory = buffer_factory or (
            lambda capacity, window: ReplayBuffer(capacity, trajectory_window=window)
        )
        self._buffers: dict[int, ReplayBuffer] = {}

    def buffer(self, task_id: int) -> ReplayBuffer:
        if task_id not in self._buffers:
            self._buffers[task_id] = self._buffer_factory(
                self._capacity, self._trajectory_window
            )
        return self._buffers[task_id]

    def task_ids(self) -> list[int]:
        return sorted(self._buffers)

    def non_empty_task_ids(self) -> list[int]:
        return [task_id for task_id in self.task_ids() if len(self._buffers[task_id])]

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._buffers

    def __len__(self) -> int:
        return len(self._buffers)
