"""Dueling DQN agent (paper Section II-A, Eqn. 1).

One agent instance is the paper's *global agent*; "local agents" are
realised as greedy/epsilon-greedy action queries against a snapshot of the
online network (the paper synchronises network weights to each rollout
worker — in a single-process reproduction the snapshot is the online net
itself, which is mathematically identical because rollouts and updates
interleave rather than race).

The update rule is Eqn. 1: Huber TD loss against a periodically-synced
frozen target network, minimised with Adam.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.contracts import check_finite, check_state_batch
from repro.nn.dueling import DuelingNetwork
from repro.nn.losses import HuberLoss
from repro.nn.network import load_state_dict, state_dict
from repro.nn.optim import Adam
from repro.rl.schedules import Schedule
from repro.rl.transition import Transition


class DuelingDQNAgent:
    """Dueling DQN with target network, epsilon-greedy policy and Adam."""

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        hidden: Sequence[int],
        gamma: float,
        lr: float,
        epsilon_schedule: Schedule,
        target_sync_every: int,
        rng: np.random.Generator,
        grad_clip: float = 10.0,
        double_dqn: bool = True,
    ) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        if target_sync_every < 1:
            raise ValueError(f"target_sync_every must be >= 1, got {target_sync_every}")
        self.state_dim = state_dim
        self.n_actions = n_actions
        self.gamma = gamma
        self.epsilon_schedule = epsilon_schedule
        self.target_sync_every = target_sync_every
        self.grad_clip = grad_clip
        self.double_dqn = double_dqn
        self._rng = rng
        self.online = DuelingNetwork(state_dim, n_actions, hidden, rng)
        self.target = DuelingNetwork(state_dim, n_actions, hidden, rng)
        self.sync_target()
        self._optimizer = Adam(self.online.parameters(), lr=lr)
        self._loss = HuberLoss()
        self.update_count = 0
        self.action_count = 0

    def q_values(self, states: np.ndarray) -> np.ndarray:
        """Online-network Q(s, ·) for a batch (or single) state."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        check_state_batch("agent.q_values", states, self.state_dim)
        return self.online.infer(states)

    def act(self, state: np.ndarray, greedy: bool = False) -> int:
        """Epsilon-greedy action; ``greedy=True`` disables exploration."""
        self.action_count += 1
        if not greedy:
            epsilon = self.epsilon_schedule(self.action_count)
            if self._rng.random() < epsilon:
                return int(self._rng.integers(self.n_actions))
        q = self.q_values(state)[0]
        # Break exact ties randomly so early (all-zero-Q) policies explore.
        best = np.flatnonzero(q == q.max())
        if len(best) == 1:
            return int(best[0])
        return int(self._rng.choice(best))

    def act_batch(self, states: np.ndarray) -> np.ndarray:
        """Greedy actions for a batch of states in one forward pass.

        The batched-inference entry point (serving, lockstep greedy
        episodes): one ``(B, state_dim)`` forward instead of B scalar
        :meth:`act` calls.  Deliberately side-effect free — it neither
        advances the epsilon schedule's action counter nor draws from the
        exploration RNG, so inference traffic cannot perturb training
        state.  Exact Q ties break to the lowest action index
        deterministically (``argmax``), where :meth:`act` randomises;
        the two agree whenever each row's argmax is unique, which holds
        for any network whose Q-values are not exactly equal.
        """
        q = self.q_values(states)
        return np.asarray(q.argmax(axis=1), dtype=np.int64)

    def update(self, batch: Sequence[Transition], task_id: int | None = None) -> float:
        """One Dueling-DQN step on a transition minibatch; returns the loss.

        ``task_id`` identifies which task's buffer the batch came from; the
        base agent ignores it, but multi-task reward-rescaling variants
        (e.g. the PopArt baseline) key their running statistics on it.
        """
        del task_id  # hook for subclasses
        if not batch:
            raise ValueError("update requires a non-empty batch")
        states, actions, targets_for_actions = self.compute_targets(batch)

        q_all = self.online.forward(states, training=True)
        # Only the taken action's Q contributes to the loss; build a full
        # target matrix equal to the prediction elsewhere so its gradient
        # vanishes on untaken actions.
        targets = q_all.copy()
        targets[np.arange(len(batch)), actions] = targets_for_actions

        loss_value = self._loss.forward(q_all, targets)
        self._optimizer.zero_grad()
        self.online.backward(self._loss.backward())
        if self.grad_clip > 0:
            self._optimizer.clip_grad_norm(self.grad_clip)
        self._optimizer.step()

        self.update_count += 1
        if self.update_count % self.target_sync_every == 0:
            self.sync_target()
        return loss_value

    def compute_targets(
        self, batch: Sequence[Transition]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """TD targets for a batch: (states, actions, per-sample targets).

        Targets use (Double-)DQN bootstrapping, then are tightened from
        below by each transition's observed return-to-go (the R̂ Algorithm 1
        stores in the buffer), which lower-bounds the optimal Q in this
        deterministic MDP.
        """
        if not batch:
            raise ValueError("compute_targets requires a non-empty batch")
        states = np.stack([t.state for t in batch])
        next_states = np.stack([t.next_state for t in batch])
        actions = np.array([t.action for t in batch], dtype=np.int64)
        rewards = np.array([t.reward for t in batch], dtype=np.float64)
        dones = np.array([t.done for t in batch], dtype=bool)

        next_q_target = self.target.infer(next_states)
        if self.double_dqn:
            # Double DQN: online network picks the action, target scores it.
            next_q_online = self.online.infer(next_states)
            best_actions = next_q_online.argmax(axis=1)
            bootstrap = next_q_target[np.arange(len(batch)), best_actions]
        else:
            bootstrap = next_q_target.max(axis=1)
        targets = rewards + np.where(dones, 0.0, self.gamma * bootstrap)

        returns_to_go = np.array(
            [t.return_to_go if t.return_to_go is not None else -np.inf for t in batch]
        )
        check_state_batch("agent.compute_targets", states, self.state_dim)
        tightened = np.maximum(targets, returns_to_go)
        check_finite("agent.compute_targets", tightened)
        return states, actions, tightened

    def td_errors(self, batch: Sequence[Transition]) -> np.ndarray:
        """Per-sample |target − Q(s, a)| — priorities for prioritized replay."""
        states, actions, targets = self.compute_targets(batch)
        q_all = self.online.infer(states)
        predictions = q_all[np.arange(len(batch)), actions]
        return np.abs(targets - predictions)

    def sync_target(self) -> None:
        """Copy online weights into the frozen target network."""
        snapshot = {
            name: value for name, value in state_dict(self.online).items()
        }
        target_params = {p.name: p for p in self.target.parameters()}
        for name, parameter in target_params.items():
            parameter.value[...] = snapshot[name]

    def save_policy(self) -> dict[str, np.ndarray]:
        """Snapshot the online network (for checkpointing/transfer)."""
        return state_dict(self.online)

    def load_policy(self, snapshot: dict[str, np.ndarray]) -> None:
        """Restore the online network and resync the target."""
        load_state_dict(self.online, snapshot)
        self.sync_target()

    # ------------------------------------------------------------------
    # Durable checkpointing
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Complete learning state as ``(json_meta, arrays)``.

        Unlike :meth:`save_policy` (inference weights only), this covers
        everything needed to *continue training* bit-identically: online
        and target networks, Adam moments, step counters (which drive the
        epsilon schedule and target syncs) and the exploration RNG stream.
        """
        from repro.io.checkpoint import rng_state

        arrays: dict[str, np.ndarray] = {}
        for name, value in state_dict(self.online).items():
            arrays[f"online/{name}"] = value
        for name, value in state_dict(self.target).items():
            arrays[f"target/{name}"] = value
        optim_meta, optim_arrays = self._optimizer.capture_state()
        for name, value in optim_arrays.items():
            arrays[f"optim/{name}"] = value
        meta = {
            "update_count": self.update_count,
            "action_count": self.action_count,
            "optimizer": optim_meta,
            "rng": rng_state(self._rng),
        }
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        """Restore a snapshot captured by :meth:`capture_state`."""
        from repro.io.checkpoint import set_rng_state

        load_state_dict(
            self.online,
            {
                key[len("online/"):]: value
                for key, value in arrays.items()
                if key.startswith("online/")
            },
        )
        load_state_dict(
            self.target,
            {
                key[len("target/"):]: value
                for key, value in arrays.items()
                if key.startswith("target/")
            },
        )
        self._optimizer.restore_state(
            meta["optimizer"],
            {
                key[len("optim/"):]: value
                for key, value in arrays.items()
                if key.startswith("optim/")
            },
        )
        self.update_count = int(meta["update_count"])
        self.action_count = int(meta["action_count"])
        set_rng_state(self._rng, meta["rng"])
