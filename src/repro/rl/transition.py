"""Transition and trajectory records produced by environment rollouts."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s', done) step.

    States are stored as immutable float arrays; ``done`` marks terminal
    transitions so the TD target drops the bootstrap term.

    ``return_to_go`` is the observed discounted return from this step to
    the episode's end (the ``R̂`` that Algorithm 1 lines 16-18 store in the
    buffer alongside the transition).  When present, the agent uses it to
    tighten TD targets from below (``target = max(td, return_to_go)``),
    which sharply accelerates credit assignment on these short episodes.
    """

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool
    return_to_go: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "state", np.asarray(self.state, dtype=np.float64))
        object.__setattr__(
            self, "next_state", np.asarray(self.next_state, dtype=np.float64)
        )
        if self.action not in (0, 1):
            raise ValueError(f"action must be 0 (deselect) or 1 (select), got {self.action}")


@dataclass
class Trajectory:
    """A full episode: its transitions plus the subset it maps to.

    The paper's ITS reads "recent trajectories mapped to feature subsets"
    from each task's buffer; carrying the mapping on the trajectory makes
    that O(1).  ``final_reward`` is the reward of the terminal step, i.e.
    the masked-classifier score of the final subset.
    """

    task_id: int
    transitions: list[Transition] = field(default_factory=list)
    selected_features: tuple[int, ...] = ()
    final_reward: float = 0.0

    def append(self, transition: Transition) -> None:
        self.transitions.append(transition)

    @property
    def length(self) -> int:
        return len(self.transitions)

    @property
    def total_reward(self) -> float:
        return float(sum(t.reward for t in self.transitions))

    def returns(self, gamma: float) -> list[float]:
        """Discounted reward-to-go for each step."""
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        out: list[float] = [0.0] * len(self.transitions)
        running = 0.0
        for i in range(len(self.transitions) - 1, -1, -1):
            running = self.transitions[i].reward + gamma * running
            out[i] = running
        return out
