"""Reinforcement-learning substrate: replay, schedules and the DQN agent.

Task-agnostic pieces live here; everything specific to feature selection
(the environment, the multi-task trainer, ITS, ITE) lives in
:mod:`repro.core`.
"""

from repro.rl.agent import DuelingDQNAgent
from repro.rl.replay import ReplayBuffer, ReplayRegistry
from repro.rl.reward import RewardFunction, build_task_reward
from repro.rl.schedules import ConstantSchedule, ExponentialDecay, LinearDecay
from repro.rl.seeding import (
    derive_seed,
    spawn_generators,
    task_rng,
    task_seed_sequence,
)
from repro.rl.transition import Transition, Trajectory

__all__ = [
    "ConstantSchedule",
    "DuelingDQNAgent",
    "ExponentialDecay",
    "LinearDecay",
    "ReplayBuffer",
    "ReplayRegistry",
    "RewardFunction",
    "Trajectory",
    "Transition",
    "build_task_reward",
    "derive_seed",
    "spawn_generators",
    "task_rng",
    "task_seed_sequence",
]
