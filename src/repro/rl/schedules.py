"""Exploration-rate schedules for epsilon-greedy action selection."""

from __future__ import annotations

import math


class Schedule:
    """Maps a step counter to a value (e.g. epsilon)."""

    def value(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        return self.value(step)


class ConstantSchedule(Schedule):
    """Always returns the same value."""

    def __init__(self, constant: float) -> None:
        self.constant = constant

    def value(self, step: int) -> float:
        return self.constant


class LinearDecay(Schedule):
    """Linearly anneal from ``start`` to ``end`` over ``decay_steps``."""

    def __init__(self, start: float, end: float, decay_steps: int) -> None:
        if decay_steps < 1:
            raise ValueError(f"decay_steps must be >= 1, got {decay_steps}")
        self.start = start
        self.end = end
        self.decay_steps = decay_steps

    def value(self, step: int) -> float:
        fraction = min(1.0, step / self.decay_steps)
        return self.start + fraction * (self.end - self.start)


class ExponentialDecay(Schedule):
    """Decay ``start`` towards ``end`` with time constant ``tau`` steps."""

    def __init__(self, start: float, end: float, tau: float) -> None:
        if tau <= 0.0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.start = start
        self.end = end
        self.tau = tau

    def value(self, step: int) -> float:
        return self.end + (self.start - self.end) * math.exp(-step / self.tau)
