"""Reward function with subset-level memoization (paper Eqn. 2).

``r = P(CLS(X^{F'}), Y)`` — the score of the pretrained classifier on the
masked feature view.  During RL training the same subsets recur constantly
(especially early, when episodes are short), so scores are cached keyed by
the frozen subset.  The cache is bounded LRU to keep memory flat on long
runs; hit statistics are exposed for the cache-ablation benchmark.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable

import numpy as np

from repro.analysis import tsan
from repro.analysis.contracts import check_scalar_range
from repro.nn.classifier import MaskedMLPClassifier


def build_task_reward(
    features: np.ndarray,
    labels: np.ndarray,
    classifier: MaskedMLPClassifier,
    metric: str = "auc",
    validation_fraction: float = 0.3,
    seed: int = 0,
) -> "RewardFunction":
    """Pretrain ``classifier`` and wrap it as a validation-scored reward.

    The classifier is fit on a train portion of the rows and the reward
    evaluates subsets on the held-out remainder.  Scoring on the training
    rows themselves produces a degenerate landscape — an overfit classifier
    scores ~1.0 for almost any subset — so validation scoring is what makes
    Eqn. 2 informative about subset quality.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels).reshape(-1)
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError(
            f"validation_fraction must be in (0, 1), got {validation_fraction}"
        )
    n = features.shape[0]
    if n < 4:
        raise ValueError(f"need at least 4 rows to split for reward, got {n}")
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(n)
    n_val = max(1, min(n - 1, int(round(validation_fraction * n))))
    val_rows, fit_rows = permutation[:n_val], permutation[n_val:]
    classifier.fit(features[fit_rows], labels[fit_rows])
    return RewardFunction(
        classifier, features[val_rows], labels[val_rows], metric=metric
    )


class RewardFunction:
    """Callable mapping a feature subset to a scalar reward in [0, 1]."""

    def __init__(
        self,
        classifier: MaskedMLPClassifier,
        features: np.ndarray,
        labels: np.ndarray,
        metric: str = "auc",
        cache_size: int = 50_000,
        empty_subset_reward: float = 0.0,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._classifier = classifier
        self._features = np.asarray(features, dtype=np.float64)
        self._labels = np.asarray(labels).reshape(-1)
        self.metric = metric
        self.cache_size = cache_size
        self.empty_subset_reward = empty_subset_reward
        self._cache: OrderedDict[tuple[int, ...], float] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.merged = 0
        # The LRU cache is a documented PAR601 sync point (ARCHITECTURE
        # §7.2): the moment rollout workers share an instance, unguarded
        # OrderedDict mutation is a data race.  The TrackedLock makes the
        # guard real and feeds the runtime sanitizer's held-lock sets so
        # chaos/parity drills verify it dynamically.
        self._lock = tsan.TrackedLock("reward.cache")
        # Entries inserted since the last drain — the per-worker delta the
        # rollout engine merges back into the coordinator's cache at
        # episode boundaries.
        self._fresh: dict[tuple[int, ...], float] = {}

    @property
    def all_features_score(self) -> float:
        """Score with every feature selected — the P_all baseline (Eqn. 6)."""
        return self(range(self._features.shape[1]))

    def __call__(self, subset: Iterable[int]) -> float:
        key = tuple(sorted(set(int(i) for i in subset)))
        if not key:
            return self.empty_subset_reward
        if self.cache_size > 0:
            with self._lock:
                tsan.note(self, "_cache")
                if key in self._cache:
                    self.hits += 1
                    self._cache.move_to_end(key)
                    return self._cache[key]
        self.misses += 1
        # The classifier evaluation stays outside the lock: it is the
        # expensive part and touches no cache state, so concurrent misses
        # may score in parallel and serialize only on insertion.
        score = self._classifier.score(
            self._features, self._labels, subset=key, metric=self.metric
        )
        check_scalar_range("reward", score, 0.0, 1.0)
        if self.cache_size > 0:
            with self._lock:
                tsan.note(self, "_cache", write=True)
                self._cache[key] = score
                self._fresh[key] = score
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                # Serial runs never drain, so the delta dict needs its own
                # bound; dropping the oldest entry only costs a potential
                # recomputation on the other side of a future merge.
                while len(self._fresh) > self.cache_size:
                    del self._fresh[next(iter(self._fresh))]
        return score

    def drain_fresh_entries(self) -> tuple[tuple[tuple[int, ...], float], ...]:
        """Entries inserted since the last drain, oldest first; then forget.

        Rollout workers call this at episode boundaries and ship the delta
        home with the trajectory; the coordinator folds it into its own
        cache via :meth:`merge_cache` so scores computed in a worker are
        never recomputed on the coordinator (or by later phases' workers
        after the next broadcast warms them).
        """
        with self._lock:
            entries = tuple(self._fresh.items())
            self._fresh.clear()
        return entries

    def merge_cache(
        self, entries: Iterable[tuple[tuple[int, ...], float]]
    ) -> int:
        """Fold another instance's cache delta into this one; returns inserts.

        Idempotent by construction: an entry already present only refreshes
        its LRU position (every replica computes identical scores for a
        key, so last-writer-wins and first-writer-wins agree).  The LRU
        bound is enforced after the merge, exactly as for organic inserts.
        """
        inserted = 0
        if self.cache_size <= 0:
            return inserted
        with self._lock:
            tsan.note(self, "_cache", write=True)
            for key, score in entries:
                frozen = tuple(int(i) for i in key)
                if frozen not in self._cache:
                    inserted += 1
                self._cache[frozen] = float(score)
                self._cache.move_to_end(frozen)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
            self.merged += inserted
        return inserted

    def cache_snapshot(self) -> tuple[tuple[tuple[int, ...], float], ...]:
        """The full cache contents, LRU-oldest first (tests/diagnostics)."""
        with self._lock:
            return tuple(self._cache.items())

    def hit_rate(self) -> float:
        """Fraction of calls served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int]:
        """Cache counters for telemetry: hits, misses, merges, occupancy."""
        with self._lock:
            return {
                "hits": int(self.hits),
                "misses": int(self.misses),
                "merged": int(self.merged),
                "entries": len(self._cache),
            }

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
            self._fresh.clear()
            self.hits = 0
            self.misses = 0
            self.merged = 0

    # ------------------------------------------------------------------
    # Pickling (rollout workers receive env replicas holding this object)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        """Drop the lock (not picklable); the replica gets a fresh one.

        The fresh-entry delta is dropped too: it records what *this*
        process computed since the last drain, and a replica that
        inherited it would ship those entries back as its own — harmless
        (merges are idempotent) but wasteful across every broadcast.
        """
        state = dict(self.__dict__)
        del state["_lock"]
        state["_fresh"] = {}
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = tsan.TrackedLock("reward.cache")
