"""PA-FEAT reproduction: fast feature selection via progress-aware MT-DRL.

Reproduces Zhang et al., "PA-FEAT: Fast Feature Selection for Structured
Data via Progress-Aware Multi-Task Deep Reinforcement Learning" (ICDE 2023),
including every substrate it depends on: a NumPy deep-learning stack
(:mod:`repro.nn`), an RL toolkit (:mod:`repro.rl`), structured-data and
synthetic-dataset machinery (:mod:`repro.data`), evaluation/reward
components (:mod:`repro.eval`), the PA-FEAT core (:mod:`repro.core`), ten
baselines (:mod:`repro.baselines`) and the experiment harness regenerating
every table and figure (:mod:`repro.experiments`).

Quickstart::

    import numpy as np
    from repro import PAFeat, PAFeatConfig, load_mini_dataset

    suite = load_mini_dataset("water-quality")
    train, test = suite.split_rows(0.7, np.random.default_rng(0))
    model = PAFeat(PAFeatConfig(n_iterations=100)).fit(train)
    for task in train.unseen_tasks:
        print(task.name, model.select(task))
"""

from repro.core.config import (
    AgentConfig,
    ClassifierConfig,
    EnvConfig,
    ITEConfig,
    ITSConfig,
    PAFeatConfig,
)
from repro.core.analysis import explain_selection, policy_feature_scores
from repro.core.pafeat import PAFeat
from repro.data.arff import load_arff_suite
from repro.errors import ReproError
from repro.data.catalog import dataset_names, load_dataset, load_mini_dataset
from repro.data.synthetic import SyntheticSpec, generate_suite
from repro.data.tasks import Task, TaskSuite
from repro.eval.svm import evaluate_subset_with_svm
from repro.io import load_model, save_model

__version__ = "1.0.0"

__all__ = [
    "AgentConfig",
    "ClassifierConfig",
    "EnvConfig",
    "ITEConfig",
    "ITSConfig",
    "PAFeat",
    "PAFeatConfig",
    "ReproError",
    "SyntheticSpec",
    "Task",
    "TaskSuite",
    "__version__",
    "dataset_names",
    "evaluate_subset_with_svm",
    "explain_selection",
    "generate_suite",
    "load_arff_suite",
    "load_dataset",
    "load_mini_dataset",
    "load_model",
    "policy_feature_scores",
    "save_model",
]
