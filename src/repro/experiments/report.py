"""Run every paper artefact and assemble a single text/markdown report.

``python -m repro.experiments.report --scale smoke`` regenerates all eight
artefacts end-to-end and writes ``report.<scale>.md``; EXPERIMENTS.md's
measured numbers come from this path (at the ``mini`` scale).
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import Callable, Iterator

from repro.experiments import fig5, fig6, fig7, fig8, fig9, table1, table2, table3


def _artefacts(
    scale: str, datasets: tuple[str, ...]
) -> Iterator[tuple[str, Callable[[], str]]]:
    """Yield (artefact id, callable returning rendered text)."""
    yield "Table I", lambda: table1.render(table1.run(scale=scale, verify=True))
    yield "Fig. 5", lambda: fig5.render(fig5.run(datasets=datasets, scale=scale))
    yield "Fig. 6", lambda: fig6.render(fig6.run(datasets=datasets, scale=scale))
    yield "Table II", lambda: table2.render(table2.run(datasets=datasets, scale=scale))
    yield "Fig. 7", lambda: fig7.render(fig7.run(datasets=datasets, scale=scale))
    yield "Table III", lambda: table3.render(table3.run(datasets=datasets, scale=scale))
    yield "Fig. 8", lambda: fig8.render(fig8.run(dataset=datasets[0], scale=scale))
    yield "Fig. 9", lambda: fig9.render(fig9.run(dataset=datasets[0], scale=scale))


def build_report(
    scale: str = "smoke",
    datasets: tuple[str, ...] = ("water-quality",),
    output: str | Path | None = None,
) -> str:
    """Run all artefacts and return (and optionally write) the report."""
    sections = [f"# PA-FEAT reproduction report (scale: {scale})", ""]
    for name, runner in _artefacts(scale, datasets):
        start = time.perf_counter()
        rendered = runner()
        elapsed = time.perf_counter() - start
        sections.append(f"## {name}  *({elapsed:.1f}s)*")
        sections.append("")
        sections.append("```")
        sections.append(rendered)
        sections.append("```")
        sections.append("")
    report = "\n".join(sections)
    if output is not None:
        Path(output).write_text(report)
    return report


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=("smoke", "mini", "full"))
    parser.add_argument("--datasets", nargs="+", default=["water-quality"])
    parser.add_argument("--output", default=None)
    args = parser.parse_args(argv)
    output = args.output or f"report.{args.scale}.md"
    build_report(args.scale, tuple(args.datasets), output)
    print(f"report written to {output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
