"""Table III — ablation study: removing ITS, ITE, both, or PE.

Five variants per dataset (complete PA-FEAT, w/o ITS, w/o ITE, w/o both,
w/o PE), each reported on Avg F1 and Avg AUC over unseen tasks.

Expected ordering (paper Section IV-C): complete model first; w/o PE and
w/o ITS close behind; w/o ITE lower; w/o both lowest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import render_table
from repro.experiments.runner import load_suite, run_method, scale_params

VARIANTS = ("pa-feat", "pa-feat-no-its", "pa-feat-no-ite", "pa-feat-no-both", "pa-feat-no-pe")

VARIANT_LABELS = {
    "pa-feat": "ours",
    "pa-feat-no-its": "w/o ITS",
    "pa-feat-no-ite": "w/o ITE",
    "pa-feat-no-both": "w/o ITS&ITE",
    "pa-feat-no-pe": "w/o PE",
}


@dataclass
class AblationRow:
    """Per-dataset ablation: variant → (avg F1, avg AUC)."""

    dataset: str
    outcomes: dict[str, tuple[float, float]] = field(default_factory=dict)


def run(
    datasets: tuple[str, ...] = ("water-quality", "yeast"),
    scale: str = "mini",
    variants: tuple[str, ...] = VARIANTS,
    mfr: float = 0.6,
    n_runs: int | None = None,
    base_seed: int = 0,
) -> list[AblationRow]:
    """Run every ablation variant on every dataset, averaged over runs."""
    params = scale_params(scale)
    runs = n_runs if n_runs is not None else params["n_runs"]
    rows = []
    for dataset in datasets:
        suite = load_suite(dataset, scale)
        row = AblationRow(dataset=dataset)
        for variant in variants:
            f1_scores, auc_scores = [], []
            for run_index in range(runs):
                seed = base_seed + run_index
                train, test = suite.split_rows(0.7, np.random.default_rng(seed))
                outcome = run_method(
                    variant, train, test, scale=scale, mfr=mfr, seed=seed
                )
                f1_scores.append(outcome.avg_f1)
                auc_scores.append(outcome.avg_auc)
            row.outcomes[variant] = (
                float(np.mean(f1_scores)),
                float(np.mean(auc_scores)),
            )
        rows.append(row)
    return rows


def render(rows: list[AblationRow]) -> str:
    """Paper-style Table III."""
    variants = list(rows[0].outcomes) if rows else []
    headers = ["Dataset"]
    for variant in variants:
        label = VARIANT_LABELS.get(variant, variant)
        headers.extend([f"{label} F1", f"{label} AUC"])
    body = []
    for row in rows:
        cells: list[object] = [row.dataset]
        for variant in variants:
            f1, auc = row.outcomes[variant]
            cells.extend([f1, auc])
        body.append(cells)
    return render_table(headers, body, title="Table III: ablation study")


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run(scale="smoke", datasets=("water-quality",))))


if __name__ == "__main__":  # pragma: no cover
    main()
