"""Table II — average iteration time and execution time (seconds).

For the four FEAT-based methods (PopArt, Go-Explore, RR, PA-FEAT) on each
dataset: mean wall-clock per training iteration ("Iter") and mean response
time per unseen task ("Exec").

Expected shape (paper Section IV-B1): Exec is nearly identical across the
four methods (all answer with one environment build + greedy Q inference);
Iter grows with the feature count; PopArt's Iter is slightly above the
others because of its extra rescaling transform; Go-Explore's random
restart rollouts make its iterations cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import render_table
from repro.experiments.runner import load_suite, run_method

DEFAULT_METHODS = ("popart", "go-explore", "rr", "pa-feat")


@dataclass
class TimingRow:
    """Per-dataset timing: method → (iter seconds, exec seconds)."""

    dataset: str
    timings: dict[str, tuple[float, float]] = field(default_factory=dict)


def run(
    datasets: tuple[str, ...] = ("water-quality", "yeast"),
    scale: str = "mini",
    methods: tuple[str, ...] = DEFAULT_METHODS,
    mfr: float = 0.6,
    seed: int = 0,
) -> list[TimingRow]:
    """Measure Iter/Exec for each FEAT-based method on each dataset."""
    rows = []
    for dataset in datasets:
        suite = load_suite(dataset, scale)
        train, test = suite.split_rows(0.7, np.random.default_rng(seed))
        row = TimingRow(dataset=dataset)
        for method in methods:
            outcome = run_method(method, train, test, scale=scale, mfr=mfr, seed=seed)
            row.timings[method] = (outcome.iteration_seconds, outcome.select_seconds)
        rows.append(row)
    return rows


def render(rows: list[TimingRow]) -> str:
    """Paper-style Table II with Iter/Exec column pairs."""
    methods = list(rows[0].timings) if rows else []
    headers = ["Dataset"]
    for method in methods:
        headers.extend([f"{method} Iter", f"{method} Exec"])
    body = []
    for row in rows:
        cells: list[object] = [row.dataset]
        for method in methods:
            iteration, execution = row.timings[method]
            cells.extend([iteration, execution])
        body.append(cells)
    return render_table(
        headers,
        body,
        title="Table II: avg iteration time and execution time (seconds)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run(scale="smoke", datasets=("water-quality",))))


if __name__ == "__main__":  # pragma: no cover
    main()
