"""Table I — characteristics of the eight evaluation datasets.

Regenerates the paper's dataset table from the synthetic twins, verifying
that each generated suite matches its published shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.catalog import DATASETS, load_mini_dataset
from repro.data.synthetic import generate_suite
from repro.analysis.reporting import render_table


@dataclass(frozen=True)
class DatasetRow:
    """One Table I row."""

    dataset: str
    n_instances: int
    n_features: int
    n_seen: int
    n_unseen: int


def run(scale: str = "full", verify: bool = False) -> list[DatasetRow]:
    """Produce Table I rows; ``verify=True`` materialises each suite.

    ``scale`` only affects verification: at ``"full"`` the complete suites
    are generated (tens of seconds for the biggest), at ``"mini"`` the
    scaled twins are used to check structure cheaply.
    """
    rows = []
    for spec in DATASETS.values():
        if verify:
            if scale == "full":
                suite = generate_suite(spec.to_synthetic())
                expected_rows, expected_features = spec.n_instances, spec.n_features
            else:
                suite = load_mini_dataset(spec.name)
                expected_rows = min(spec.n_instances, 500)
                expected_features = min(spec.n_features, 48)
            if suite.table.n_rows != expected_rows:
                raise AssertionError(
                    f"{spec.name}: generated {suite.table.n_rows} rows, "
                    f"expected {expected_rows}"
                )
            if suite.table.n_features != expected_features:
                raise AssertionError(
                    f"{spec.name}: generated {suite.table.n_features} features, "
                    f"expected {expected_features}"
                )
            if suite.n_seen != spec.n_seen or suite.n_unseen != spec.n_unseen:
                raise AssertionError(f"{spec.name}: task partition mismatch")
        rows.append(
            DatasetRow(
                dataset=spec.name,
                n_instances=spec.n_instances,
                n_features=spec.n_features,
                n_seen=spec.n_seen,
                n_unseen=spec.n_unseen,
            )
        )
    return rows


def render(rows: list[DatasetRow]) -> str:
    """Paper-style Table I."""
    return render_table(
        ["Dataset", "#Instances", "#Features", "#Seen tasks", "#Unseen tasks"],
        [
            [row.dataset, row.n_instances, row.n_features, row.n_seen, row.n_unseen]
            for row in rows
        ],
        title="Table I: characteristics of datasets (synthetic twins)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run(scale="mini", verify=True)))


if __name__ == "__main__":  # pragma: no cover
    main()
