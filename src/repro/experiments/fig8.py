"""Fig. 8 — benefit of ITS as a function of task difficulty.

Trains PA-FEAT twice (with and without the Inter-Task Scheduler), then for
each *seen* task compares the late-training average reward and the final
distance ratio.  Task difficulty is measured — as in the paper — by the
w/o-ITS late-stage average reward (lower reward → harder task).

Expected shape: the reward improvement from ITS grows as tasks get harder,
and the distance ratio with ITS sits below the ratio without it on the
hard tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.its import distance_ratio
from repro.core.pafeat import PAFeat
from repro.analysis.reporting import render_table
from repro.experiments.runner import load_suite, make_config


@dataclass
class TaskBenefit:
    """Per-seen-task comparison of the two training regimes."""

    task: str
    difficulty: float  # w/o-ITS late-stage avg reward (lower = harder)
    reward_without_its: float
    reward_with_its: float
    dist_without_its: float
    dist_with_its: float

    @property
    def reward_gain(self) -> float:
        return self.reward_with_its - self.reward_without_its


def _late_stage_rewards(model: PAFeat, window: int) -> dict[int, float]:
    """Mean per-task episode score over the last ``window`` iterations."""
    assert model.trainer is not None
    per_task: dict[int, list[float]] = {}
    for stats in model.trainer.history[-window:]:
        for task_id, reward in stats.rewards_per_task.items():
            per_task.setdefault(task_id, []).append(reward)
    return {task_id: float(np.mean(values)) for task_id, values in per_task.items()}


def _final_distance_ratios(model: PAFeat) -> dict[int, float]:
    """Distance ratio per seen task from the final buffer contents."""
    assert model.trainer is not None
    ratios = {}
    for task_id in model.trainer.envs:
        trajectories = model.trainer.registry.buffer(task_id).recent_trajectories()
        baseline = model.reward_fns[task_id].all_features_score
        ratios[task_id] = distance_ratio(trajectories, baseline)
    return ratios


def run(
    dataset: str = "water-quality",
    scale: str = "mini",
    mfr: float = 0.6,
    seed: int = 0,
    window: int = 20,
) -> list[TaskBenefit]:
    """Train with/without ITS and compare per-seen-task progress."""
    suite = load_suite(dataset, scale)
    train, _ = suite.split_rows(0.7, np.random.default_rng(seed))

    with_its = PAFeat(make_config(scale, mfr=mfr, seed=seed, use_its=True)).fit(train)
    without_its = PAFeat(make_config(scale, mfr=mfr, seed=seed, use_its=False)).fit(train)

    rewards_with = _late_stage_rewards(with_its, window)
    rewards_without = _late_stage_rewards(without_its, window)
    dist_with = _final_distance_ratios(with_its)
    dist_without = _final_distance_ratios(without_its)

    names = {task.label_index: task.name for task in train.seen_tasks}
    benefits = []
    for task_id in sorted(names):
        reward_without = rewards_without.get(task_id, 0.0)
        benefits.append(
            TaskBenefit(
                task=names[task_id],
                difficulty=reward_without,
                reward_without_its=reward_without,
                reward_with_its=rewards_with.get(task_id, 0.0),
                dist_without_its=dist_without.get(task_id, 1.0),
                dist_with_its=dist_with.get(task_id, 1.0),
            )
        )
    # Hardest tasks first, matching the paper's difficulty-ordered bars.
    benefits.sort(key=lambda b: b.difficulty)
    return benefits


def render(benefits: list[TaskBenefit]) -> str:
    """Paper-style per-task bars as a table, hardest tasks first."""
    return render_table(
        [
            "Seen task",
            "difficulty (reward w/o ITS)",
            "reward w/ ITS",
            "reward gain",
            "dist ratio w/o ITS",
            "dist ratio w/ ITS",
        ],
        [
            [
                benefit.task,
                benefit.difficulty,
                benefit.reward_with_its,
                benefit.reward_gain,
                benefit.dist_without_its,
                benefit.dist_with_its,
            ]
            for benefit in benefits
        ],
        title="Fig. 8: ITS benefit per seen task (hardest first)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run(scale="smoke")))


if __name__ == "__main__":  # pragma: no cover
    main()
