"""Experiment harness regenerating every table and figure of the paper.

One module per artefact:

========  ====================================================  =================
Artefact  Paper content                                         Module
========  ====================================================  =================
Table I   dataset characteristics                               ``table1``
Fig. 5    Avg F1 vs max-feature-ratio, multi-task baselines     ``fig5``
Fig. 6    Avg AUC vs max-feature-ratio, multi-task baselines    ``fig6``
Table II  training-iteration time & execution time              ``table2``
Fig. 7    single-task baselines: quality & execution time       ``fig7``
Table III ablation: w/o ITS / ITE / both / PE                   ``table3``
Fig. 8    ITS benefit vs task difficulty                        ``fig8``
Fig. 9    further training on unseen tasks                      ``fig9``
========  ====================================================  =================

Each module exposes ``run(scale=...)`` returning structured results and a
``render`` helper printing paper-style rows.  ``scale="mini"`` (default) is
sized for CI; ``scale="full"`` approaches the paper's setup.
"""

from repro.experiments.runner import (
    ExperimentScale,
    MethodResult,
    evaluate_selection,
    run_method,
    scale_params,
)

__all__ = [
    "ExperimentScale",
    "MethodResult",
    "evaluate_selection",
    "run_method",
    "scale_params",
]
