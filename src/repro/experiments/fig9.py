"""Fig. 9 — further training on unseen tasks.

After the multi-task fit, each unseen task is trained on directly (paper
Section IV-D) and the greedy subset is checkpointed along the way; every
checkpointed subset is evaluated with the downstream SVM, producing the
Avg F1 / Avg AUC growth curves.

Expected shape: both curves rise from the zero-shot level and saturate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pafeat import PAFeat
from repro.analysis.reporting import render_series
from repro.experiments.runner import evaluate_selection, load_suite, make_config


@dataclass
class FurtherTrainCurve:
    """Avg metric values at each checkpointed iteration."""

    dataset: str
    iterations: list[int] = field(default_factory=list)
    avg_f1: list[float] = field(default_factory=list)
    avg_auc: list[float] = field(default_factory=list)


def run(
    dataset: str = "water-quality",
    scale: str = "mini",
    further_iterations: int = 60,
    checkpoint_every: int = 15,
    mfr: float = 0.6,
    seed: int = 0,
    max_tasks: int | None = 3,
) -> FurtherTrainCurve:
    """Fit, then further-train each unseen task and trace quality."""
    suite = load_suite(dataset, scale)
    train, test = suite.split_rows(0.7, np.random.default_rng(seed))
    model = PAFeat(make_config(scale, mfr=mfr, seed=seed)).fit(train)

    test_by_index = {task.label_index: task for task in test.unseen_tasks}
    tasks = train.unseen_tasks[:max_tasks] if max_tasks else train.unseen_tasks

    # Zero-shot point (iteration 0) plus the checkpointed curve.
    checkpoints: list[int] = [0]
    per_task_f1: dict[str, list[float]] = {}
    per_task_auc: dict[str, list[float]] = {}
    for task in tasks:
        subset = model.select(task)
        scores = evaluate_selection(subset, task, test_by_index[task.label_index], seed)
        per_task_f1[task.name] = [scores["f1"]]
        per_task_auc[task.name] = [scores["auc"]]

    for task in tasks:
        records = model.further_train(
            task, further_iterations, checkpoint_every=checkpoint_every
        )
        for record in records:
            if record.iteration not in checkpoints:
                checkpoints.append(record.iteration)
            scores = evaluate_selection(
                record.subset, task, test_by_index[task.label_index], seed
            )
            per_task_f1[task.name].append(scores["f1"])
            per_task_auc[task.name].append(scores["auc"])

    checkpoints.sort()
    n_points = min(len(values) for values in per_task_f1.values())
    curve = FurtherTrainCurve(dataset=dataset)
    curve.iterations = checkpoints[:n_points]
    curve.avg_f1 = [
        float(np.mean([per_task_f1[name][i] for name in per_task_f1]))
        for i in range(n_points)
    ]
    curve.avg_auc = [
        float(np.mean([per_task_auc[name][i] for name in per_task_auc]))
        for i in range(n_points)
    ]
    return curve


def render(curve: FurtherTrainCurve) -> str:
    """Paper-style growth-curve block."""
    return render_series(
        "iteration",
        curve.iterations,
        {"Avg F1": curve.avg_f1, "Avg AUC": curve.avg_auc},
        title=f"Fig. 9 ({curve.dataset}): further training on unseen tasks",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run(scale="smoke", further_iterations=30)))


if __name__ == "__main__":  # pragma: no cover
    main()
