"""Statistical utilities for multi-run method comparisons.

The paper averages every result over 5 independent runs; these helpers make
that rigour explicit: mean ± std summaries, paired sign tests and bootstrap
confidence intervals, all dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class RunSummary:
    """Mean ± std over independent runs."""

    mean: float
    std: float
    n_runs: int

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f} (n={self.n_runs})"


def summarize_runs(values: Sequence[float]) -> RunSummary:
    """Mean and sample standard deviation of per-run scores."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("summarize_runs requires at least one value")
    std = float(values.std(ddof=1)) if values.size > 1 else 0.0
    return RunSummary(mean=float(values.mean()), std=std, n_runs=values.size)


def paired_sign_test(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sided sign-test p-value for paired per-run scores.

    Ties are dropped, per the classical test.  With k wins for ``a`` out of
    n informative pairs, the p-value is ``2 * P(X <= min(k, n-k))`` for
    ``X ~ Binomial(n, 1/2)``, capped at 1.
    """
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"paired samples differ in length: {a.shape} vs {b.shape}")
    differences = a - b
    informative = differences[differences != 0.0]
    n = informative.size
    if n == 0:
        return 1.0
    wins = int(np.sum(informative > 0))
    tail = min(wins, n - wins)
    cumulative = sum(math.comb(n, i) for i in range(tail + 1)) / 2.0**n
    return min(1.0, 2.0 * cumulative)


def bootstrap_confidence_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of per-run scores."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("bootstrap requires at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    resample_means = rng.choice(
        values, size=(n_resamples, values.size), replace=True
    ).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resample_means, [alpha, 1.0 - alpha])
    return float(low), float(high)


def compare_methods(
    per_run_scores: dict[str, Sequence[float]], baseline: str
) -> dict[str, dict[str, float]]:
    """Summaries + sign-test p-values of every method against ``baseline``.

    Returns ``{method: {"mean", "std", "delta_vs_baseline", "p_value"}}``.
    """
    if baseline not in per_run_scores:
        raise KeyError(f"baseline {baseline!r} not among methods")
    baseline_scores = list(per_run_scores[baseline])
    comparison: dict[str, dict[str, float]] = {}
    for method, scores in per_run_scores.items():
        summary = summarize_runs(scores)
        comparison[method] = {
            "mean": summary.mean,
            "std": summary.std,
            "delta_vs_baseline": summary.mean - float(np.mean(baseline_scores)),
            "p_value": 1.0
            if method == baseline
            else paired_sign_test(list(scores), baseline_scores),
        }
    return comparison
