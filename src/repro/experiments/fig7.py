"""Fig. 7 — single-task baselines vs PA-FEAT: quality and latency.

On Water-quality and Yeast (the datasets the paper shows), compares
PA-FEAT's unseen-task response against K-Best, RFE, SADRLFS and MARLFS on
Avg F1 and per-task execution time.  Single-task methods pay their full
from-scratch training cost inside ``select``, so the expected shape is:

* SADRLFS/MARLFS: comparable or slightly better F1, execution time orders
  of magnitude above PA-FEAT's;
* K-Best: latency in PA-FEAT's class (one statistics pass) but worse F1;
* RFE: mid-pack F1, latency well above PA-FEAT (model per elimination
  round).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import render_table
from repro.experiments.runner import load_suite, run_method

DEFAULT_METHODS = ("pa-feat", "k-best", "rfe", "sadrlfs", "marlfs")


@dataclass
class SingleTaskRow:
    """One dataset's comparison: method → (avg F1, exec seconds)."""

    dataset: str
    outcomes: dict[str, tuple[float, float]] = field(default_factory=dict)


def run(
    datasets: tuple[str, ...] = ("water-quality", "yeast"),
    scale: str = "mini",
    methods: tuple[str, ...] = DEFAULT_METHODS,
    mfr: float = 0.6,
    seed: int = 0,
) -> list[SingleTaskRow]:
    """Quality/latency comparison on each dataset."""
    rows = []
    for dataset in datasets:
        suite = load_suite(dataset, scale)
        train, test = suite.split_rows(0.7, np.random.default_rng(seed))
        row = SingleTaskRow(dataset=dataset)
        for method in methods:
            outcome = run_method(method, train, test, scale=scale, mfr=mfr, seed=seed)
            row.outcomes[method] = (outcome.avg_f1, outcome.select_seconds)
        rows.append(row)
    return rows


def render(rows: list[SingleTaskRow]) -> str:
    """Paper-style per-dataset blocks of (F1, exec time) rows."""
    blocks = []
    for row in rows:
        blocks.append(
            render_table(
                ["Method", "Avg F1", "Exec seconds"],
                [
                    [method, f1, seconds]
                    for method, (f1, seconds) in row.outcomes.items()
                ],
                title=f"Fig. 7 ({row.dataset}): single-task comparison",
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run(scale="smoke", datasets=("water-quality",))))


if __name__ == "__main__":  # pragma: no cover
    main()
