"""Beyond-the-paper ablations flagged in DESIGN.md §5.

* :func:`reward_cache_study` — hit rate and speedup of the subset-level
  reward memoization.
* :func:`task_representation_study` — Pearson vs mutual-information task
  representations for zero-shot transfer.
* :func:`exploration_constant_study` — sensitivity of ITE to the UCT
  constant ``c_e`` of Eqn. 9.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import ITEConfig
from repro.core.pafeat import PAFeat
from repro.data.stats import mutual_information_scores, pearson_representation
from repro.data.tasks import Task
from repro.rl.reward import RewardFunction
from repro.experiments.runner import (
    evaluate_selection,
    load_suite,
    make_config,
)


@dataclass
class CacheStudyResult:
    """Reward-cache ablation outcome."""

    hit_rate: float
    seconds_with_cache: float
    seconds_without_cache: float

    @property
    def speedup(self) -> float:
        if self.seconds_with_cache <= 0:
            return float("inf")
        return self.seconds_without_cache / self.seconds_with_cache


def reward_cache_study(
    dataset: str = "water-quality", scale: str = "smoke", seed: int = 0
) -> CacheStudyResult:
    """Train twice — cached vs uncached rewards — and compare wall-clock."""
    suite = load_suite(dataset, scale)
    train, _ = suite.split_rows(0.7, np.random.default_rng(seed))

    cached_model = PAFeat(make_config(scale, seed=seed))
    start = time.perf_counter()
    cached_model.fit(train)
    cached_seconds = time.perf_counter() - start
    hit_rates = [fn.hit_rate() for fn in cached_model.reward_fns.values()]

    uncached_model = PAFeat(make_config(scale, seed=seed))
    original_build = uncached_model._build_reward

    def build_uncached(task: Task) -> RewardFunction:
        reward_fn = original_build(task)
        reward_fn.cache_size = 0
        reward_fn.clear_cache()
        return reward_fn

    uncached_model._build_reward = build_uncached  # type: ignore[method-assign]
    start = time.perf_counter()
    uncached_model.fit(train)
    uncached_seconds = time.perf_counter() - start

    return CacheStudyResult(
        hit_rate=float(np.mean(hit_rates)) if hit_rates else 0.0,
        seconds_with_cache=cached_seconds,
        seconds_without_cache=uncached_seconds,
    )


@dataclass
class RepresentationStudyResult:
    """Zero-shot quality under two task-representation choices."""

    pearson_f1: float
    mutual_information_f1: float


def task_representation_study(
    dataset: str = "water-quality", scale: str = "smoke", seed: int = 0
) -> RepresentationStudyResult:
    """Compare Pearson vs MI task representations for zero-shot selection.

    The PA-FEAT state embeds the Pearson vector; here a trained model is
    queried with both representations for each unseen task and the SVM
    quality of the resulting subsets is compared.  Because the Q-network
    was *trained* on Pearson representations, MI representations probe how
    sensitive transfer is to the representation's scale and shape.
    """
    suite = load_suite(dataset, scale)
    train, test = suite.split_rows(0.7, np.random.default_rng(seed))
    model = PAFeat(make_config(scale, seed=seed)).fit(train)
    assert model.trainer is not None
    test_by_index = {task.label_index: task for task in test.unseen_tasks}

    from repro.core.env import FeatureSelectionEnv

    def select_with(representation: np.ndarray, task: Task) -> tuple[int, ...]:
        env = FeatureSelectionEnv(task.label_index, representation, None, model.config.env)
        subset = model.trainer.infer_subset(env)
        return subset or (int(np.argmax(representation)),)

    pearson_scores, mi_scores = [], []
    for task in train.unseen_tasks:
        pearson = pearson_representation(task.features, task.labels)
        mi = mutual_information_scores(task.features, task.labels)
        mi = mi / (mi.max() + 1e-12)  # rescale into the Pearson range
        test_task = test_by_index[task.label_index]
        pearson_scores.append(
            evaluate_selection(select_with(pearson, task), task, test_task, seed)["f1"]
        )
        mi_scores.append(
            evaluate_selection(select_with(mi, task), task, test_task, seed)["f1"]
        )
    return RepresentationStudyResult(
        pearson_f1=float(np.mean(pearson_scores)),
        mutual_information_f1=float(np.mean(mi_scores)),
    )


@dataclass
class PrioritizedReplayResult:
    """Uniform vs prioritized replay at otherwise identical settings."""

    uniform_f1: float
    prioritized_f1: float


def prioritized_replay_study(
    dataset: str = "water-quality", scale: str = "smoke", seed: int = 0
) -> PrioritizedReplayResult:
    """Compare uniform replay against the prioritized-replay extension."""
    suite = load_suite(dataset, scale)
    train, test = suite.split_rows(0.7, np.random.default_rng(seed))
    test_by_index = {task.label_index: task for task in test.unseen_tasks}

    def average_f1(prioritized: bool) -> float:
        config = make_config(scale, seed=seed)
        config = replace(
            config, agent=replace(config.agent, prioritized_replay=prioritized)
        )
        model = PAFeat(config).fit(train)
        scores = [
            evaluate_selection(
                model.select(task), task, test_by_index[task.label_index], seed
            )["f1"]
            for task in train.unseen_tasks
        ]
        return float(np.mean(scores))

    return PrioritizedReplayResult(
        uniform_f1=average_f1(False), prioritized_f1=average_f1(True)
    )


@dataclass
class ExplorationConstantResult:
    """Avg F1 per tested UCT exploration constant."""

    constants: tuple[float, ...]
    avg_f1: tuple[float, ...]


def exploration_constant_study(
    dataset: str = "water-quality",
    scale: str = "smoke",
    constants: tuple[float, ...] = (0.1, 1.0, 4.0),
    seed: int = 0,
) -> ExplorationConstantResult:
    """Sweep the E-Tree UCT constant ``c_e`` (Eqn. 9)."""
    suite = load_suite(dataset, scale)
    train, test = suite.split_rows(0.7, np.random.default_rng(seed))
    test_by_index = {task.label_index: task for task in test.unseen_tasks}
    scores = []
    for constant in constants:
        config = make_config(scale, seed=seed)
        config = replace(
            config, ite=ITEConfig(exploration_constant=constant)
        )
        model = PAFeat(config).fit(train)
        f1_values = [
            evaluate_selection(
                model.select(task), task, test_by_index[task.label_index], seed
            )["f1"]
            for task in train.unseen_tasks
        ]
        scores.append(float(np.mean(f1_values)))
    return ExplorationConstantResult(
        constants=tuple(constants), avg_f1=tuple(scores)
    )
