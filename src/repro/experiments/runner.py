"""Shared experiment machinery: method registry, timing, evaluation.

Every table/figure module funnels through :func:`run_method`, which knows
the three method families and times their phases separately:

* ``prepare_seconds`` — multi-task training before unseen tasks arrive
  (FEAT-family ``fit``, or the multilabel methods' cheap setup);
* ``iteration_seconds`` — mean wall-clock per training iteration (Table II
  "Iter" column, FEAT-family only);
* ``select_seconds`` — mean per-unseen-task response time (Table II "Exec"
  column / Fig. 7 latency axis); for single-task methods this *includes*
  their from-scratch training, exactly as the paper measures them.

Quality is the paper's protocol: an SVM trained on the selected subset's
training rows, scored on held-out rows; Avg F1 / Avg AUC across the
suite's unseen tasks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.baselines import (
    AllFeaturesSelector,
    FeatureSelector,
    AntTDSelector,
    GRROSelector,
    GoExploreSelector,
    KBestSelector,
    MARLFSSelector,
    MDFSSelector,
    PopArtSelector,
    RFESelector,
    RewardRandomizationSelector,
    SADRLFSSelector,
)
from repro.core.config import ClassifierConfig, EnvConfig, ITEConfig, PAFeatConfig
from repro.core.pafeat import PAFeat
from repro.data.catalog import load_dataset, load_mini_dataset
from repro.data.tasks import Task, TaskSuite
from repro.eval.svm import evaluate_subset_with_svm

ExperimentScale = str  # "smoke" | "mini" | "full"

_SCALES: dict[str, dict] = {
    # CI-sized: seconds per method.
    "smoke": {
        "max_rows": 200,
        "max_features": 24,
        "n_iterations": 40,
        "n_runs": 1,
        "classifier_epochs": 8,
        "single_task_iterations": 40,
        "marlfs_episodes": 80,
    },
    # Default for benchmarks: minutes per table.
    "mini": {
        "max_rows": 500,
        "max_features": 48,
        "n_iterations": 400,
        "n_runs": 1,
        "classifier_epochs": 15,
        "single_task_iterations": 150,
        "marlfs_episodes": 400,
    },
    # Paper-approaching scale (hours).
    "full": {
        "max_rows": None,
        "max_features": None,
        "n_iterations": 2000,
        "n_runs": 5,
        "classifier_epochs": 30,
        "single_task_iterations": 2000,
        "marlfs_episodes": 2000,
    },
}


def scale_params(scale: ExperimentScale) -> dict:
    """Resolve a scale name to its parameter dict."""
    try:
        return dict(_SCALES[scale])
    except KeyError:
        valid = ", ".join(_SCALES)
        raise ValueError(f"unknown scale {scale!r}; expected one of: {valid}") from None


def load_suite(dataset: str, scale: ExperimentScale) -> TaskSuite:
    """Load the dataset twin at the requested scale."""
    params = scale_params(scale)
    if params["max_rows"] is None:
        return load_dataset(dataset)
    return load_mini_dataset(
        dataset, max_rows=params["max_rows"], max_features=params["max_features"]
    )


def make_config(
    scale: ExperimentScale,
    mfr: float = 0.6,
    seed: int = 0,
    use_its: bool = True,
    use_ite: bool = True,
    use_pe: bool = True,
) -> PAFeatConfig:
    """PA-FEAT config for a scale, with the Table III ablation switches."""
    params = scale_params(scale)
    return PAFeatConfig(
        n_iterations=params["n_iterations"],
        use_its=use_its,
        use_ite=use_ite,
        seed=seed,
        env=EnvConfig(max_feature_ratio=mfr),
        ite=ITEConfig(use_policy_exploitation=use_pe),
        classifier=ClassifierConfig(n_epochs=params["classifier_epochs"]),
    )


@dataclass
class MethodResult:
    """Timing + quality outcome of one method on one dataset run."""

    method: str
    avg_f1: float
    avg_auc: float
    prepare_seconds: float
    iteration_seconds: float
    select_seconds: float
    per_task: dict[str, dict[str, float]] = field(default_factory=dict)
    subsets: dict[str, tuple[int, ...]] = field(default_factory=dict)


def evaluate_selection(
    subset: tuple[int, ...],
    train_task: Task,
    test_task: Task,
    seed: int = 0,
) -> dict[str, float]:
    """SVM-on-subset evaluation (paper Section IV-A3)."""
    return evaluate_subset_with_svm(
        subset,
        train_task.features,
        train_task.labels,
        test_task.features,
        test_task.labels,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Method registry
# ---------------------------------------------------------------------------

#: FEAT-family methods: factories taking a PAFeatConfig.
FEAT_METHODS: dict[str, Callable[[PAFeatConfig], PAFeat]] = {
    "pa-feat": PAFeat,
    "popart": PopArtSelector,
    "go-explore": GoExploreSelector,
    "rr": RewardRandomizationSelector,
}

#: Table III ablation variants as (use_its, use_ite, use_pe) switches.
ABLATION_VARIANTS: dict[str, tuple[bool, bool, bool]] = {
    "pa-feat": (True, True, True),
    "pa-feat-no-its": (False, True, True),
    "pa-feat-no-ite": (True, False, True),
    "pa-feat-no-both": (False, False, True),
    "pa-feat-no-pe": (True, True, False),
}

#: Methods whose full cost is paid at selection time.
SINGLE_TASK_METHODS = ("k-best", "rfe", "sadrlfs", "marlfs")

#: Multi-label methods re-running over seen + arriving labels per selection.
MULTILABEL_METHODS = ("grro-ls", "ant-td", "mdfs")

ALL_METHOD_NAMES = (
    tuple(FEAT_METHODS)
    + tuple(name for name in ABLATION_VARIANTS if name != "pa-feat")
    + SINGLE_TASK_METHODS
    + MULTILABEL_METHODS
    + ("all-features",)
)


def _build_simple_selector(
    name: str, mfr: float, scale: ExperimentScale, seed: int
) -> FeatureSelector:
    params = scale_params(scale)
    classifier = ClassifierConfig(n_epochs=params["classifier_epochs"])
    if name == "k-best":
        return KBestSelector(max_feature_ratio=mfr)
    if name == "rfe":
        return RFESelector(max_feature_ratio=mfr, seed=seed)
    if name == "grro-ls":
        return GRROSelector(max_feature_ratio=mfr)
    if name == "mdfs":
        return MDFSSelector(max_feature_ratio=mfr, seed=seed)
    if name == "ant-td":
        return AntTDSelector(max_feature_ratio=mfr, seed=seed)
    if name == "all-features":
        return AllFeaturesSelector()
    if name == "sadrlfs":
        config = make_config(scale, mfr=mfr, seed=seed, use_its=False, use_ite=False)
        return SADRLFSSelector(
            max_feature_ratio=mfr,
            config=config,
            n_iterations=params["single_task_iterations"],
            seed=seed,
        )
    if name == "marlfs":
        return MARLFSSelector(
            max_feature_ratio=mfr,
            n_episodes=params["marlfs_episodes"],
            classifier_config=classifier,
            seed=seed,
        )
    raise ValueError(f"unknown simple method {name!r}")


def run_method(
    name: str,
    train_suite: TaskSuite,
    test_suite: TaskSuite,
    scale: ExperimentScale = "mini",
    mfr: float = 0.6,
    seed: int = 0,
) -> MethodResult:
    """Run one method end-to-end on one train/test suite pair."""
    if name in FEAT_METHODS or name in ABLATION_VARIANTS:
        return _run_feat_method(name, train_suite, test_suite, scale, mfr, seed)
    selector = _build_simple_selector(name, mfr, scale, seed)
    start = time.perf_counter()
    selector.prepare(train_suite)
    prepare_seconds = time.perf_counter() - start
    return _select_and_score(
        name, selector.select, train_suite, test_suite, seed,
        prepare_seconds=prepare_seconds, iteration_seconds=0.0,
    )


def _run_feat_method(
    name: str,
    train_suite: TaskSuite,
    test_suite: TaskSuite,
    scale: ExperimentScale,
    mfr: float,
    seed: int,
) -> MethodResult:
    if name in ABLATION_VARIANTS:
        use_its, use_ite, use_pe = ABLATION_VARIANTS[name]
        config = make_config(
            scale, mfr=mfr, seed=seed, use_its=use_its, use_ite=use_ite, use_pe=use_pe
        )
        model = PAFeat(config)
    else:
        config = make_config(scale, mfr=mfr, seed=seed)
        model = FEAT_METHODS[name](config)
    start = time.perf_counter()
    model.fit(train_suite)
    prepare_seconds = time.perf_counter() - start
    n_iterations = len(model.trainer.history) if model.trainer else 1
    return _select_and_score(
        name, model.select, train_suite, test_suite, seed,
        prepare_seconds=prepare_seconds,
        iteration_seconds=prepare_seconds / max(1, n_iterations),
        model=model,
    )


def _select_and_score(
    name: str,
    select: Callable[[Task], tuple[int, ...]],
    train_suite: TaskSuite,
    test_suite: TaskSuite,
    seed: int,
    prepare_seconds: float,
    iteration_seconds: float,
    model: PAFeat | None = None,
) -> MethodResult:
    test_by_index = {task.label_index: task for task in test_suite.unseen_tasks}
    per_task: dict[str, dict[str, float]] = {}
    subsets: dict[str, tuple[int, ...]] = {}
    select_times: list[float] = []
    for task in train_suite.unseen_tasks:
        start = time.perf_counter()
        subset = select(task)
        select_times.append(time.perf_counter() - start)
        subsets[task.name] = subset
        per_task[task.name] = evaluate_selection(
            subset, task, test_by_index[task.label_index], seed=seed
        )
    del model
    f1_values = [scores["f1"] for scores in per_task.values()]
    auc_values = [scores["auc"] for scores in per_task.values()]
    return MethodResult(
        method=name,
        avg_f1=float(np.mean(f1_values)) if f1_values else 0.0,
        avg_auc=float(np.mean(auc_values)) if auc_values else 0.0,
        prepare_seconds=prepare_seconds,
        iteration_seconds=iteration_seconds,
        select_seconds=float(np.mean(select_times)) if select_times else 0.0,
        per_task=per_task,
        subsets=subsets,
    )


def run_method_averaged(
    name: str,
    dataset: str,
    scale: ExperimentScale = "mini",
    mfr: float = 0.6,
    n_runs: int | None = None,
    base_seed: int = 0,
) -> MethodResult:
    """Average a method over ``n_runs`` independent row splits (paper: 5)."""
    params = scale_params(scale)
    runs = n_runs if n_runs is not None else params["n_runs"]
    if runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {runs}")
    suite = load_suite(dataset, scale)
    results: list[MethodResult] = []
    for run in range(runs):
        seed = base_seed + run
        train, test = suite.split_rows(0.7, np.random.default_rng(seed))
        results.append(run_method(name, train, test, scale=scale, mfr=mfr, seed=seed))
    return MethodResult(
        method=name,
        avg_f1=float(np.mean([r.avg_f1 for r in results])),
        avg_auc=float(np.mean([r.avg_auc for r in results])),
        prepare_seconds=float(np.mean([r.prepare_seconds for r in results])),
        iteration_seconds=float(np.mean([r.iteration_seconds for r in results])),
        select_seconds=float(np.mean([r.select_seconds for r in results])),
        per_task=results[0].per_task,
        subsets=results[0].subsets,
    )
