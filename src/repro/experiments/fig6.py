"""Fig. 6 — Avg AUC vs max feature ratio, multi-task-enhanced methods.

Identical sweep to Fig. 5 with the AUC metric; see
:mod:`repro.experiments.fig5` for the machinery.
"""

from __future__ import annotations

from repro.experiments.fig5 import (
    DEFAULT_METHODS,
    DEFAULT_RATIOS,
    SweepResult,
    run_sweep,
)
from repro.analysis.reporting import render_series


def run(
    datasets: tuple[str, ...] = ("water-quality", "yeast"),
    scale: str = "mini",
    methods: tuple[str, ...] = DEFAULT_METHODS,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
) -> list[SweepResult]:
    """Fig. 6: the Fig. 5 sweep scored with Avg AUC."""
    return [
        run_sweep(dataset, metric="auc", scale=scale, methods=methods, ratios=ratios)
        for dataset in datasets
    ]


def render(results: list[SweepResult]) -> str:
    """Paper-style series blocks, one per dataset."""
    blocks = []
    for result in results:
        blocks.append(
            render_series(
                "mfr",
                list(result.ratios),
                result.series,
                title=f"Fig. 6 ({result.dataset}): Avg AUC vs max feature ratio",
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run(scale="smoke", datasets=("water-quality",))))


if __name__ == "__main__":  # pragma: no cover
    main()
