"""Fig. 5 — Avg F1-score vs max feature ratio, multi-task-enhanced methods.

For each dataset, sweeps ``max_feature_ratio`` and runs PA-FEAT against the
multi-task-enhanced baselines (PopArt, Go-Explore, RR under FEAT; GRRO-LS,
Ant-TD, MDFS as multi-label methods), reporting Avg F1 over unseen tasks.

Fig. 6 is the identical sweep scored with AUC, so each sweep computes
*both* metrics in one pass and memoises the outcome per
``(dataset, scale, methods, ratios, runs, seed)`` — running Fig. 5 then
Fig. 6 in one process costs a single sweep.

Expected shape (paper Section IV-B1): PA-FEAT dominates at every mfr; its
curve rises then saturates, while baselines can flatten or dip at high mfr.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import render_series
from repro.experiments.runner import load_suite, run_method, scale_params

DEFAULT_METHODS = ("pa-feat", "popart", "go-explore", "rr", "grro-ls", "ant-td", "mdfs")
DEFAULT_RATIOS = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass
class SweepResult:
    """mfr sweep for one dataset: method → metric value per ratio."""

    dataset: str
    metric: str
    ratios: tuple[float, ...]
    series: dict[str, list[float]] = field(default_factory=dict)
    #: the same sweep's values under the other metric, for cross-checking
    series_by_metric: dict[str, dict[str, list[float]]] = field(default_factory=dict)


class SweepCache:
    """Thread-safe memo of completed sweeps, keyed by the full sweep spec.

    A class (rather than a bare module-level dict) so the shared state has
    one owner with a lock: concurrent figure runs serialize on lookup and
    store instead of racing on dict internals, and tests can clear it
    atomically.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._store: dict[tuple, dict[str, dict[str, list[float]]]] = {}

    def get(self, key: tuple) -> dict[str, dict[str, list[float]]] | None:
        with self._lock:
            return self._store.get(key)

    def store(self, key: tuple, series: dict[str, dict[str, list[float]]]) -> None:
        with self._lock:
            self._store[key] = series

    def clear(self) -> None:
        with self._lock:
            self._store.clear()


#: Process-wide memo shared by fig5 and fig6 (fig6 reuses fig5's sweep).
_SWEEP_CACHE = SweepCache()


def _sweep_both_metrics(
    dataset: str,
    scale: str,
    methods: tuple[str, ...],
    ratios: tuple[float, ...],
    runs: int,
    base_seed: int,
) -> dict[str, dict[str, list[float]]]:
    """One pass over (method × ratio × run) recording F1 and AUC."""
    key = (dataset, scale, tuple(methods), tuple(ratios), runs, base_seed)
    cached = _SWEEP_CACHE.get(key)
    if cached is not None:
        return cached
    suite = load_suite(dataset, scale)
    series: dict[str, dict[str, list[float]]] = {"f1": {}, "auc": {}}
    for method in methods:
        f1_values: list[float] = []
        auc_values: list[float] = []
        for ratio in ratios:
            f1_runs, auc_runs = [], []
            for run_index in range(runs):
                seed = base_seed + run_index
                train, test = suite.split_rows(0.7, np.random.default_rng(seed))
                outcome = run_method(
                    method, train, test, scale=scale, mfr=ratio, seed=seed
                )
                f1_runs.append(outcome.avg_f1)
                auc_runs.append(outcome.avg_auc)
            f1_values.append(float(np.mean(f1_runs)))
            auc_values.append(float(np.mean(auc_runs)))
        series["f1"][method] = f1_values
        series["auc"][method] = auc_values
    _SWEEP_CACHE.store(key, series)
    return series


def run_sweep(
    dataset: str,
    metric: str = "f1",
    scale: str = "mini",
    methods: tuple[str, ...] = DEFAULT_METHODS,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    n_runs: int | None = None,
    base_seed: int = 0,
) -> SweepResult:
    """Sweep mfr for every method on one dataset (memoised, both metrics)."""
    if metric not in ("f1", "auc"):
        raise ValueError(f"metric must be 'f1' or 'auc', got {metric!r}")
    params = scale_params(scale)
    runs = n_runs if n_runs is not None else params["n_runs"]
    both = _sweep_both_metrics(dataset, scale, methods, ratios, runs, base_seed)
    return SweepResult(
        dataset=dataset,
        metric=metric,
        ratios=tuple(ratios),
        series=dict(both[metric]),
        series_by_metric={m: dict(s) for m, s in both.items()},
    )


def run(
    datasets: tuple[str, ...] = ("water-quality", "yeast"),
    scale: str = "mini",
    methods: tuple[str, ...] = DEFAULT_METHODS,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    metric: str = "f1",
) -> list[SweepResult]:
    """Fig. 5 across datasets (defaults keep bench wall-clock sane)."""
    return [
        run_sweep(dataset, metric=metric, scale=scale, methods=methods, ratios=ratios)
        for dataset in datasets
    ]


def render(results: list[SweepResult]) -> str:
    """Paper-style series blocks, one per dataset."""
    blocks = []
    for result in results:
        blocks.append(
            render_series(
                "mfr",
                list(result.ratios),
                result.series,
                title=(
                    f"Fig. 5 ({result.dataset}): Avg "
                    f"{result.metric.upper()} vs max feature ratio"
                ),
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run(scale="smoke", datasets=("water-quality",))))


if __name__ == "__main__":  # pragma: no cover
    main()
