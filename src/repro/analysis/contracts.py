"""Env-toggled runtime contracts for array shapes, dtypes and finiteness.

Static analysis (``tools/repolint``) catches whole bug classes at review
time; this module is the runtime half of the same bargain.  With the
``REPRO_CONTRACTS`` environment variable set (``1``/``true``/``on``/``yes``)
the checks fire at the FEAT↔agent and eval boundaries — the two seams
across which a wrong shape or a NaN can travel furthest before detection.
With it unset (the default, and the production configuration) every check
is a single cached boolean test, so hot paths pay nothing.

Violations raise :class:`ContractViolation` (an ``AssertionError``
subclass, so ``pytest.raises(AssertionError)`` also matches) with the
boundary name and the offending value's shape/dtype in the message.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "CONTRACTS_ENV_VAR",
    "ContractViolation",
    "check_finite",
    "check_probability_vector",
    "check_scalar_range",
    "check_state_batch",
    "contracts_enabled",
    "set_contracts_enabled",
]

CONTRACTS_ENV_VAR = "REPRO_CONTRACTS"

_TRUTHY = {"1", "true", "on", "yes"}

_enabled: bool = os.environ.get(CONTRACTS_ENV_VAR, "").strip().lower() in _TRUTHY


class ContractViolation(AssertionError):
    """An array crossed a module boundary in breach of its contract."""


def contracts_enabled() -> bool:
    """Whether boundary contracts are currently active."""
    return _enabled


def set_contracts_enabled(enabled: bool) -> bool:
    """Toggle contracts at runtime (tests/debugging); returns the old value.

    The flag is deliberately process-global configuration — like
    ``np.seterr``, it is flipped at startup or around a test, never from
    the rollout path (PAR601 would flag any reachable caller).
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)  # repolint: disable=PAR602
    return previous


def _fail(boundary: str, problem: str, value: Any) -> None:
    detail = ""
    if isinstance(value, np.ndarray):
        detail = f" [shape={value.shape}, dtype={value.dtype}]"
    raise ContractViolation(f"contract '{boundary}': {problem}{detail}")


def check_finite(boundary: str, value: NDArray[np.float64]) -> NDArray[np.float64]:
    """Every element must be finite (no nan/inf)."""
    if not _enabled:
        return value
    array = np.asarray(value)
    if not np.all(np.isfinite(array)):
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        _fail(boundary, f"{bad} non-finite element(s)", array)
    return value


def check_state_batch(
    boundary: str, states: NDArray[np.float64], dim: int
) -> NDArray[np.float64]:
    """A float batch (or single vector) whose trailing axis is ``dim``.

    This is the FEAT↔agent contract: encoded environment states entering
    ``q_values``/``update`` must be finite float vectors of the network's
    input dimension — a transposed batch or a task-representation of the
    wrong length fails here instead of as a garbage Q-value.
    """
    if not _enabled:
        return states
    array = np.asarray(states)
    if array.ndim not in (1, 2):
        _fail(boundary, f"expected a vector or batch, got ndim={array.ndim}", array)
    if array.shape[-1] != dim:
        _fail(boundary, f"trailing dimension {array.shape[-1]} != state dim {dim}", array)
    if not np.issubdtype(array.dtype, np.floating):
        _fail(boundary, f"expected a floating dtype, got {array.dtype}", array)
    if not np.all(np.isfinite(array)):
        _fail(boundary, "non-finite state encoding", array)
    return states


def check_probability_vector(
    boundary: str, probabilities: NDArray[np.float64], n: int | None = None
) -> NDArray[np.float64]:
    """Finite, non-negative, sums to 1 (within 1e-6); optional length check."""
    if not _enabled:
        return probabilities
    array = np.asarray(probabilities, dtype=np.float64)
    if array.ndim != 1:
        _fail(boundary, f"expected a 1-D vector, got ndim={array.ndim}", array)
    if n is not None and array.shape[0] != n:
        _fail(boundary, f"expected length {n}, got {array.shape[0]}", array)
    if not np.all(np.isfinite(array)):
        _fail(boundary, "non-finite probabilities", array)
    if np.any(array < 0.0):
        _fail(boundary, "negative probability mass", array)
    total = float(array.sum())
    if abs(total - 1.0) > 1e-6:
        _fail(boundary, f"probabilities sum to {total:.9f}, not 1", array)
    return probabilities


def check_scalar_range(
    boundary: str, value: float, low: float, high: float, tolerance: float = 1e-9
) -> float:
    """A finite scalar inside ``[low - tol, high + tol]`` (eval boundary)."""
    if not _enabled:
        return value
    scalar = float(value)
    if not np.isfinite(scalar):
        _fail(boundary, f"non-finite scalar {scalar!r}", scalar)
    if scalar < low - tolerance or scalar > high + tolerance:
        _fail(boundary, f"scalar {scalar!r} outside [{low}, {high}]", scalar)
    return value
