"""Aligned-text rendering of experiment tables and series.

The paper's artefacts are tables and line charts; in a terminal-first
reproduction both become aligned text: :func:`render_table` for tables,
:func:`render_series` for the x-vs-y sweeps behind each figure.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_cell(value: object, precision: int = 4) -> str:
    """Format one table cell: floats to fixed precision, rest via str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned text table with a separator rule."""
    if not headers:
        raise ValueError("render_table needs at least one header")
    formatted = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in formatted))
        if formatted
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render figure data: one column per x value, one row per series."""
    if not series:
        raise ValueError("render_series needs at least one series")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x values"
            )
    headers = [x_label, *[format_cell(x, 2) for x in x_values]]
    rows = [
        [name, *[format_cell(v, precision) for v in values]]
        for name, values in series.items()
    ]
    return render_table(headers, rows, title=title, precision=precision)


def winner_summary(scores: Mapping[str, float], higher_is_better: bool = True) -> str:
    """One-line 'who wins' summary used in bench output."""
    if not scores:
        raise ValueError("winner_summary needs at least one entry")
    pick = max if higher_is_better else min
    best = pick(scores, key=lambda name: scores[name])
    ranked = sorted(scores.items(), key=lambda kv: kv[1], reverse=higher_is_better)
    parts = ", ".join(f"{name}={value:.4f}" for name, value in ranked)
    return f"best={best} [{parts}]"
