"""Sanctioned numerically-safe primitives.

This is the one module allowed (by the ``NUM3xx`` repolint rules) to call
raw ``np.exp`` / ``np.log`` / sum-normalisation: every helper here clamps,
shifts or masks its input so the result is finite for any finite input.
Loss, softmax and normalisation code elsewhere in ``repro`` must route
through these helpers instead of open-coding the primitives.

All helpers are bit-exact drop-ins on inputs that were already safe — e.g.
``safe_log`` on values ``>= eps`` computes exactly ``np.log``, and
``stable_softmax`` performs the canonical shift-by-max that well-written
softmax code already used — so adopting them never changes healthy results.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = [
    "LOG_EPS",
    "MAX_EXP_INPUT",
    "normalized",
    "safe_div",
    "safe_exp",
    "safe_log",
    "safe_xlogy",
    "stable_sigmoid",
    "stable_softmax",
]

#: Smallest probability ``safe_log`` will evaluate — log(1e-12) ≈ -27.6.
LOG_EPS = 1e-12

#: Largest exponent fed to ``np.exp`` — np.log(np.finfo(float64).max) ≈ 709.78.
MAX_EXP_INPUT = 709.0


def safe_exp(x: ArrayLike) -> NDArray[np.float64]:
    """``np.exp`` with the input clamped below the float64 overflow point.

    Bit-exact with ``np.exp`` for inputs ``<= 709``; underflow to 0.0 for
    very negative inputs is IEEE-clean and intentionally not clamped.
    """
    return np.exp(np.minimum(np.asarray(x, dtype=np.float64), MAX_EXP_INPUT))


def safe_log(x: ArrayLike, eps: float = LOG_EPS) -> NDArray[np.float64]:
    """``np.log`` with the input clamped to at least ``eps`` (no -inf/nan)."""
    return np.log(np.maximum(np.asarray(x, dtype=np.float64), eps))


def stable_sigmoid(x: ArrayLike) -> NDArray[np.float64]:
    """Overflow-free logistic function via the standard sign-split identity."""
    x = np.asarray(x, dtype=np.float64)
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))


def stable_softmax(x: ArrayLike, axis: int = -1) -> NDArray[np.float64]:
    """Shift-by-max softmax: finite for any finite input, rows sum to 1."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    weights = np.exp(shifted)
    return weights / weights.sum(axis=axis, keepdims=True)


def safe_xlogy(x: ArrayLike, y: ArrayLike) -> NDArray[np.float64]:
    """``x * log(y)`` with the convention ``0 * log(anything) == 0``.

    Entries where ``x == 0`` never evaluate the log (no warnings, no nan),
    which is exactly the convention entropy/mutual-information sums need.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    x, y = np.broadcast_arrays(x, y)
    out = np.zeros(x.shape, dtype=np.float64)
    mask = x != 0.0
    out[mask] = x[mask] * np.log(y[mask])
    return out


def safe_div(
    numerator: ArrayLike, denominator: ArrayLike, fill: float = 0.0
) -> NDArray[np.float64]:
    """Elementwise division with ``fill`` wherever the denominator is 0."""
    numerator = np.asarray(numerator, dtype=np.float64)
    denominator = np.asarray(denominator, dtype=np.float64)
    numerator, denominator = np.broadcast_arrays(numerator, denominator)
    out = np.full(numerator.shape, fill, dtype=np.float64)
    mask = denominator != 0.0
    out[mask] = numerator[mask] / denominator[mask]
    return out


def normalized(weights: ArrayLike) -> NDArray[np.float64]:
    """Normalise non-negative weights into a probability vector.

    Falls back to the uniform distribution when the total is zero,
    non-finite or negative — the guard every ``w / w.sum()`` call site
    needs and rarely writes.  Bit-exact with ``w / w.sum()`` whenever the
    total is a positive finite float.
    """
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    if weights.size == 0:
        raise ValueError("cannot normalise an empty weight vector")
    total = weights.sum()
    if not np.isfinite(total) or total <= 0.0:
        return np.full(weights.shape, 1.0 / weights.size)
    return weights / total
