"""Analysis layer: runtime contracts and sanctioned numerical primitives.

Two halves of one correctness story:

* :mod:`repro.analysis.contracts` — env-toggled (``REPRO_CONTRACTS=1``)
  shape/dtype/finiteness assertions enforced at the FEAT↔agent and eval
  boundaries; free when disabled.
* :mod:`repro.analysis.numerics` — the only module permitted (by the
  ``tools/repolint`` NUM3xx rules) to call raw ``np.exp``/``np.log``/
  sum-normalisation; everything else uses these clamped helpers.
"""

from repro.analysis.contracts import (
    CONTRACTS_ENV_VAR,
    ContractViolation,
    check_finite,
    check_probability_vector,
    check_scalar_range,
    check_state_batch,
    contracts_enabled,
    set_contracts_enabled,
)
from repro.analysis.numerics import (
    LOG_EPS,
    MAX_EXP_INPUT,
    normalized,
    safe_div,
    safe_exp,
    safe_log,
    safe_xlogy,
    stable_sigmoid,
    stable_softmax,
)

__all__ = [
    "CONTRACTS_ENV_VAR",
    "ContractViolation",
    "LOG_EPS",
    "MAX_EXP_INPUT",
    "check_finite",
    "check_probability_vector",
    "check_scalar_range",
    "check_state_batch",
    "contracts_enabled",
    "normalized",
    "safe_div",
    "safe_exp",
    "safe_log",
    "safe_xlogy",
    "set_contracts_enabled",
    "stable_sigmoid",
    "stable_softmax",
]
