"""Analysis layer: runtime contracts and sanctioned numerical primitives.

Three halves of one correctness story:

* :mod:`repro.analysis.contracts` — env-toggled (``REPRO_CONTRACTS=1``)
  shape/dtype/finiteness assertions enforced at the FEAT↔agent and eval
  boundaries; free when disabled.
* :mod:`repro.analysis.numerics` — the only module permitted (by the
  ``tools/repolint`` NUM3xx rules) to call raw ``np.exp``/``np.log``/
  sum-normalisation; everything else uses these clamped helpers.
* :mod:`repro.analysis.tsan` — env-toggled (``REPRO_TSAN=1``) runtime
  thread sanitizer validating the ASYNC9xx static verdicts: instrumented
  locks and access probes in the serve layer record cross-context state
  accesses and the lockset check flags actual races during chaos runs.
"""

from repro.analysis.contracts import (
    CONTRACTS_ENV_VAR,
    ContractViolation,
    check_finite,
    check_probability_vector,
    check_scalar_range,
    check_state_batch,
    contracts_enabled,
    set_contracts_enabled,
)
from repro.analysis.numerics import (
    LOG_EPS,
    MAX_EXP_INPUT,
    normalized,
    safe_div,
    safe_exp,
    safe_log,
    safe_xlogy,
    stable_sigmoid,
    stable_softmax,
)
from repro.analysis.tsan import (
    TSAN_ENV_VAR,
    TrackedLock,
    set_tsan_enabled,
    tsan_enabled,
)
from repro.analysis.tsan import violations as tsan_violations

__all__ = [
    "CONTRACTS_ENV_VAR",
    "ContractViolation",
    "LOG_EPS",
    "MAX_EXP_INPUT",
    "TSAN_ENV_VAR",
    "TrackedLock",
    "check_finite",
    "check_probability_vector",
    "check_scalar_range",
    "check_state_batch",
    "contracts_enabled",
    "normalized",
    "safe_div",
    "safe_exp",
    "safe_log",
    "safe_xlogy",
    "set_contracts_enabled",
    "set_tsan_enabled",
    "stable_sigmoid",
    "stable_softmax",
    "tsan_enabled",
    "tsan_violations",
]
