"""Env-toggled runtime thread sanitizer for the serve stack.

The ASYNC9xx static pass (``tools/repolint``) proves the *absence* of
whole hazard classes at review time; this module validates those verdicts
dynamically.  With ``REPRO_TSAN`` set (``1``/``true``/``on``/``yes``) the
instrumented code paths record every cross-context access to shared serve
state — which thread touched which attribute, reading or writing, holding
which locks — and :func:`violations` replays the classic lockset check
over what *actually happened* during a run (the chaos suite runs once
with the sanitizer armed and asserts the report is empty).  With the flag
unset (the default and the production configuration) every probe is a
single module-level boolean test.

Three hooks feed the recorder:

* :func:`register_loop` — marks the calling thread as the event-loop
  thread (the server calls it from ``start``); accesses from that thread
  are classified ``loop``, all others ``thread``.
* :class:`TrackedLock` — a ``threading.Lock`` wrapper that maintains the
  per-thread held-lock set the lockset check intersects.  It is a real
  lock even when the sanitizer is off, so instrumented code needs no
  branching.
* :func:`note` — records one attribute access on behalf of the caller.

A **violation** is an attribute observed from more than one context with
at least one write and no lock common to every access — the dynamic twin
of repolint's ASYNC902.  Single-context traffic (however interleaved) is
the event loop's own business and never reported.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from types import TracebackType

__all__ = [
    "TSAN_ENV_VAR",
    "AccessRecord",
    "TrackedLock",
    "Violation",
    "note",
    "register_loop",
    "reset",
    "set_tsan_enabled",
    "tsan_enabled",
    "violations",
]

TSAN_ENV_VAR = "REPRO_TSAN"

# The recorder is process-global on purpose: it observes every thread in
# the process, so its state cannot live on any one instance.  PAR602's
# "no module-level mutation" contract is therefore waived for this file —
# the recorder itself is lock-protected and never touched by rollouts.
# repolint: disable-file=PAR602

_TRUTHY = {"1", "true", "on", "yes"}

_enabled: bool = os.environ.get(TSAN_ENV_VAR, "").strip().lower() in _TRUTHY

#: Guards the recorder's own state — the sanitizer must not race with the
#: races it is hunting.
_state_lock = threading.Lock()
_loop_thread_ids: set[int] = set()
_records: dict[tuple[str, str], list["AccessRecord"]] = {}
_held = threading.local()


@dataclass(frozen=True)
class AccessRecord:
    """One observed access to ``owner.attr``."""

    owner: str
    attr: str
    context: str  # "loop" | "thread"
    thread_id: int
    write: bool
    locks: frozenset[str]


@dataclass(frozen=True)
class Violation:
    """An attribute written across contexts with an empty common lockset."""

    owner: str
    attr: str
    contexts: frozenset[str]
    accesses: tuple[AccessRecord, ...]

    def describe(self) -> str:
        writers = sorted(
            {record.context for record in self.accesses if record.write}
        )
        return (
            f"{self.owner}.{self.attr}: accessed from "
            f"{'/'.join(sorted(self.contexts))} (writes from "
            f"{'/'.join(writers)}) with no common lock"
        )


def tsan_enabled() -> bool:
    """Whether the runtime sanitizer is currently recording."""
    return _enabled


def set_tsan_enabled(enabled: bool) -> bool:
    """Toggle the sanitizer at runtime (tests); returns the old value.

    Process-global configuration like ``np.seterr`` — flipped at startup
    or around a test, never from the serving path.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def reset() -> None:
    """Drop every recorded access and loop registration (test isolation)."""
    with _state_lock:
        _records.clear()
        _loop_thread_ids.clear()


def register_loop() -> None:
    """Classify the calling thread's accesses as event-loop context."""
    if not _enabled:
        return
    with _state_lock:
        _loop_thread_ids.add(threading.get_ident())


def _held_locks() -> set[str]:
    locks: set[str] | None = getattr(_held, "locks", None)
    if locks is None:
        locks = set()
        _held.locks = locks
    return locks


def note(owner: object, attr: str, *, write: bool = False) -> None:
    """Record one access to ``owner.attr`` from the calling thread."""
    if not _enabled:
        return
    label = f"{type(owner).__name__}#{id(owner):x}"
    thread_id = threading.get_ident()
    with _state_lock:
        context = "loop" if thread_id in _loop_thread_ids else "thread"
        _records.setdefault((label, attr), []).append(
            AccessRecord(
                owner=label,
                attr=attr,
                context=context,
                thread_id=thread_id,
                write=write,
                locks=frozenset(_held_locks()),
            )
        )


class TrackedLock:
    """A ``threading.Lock`` that feeds the sanitizer's held-lock sets.

    Always a real lock; the tracking is the only part gated on the
    sanitizer flag.  Non-reentrant, like the lock it wraps.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()

    def __enter__(self) -> "TrackedLock":
        self._lock.acquire()
        if _enabled:
            _held_locks().add(self.name)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if _enabled:
            _held_locks().discard(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()


def violations() -> list[Violation]:
    """Lockset check over everything recorded so far.

    An ``(owner, attr)`` pair is violating when its accesses span more
    than one context, include a write, and share no common lock.
    """
    found: list[Violation] = []
    with _state_lock:
        snapshot = {key: tuple(records) for key, records in _records.items()}
    for (owner, attr), records in sorted(snapshot.items()):
        contexts = {record.context for record in records}
        if len(contexts) < 2:
            continue
        if not any(record.write for record in records):
            continue
        common: set[str] = set(records[0].locks)
        for record in records[1:]:
            common.intersection_update(record.locks)
        if common:
            continue
        found.append(
            Violation(
                owner=owner,
                attr=attr,
                contexts=frozenset(contexts),
                accesses=records,
            )
        )
    return found
