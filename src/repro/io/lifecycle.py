"""Process lifecycle: cooperative SIGINT/SIGTERM shutdown.

Extracted from the CLI's crash-safe training path so every long-running
entry point — training (checkpoint flush before exit) and serving
(drain in-flight requests before exit) — shares one signal discipline:
the first signal only *requests* a stop, the host loop notices the flag
at its next safe boundary and winds down cleanly.  Handlers are always
restored on exit, and non-main-thread use (where ``signal.signal``
raises) degrades to a poll-only flag.
"""

from __future__ import annotations

import signal
import sys
from types import FrameType
from typing import Callable

__all__ = ["GracefulShutdown"]


class GracefulShutdown:
    """Context manager turning SIGINT/SIGTERM into a polled stop flag.

    Entering yields a zero-arg callable returning whether a stop was
    requested — the ``stop_check`` contract of
    :meth:`repro.core.pafeat.PAFeat.fit` and the drain trigger of
    :meth:`repro.serve.server.SelectionServer.run`.  ``action`` names
    what the host will do before exiting; it is echoed to stderr when the
    first signal arrives so an operator watching the process knows the
    signal landed and what the wind-down is waiting on.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, action: str = "shutting down gracefully") -> None:
        self.action = action
        self._stop = False
        self._previous: dict[int, object] = {}

    def __enter__(self) -> Callable[[], bool]:
        self._stop = False
        self._previous = {}

        def handler(signum: int, frame: FrameType | None) -> None:
            del frame
            self._stop = True
            print(
                f"received {signal.Signals(signum).name}; {self.action}...",
                file=sys.stderr,
            )

        for signum in self.SIGNALS:
            try:
                self._previous[signum] = signal.signal(signum, handler)
            except ValueError:  # non-main thread (e.g. embedded use): poll only
                pass
        return lambda: self._stop

    def __exit__(self, *exc_info: object) -> bool:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)  # type: ignore[arg-type]
        return False
