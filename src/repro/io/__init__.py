"""Persistence: save trained selectors, datasets and checkpoints to disk.

A production deployment trains PA-FEAT offline (hours), then serves
unseen-task selections online (milliseconds).  This package provides the
artifact handoff between those phases — and the crash safety a long
training run demands:

* :func:`save_model` / :func:`load_model` — the trained Q-network plus the
  minimal inference context (config, feature-correlation matrix), as a
  directory of ``config.json`` + ``weights.npz`` + ``manifest.json``
  (SHA-256 checksums), written atomically and validated on load.
* :func:`save_suite_csv` / :func:`load_suite_csv` — a
  :class:`~repro.data.tasks.TaskSuite` as a flat CSV (features + label
  columns) plus a JSON sidecar with the seen/unseen partition, so real
  tabular exports can be dropped into the pipeline.
* :class:`CheckpointManager` and the atomic-write helpers
  (:mod:`repro.io.checkpoint`) — durable, corruption-detecting training
  checkpoints behind ``PAFeat.fit(checkpoint_dir=..., resume=True)``.
* :mod:`repro.io.resilience` — the shared resilience primitives
  (:class:`Deadline`, :class:`Retry`, :class:`CircuitBreaker`,
  :class:`TokenBucket`) that the serving stack composes into admission
  control, request deadlines and circuit-broken model loads.
* :mod:`repro.io.faults` — fault-injection and chaos primitives (simulated
  crashes, truncation, bit flips, latency storms, scheduled mid-batch
  failures) for drilling the recovery paths.
"""

from repro.io.checkpoint import (
    Checkpoint,
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointManager,
    TrainingInterrupted,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
)
from repro.io.lifecycle import GracefulShutdown
from repro.io.resilience import (
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    ResilienceError,
    RetriesExhausted,
    Retry,
    TokenBucket,
)
from repro.io.serialization import (
    load_model,
    load_suite_csv,
    save_model,
    save_suite_csv,
)

__all__ = [
    "Checkpoint",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointManager",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "GracefulShutdown",
    "ResilienceError",
    "RetriesExhausted",
    "Retry",
    "TokenBucket",
    "TrainingInterrupted",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_npz",
    "load_model",
    "load_suite_csv",
    "save_model",
    "save_suite_csv",
]
