"""Persistence: save trained selectors and datasets to disk.

A production deployment trains PA-FEAT offline (hours), then serves
unseen-task selections online (milliseconds).  This package provides the
artifact handoff between those phases:

* :func:`save_model` / :func:`load_model` — the trained Q-network plus the
  minimal inference context (config, feature-correlation matrix), as a
  directory of ``config.json`` + ``weights.npz``.
* :func:`save_suite_csv` / :func:`load_suite_csv` — a
  :class:`~repro.data.tasks.TaskSuite` as a flat CSV (features + label
  columns) plus a JSON sidecar with the seen/unseen partition, so real
  tabular exports can be dropped into the pipeline.
"""

from repro.io.serialization import (
    load_model,
    load_suite_csv,
    save_model,
    save_suite_csv,
)

__all__ = ["load_model", "load_suite_csv", "save_model", "save_suite_csv"]
