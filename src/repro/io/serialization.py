"""Model and dataset (de)serialization.

Formats are deliberately boring: JSON for metadata and configs, ``.npz``
for arrays, CSV for tables — all inspectable with standard tools and free
of pickle's code-execution hazards.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.errors import ArtifactError, DataValidationError, NotFittedError
from repro.core.config import (
    AgentConfig,
    ClassifierConfig,
    EnvConfig,
    ITEConfig,
    ITSConfig,
    PAFeatConfig,
)
from repro.io.checkpoint import (
    atomic_write_json,
    atomic_write_npz,
    sha256_file,
)
from repro.core.env import FeatureSelectionEnv
from repro.core.pafeat import PAFeat
from repro.core.state import state_dim
from repro.data.table import StructuredTable
from repro.data.tasks import TaskSuite
from repro.nn.network import load_state_dict
from repro.rl.agent import DuelingDQNAgent
from repro.rl.schedules import ConstantSchedule

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Config round trips
# ---------------------------------------------------------------------------

def config_to_dict(config: PAFeatConfig) -> dict:
    """Serialise a config tree to plain JSON-compatible types."""
    data = asdict(config)
    data["agent"]["hidden"] = list(config.agent.hidden)
    data["classifier"]["hidden"] = list(config.classifier.hidden)
    return data


def config_from_dict(data: dict) -> PAFeatConfig:
    """Rebuild a :class:`PAFeatConfig` from :func:`config_to_dict` output."""
    data = dict(data)
    agent = dict(data.pop("agent"))
    agent["hidden"] = tuple(agent["hidden"])
    classifier = dict(data.pop("classifier"))
    classifier["hidden"] = tuple(classifier["hidden"])
    return PAFeatConfig(
        env=EnvConfig(**data.pop("env")),
        agent=AgentConfig(**agent),
        its=ITSConfig(**data.pop("its")),
        ite=ITEConfig(**data.pop("ite")),
        classifier=ClassifierConfig(**classifier),
        **data,
    )


# ---------------------------------------------------------------------------
# Model persistence
# ---------------------------------------------------------------------------

def save_model(model: PAFeat, directory: str | Path) -> Path:
    """Persist a fitted model's inference artifact to ``directory``.

    Writes ``config.json`` (format version, config, feature count),
    ``weights.npz`` (the online Q-network parameters plus the
    feature-correlation matrix used by the state encoding) and
    ``manifest.json`` (SHA-256 checksum per artifact).  Every file is
    written atomically (temp file → fsync → rename), so a crash mid-save
    can never leave a half-written artifact where a previous good one
    stood; weights are validated to be finite before anything is written.
    """
    agent = model.inference_agent()
    if model._n_features is None:
        raise NotFittedError("model has no feature-space metadata; fit() it first")
    snapshot = agent.save_policy()
    _validate_finite_weights(snapshot, context="refusing to save")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    metadata = {
        "format_version": FORMAT_VERSION,
        "n_features": model._n_features,
        "config": config_to_dict(model.config),
    }
    atomic_write_json(directory / "config.json", metadata)

    arrays = {f"param/{k}": v for k, v in snapshot.items()}
    if model._feature_corr is not None:
        arrays["feature_corr"] = model._feature_corr
    atomic_write_npz(directory / "weights.npz", arrays)
    atomic_write_json(
        directory / "manifest.json",
        {
            "format_version": FORMAT_VERSION,
            "artifacts": {
                name: {
                    "sha256": sha256_file(directory / name),
                    "bytes": (directory / name).stat().st_size,
                }
                for name in ("config.json", "weights.npz")
            },
        },
    )
    return directory


def _validate_finite_weights(snapshot: dict, context: str) -> None:
    """Reject NaN/Inf network parameters — a poisoned artifact is worse
    than no artifact, because it serves garbage selections silently."""
    bad = [
        name
        for name, value in snapshot.items()
        if not np.all(np.isfinite(np.asarray(value)))
    ]
    if bad:
        raise ArtifactError(
            f"{context}: non-finite (NaN/Inf) values in weights {sorted(bad)}"
        )


def _verify_model_manifest(directory: Path) -> None:
    """Check artifact checksums when a manifest is present (new artifacts).

    Pre-manifest model directories still load — corruption detection is
    then limited to what the decoders catch.
    """
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        return
    manifest = json.loads(manifest_path.read_text())
    for name, expected in manifest.get("artifacts", {}).items():
        artifact = directory / name
        if not artifact.exists():
            raise ArtifactError(f"model artifact {name} is missing from {directory}")
        size = artifact.stat().st_size
        if size != expected.get("bytes"):
            raise ArtifactError(
                f"model artifact {name} is {size} bytes, manifest expects "
                f"{expected.get('bytes')} (truncated write?)"
            )
        digest = sha256_file(artifact)
        if digest != expected.get("sha256"):
            raise ArtifactError(
                f"model artifact {name} failed its checksum "
                f"({digest[:12]}… != {str(expected.get('sha256'))[:12]}…); "
                f"the file is corrupt — restore it from a backup or retrain"
            )


def load_model(directory: str | Path) -> PAFeat:
    """Load an inference-ready :class:`PAFeat` saved by :func:`save_model`.

    The returned model supports :meth:`PAFeat.select` /
    :meth:`PAFeat.select_all_unseen`; to continue training, refit instead.
    """
    directory = Path(directory)
    if not directory.exists():
        raise FileNotFoundError(f"model directory {directory} does not exist")
    _verify_model_manifest(directory)
    metadata = json.loads((directory / "config.json").read_text())
    if metadata.get("format_version") != FORMAT_VERSION:
        raise ArtifactError(
            f"unsupported model format {metadata.get('format_version')!r}; "
            f"expected {FORMAT_VERSION}"
        )
    config = config_from_dict(metadata["config"])
    n_features = int(metadata["n_features"])

    with np.load(directory / "weights.npz") as arrays:
        snapshot = {
            key[len("param/"):]: arrays[key]
            for key in arrays.files
            if key.startswith("param/")
        }
        feature_corr = arrays["feature_corr"] if "feature_corr" in arrays.files else None
    _validate_finite_weights(snapshot, context="refusing to load")

    agent = DuelingDQNAgent(
        state_dim=state_dim(n_features),
        n_actions=FeatureSelectionEnv.N_ACTIONS,
        hidden=config.agent.hidden,
        gamma=config.agent.gamma,
        lr=config.agent.lr,
        epsilon_schedule=ConstantSchedule(0.0),  # inference is greedy
        target_sync_every=config.agent.target_sync_every,
        rng=np.random.default_rng(config.seed),
        grad_clip=config.agent.grad_clip,
    )
    load_state_dict(agent.online, snapshot)
    agent.sync_target()

    model = PAFeat(config)
    model._n_features = n_features
    model._feature_corr = feature_corr
    model._loaded_agent = agent
    return model


# ---------------------------------------------------------------------------
# Dataset persistence
# ---------------------------------------------------------------------------

def save_suite_csv(suite: TaskSuite, directory: str | Path) -> Path:
    """Write a suite as ``data.csv`` + ``suite.json`` (task partition)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    table = suite.table
    with open(directory / "data.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.feature_names + table.label_names)
        for i in range(table.n_rows):
            writer.writerow(
                [f"{v:.10g}" for v in table.features[i]]
                + [int(v) for v in table.labels[i]]
            )
    sidecar = {
        "name": suite.name,
        "n_features": table.n_features,
        "seen": [task.label_index for task in suite.seen_tasks],
        "unseen": [task.label_index for task in suite.unseen_tasks],
        "ground_truth": {
            str(task.label_index): list(task.ground_truth_features)
            for task in suite.all_tasks()
            if task.ground_truth_features is not None
        },
    }
    (directory / "suite.json").write_text(json.dumps(sidecar, indent=2))
    return directory


def _first_non_numeric_row(rows: list[list[str]], n_features: int) -> int:
    """Line number (1-based, header included) of the first unparsable row."""
    for line_number, row in enumerate(rows, start=2):
        try:
            [float(v) for v in row[:n_features]]
            [int(v) for v in row[n_features:]]
        except ValueError:
            return line_number
    return 2


def load_suite_csv(directory: str | Path) -> TaskSuite:
    """Load a suite written by :func:`save_suite_csv`."""
    directory = Path(directory)
    sidecar = json.loads((directory / "suite.json").read_text())
    n_features = int(sidecar["n_features"])

    with open(directory / "data.csv", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = list(reader)
    if len(header) <= n_features:
        raise DataValidationError(
            f"CSV has {len(header)} columns but the sidecar declares "
            f"{n_features} features plus at least one label"
        )
    # Validate per-row shape up front: ragged or truncated exports must be
    # reported by row, not surface later as an opaque IndexError/float()
    # failure.  Data rows start at line 2 (line 1 is the header).
    for line_number, row in enumerate(rows, start=2):
        if len(row) != len(header):
            raise DataValidationError(
                f"data.csv row at line {line_number} has {len(row)} columns, "
                f"expected {len(header)} (ragged or truncated file?)"
            )
    try:
        features = np.array(
            [[float(v) for v in row[:n_features]] for row in rows], dtype=np.float64
        )
        labels = np.array(
            [[int(v) for v in row[n_features:]] for row in rows], dtype=np.int64
        )
    except ValueError as exc:
        offending = _first_non_numeric_row(rows, n_features)
        raise DataValidationError(
            f"data.csv row at line {offending} contains a non-numeric value: {exc}"
        ) from exc
    table = StructuredTable(
        features,
        labels,
        feature_names=header[:n_features],
        label_names=header[n_features:],
    )
    ground_truth = {
        int(key): tuple(values)
        for key, values in sidecar.get("ground_truth", {}).items()
    }
    return TaskSuite(
        sidecar["name"],
        table,
        seen_label_indices=sidecar["seen"],
        unseen_label_indices=sidecar["unseen"],
        ground_truth=ground_truth,
    )
