"""Fault-injection and chaos helpers for crash-safety and overload testing.

Small, dependency-light primitives used by ``tests/test_fault_injection.py``
and the serving chaos suite (``tests/test_chaos_serving.py``) to simulate
the failure modes the checkpoint and serving subsystems defend against:

* :class:`CrashAt` — a ``stop_check``-style callable that raises
  :class:`SimulatedCrash` on its N-th invocation, modelling a hard kill
  (``kill -9`` / OOM / power loss) at training iteration N with **no**
  opportunity to flush state.
* :func:`truncate_file` — cut an artifact short, modelling a crash or full
  disk mid-write on a non-atomic writer.
* :func:`flip_bit` — flip one bit in place, modelling silent media or
  transfer corruption that leaves the file length intact.
* :class:`LatencyStorm` — a seeded, toggleable delay schedule wrapped
  around a callable, modelling a slow disk or a GC/IO stall in the
  inference handler (the delays block exactly like real slowness would).
* :class:`ScheduledFailures` — raise on chosen call indices, modelling
  intermittent mid-batch exceptions that must fail one batch, not the
  process.
* :func:`corrupt_model_artifact` — flip a bit inside a saved model's
  weights, modelling a corrupt published version the registry must skip.

They live in the library (not the test tree) so downstream deployments can
reuse them to drill their own recovery procedures.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, Iterable

import numpy as np


class SimulatedCrash(RuntimeError):
    """An injected failure standing in for a real process/machine crash."""


class CrashAt:
    """Raise :class:`SimulatedCrash` on the ``at_call``-th invocation.

    Passed as ``stop_check`` to :meth:`repro.core.pafeat.PAFeat.fit`, which
    consults it once per training iteration — so ``CrashAt(7)`` kills the
    run at iteration 7 before any end-of-iteration checkpoint flush,
    exactly like an uncatchable signal would.
    """

    def __init__(self, at_call: int) -> None:
        if at_call < 1:
            raise ValueError(f"at_call must be >= 1, got {at_call}")
        self.at_call = at_call
        self.calls = 0

    def __call__(self) -> bool:
        self.calls += 1
        if self.calls >= self.at_call:
            raise SimulatedCrash(f"injected crash at call {self.calls}")
        return False


def truncate_file(path: str | Path, keep_bytes: int) -> Path:
    """Truncate ``path`` to its first ``keep_bytes`` bytes."""
    path = Path(path)
    if keep_bytes < 0:
        raise ValueError(f"keep_bytes must be >= 0, got {keep_bytes}")
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(min(keep_bytes, size))
    return path


def flip_bit(path: str | Path, byte_offset: int | None = None, bit: int = 0) -> Path:
    """Flip one bit of ``path`` in place (default: middle byte, bit 0)."""
    if not 0 <= bit <= 7:
        raise ValueError(f"bit must be in [0, 7], got {bit}")
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot flip a bit in empty file {path}")
    offset = len(data) // 2 if byte_offset is None else byte_offset
    if not 0 <= offset < len(data):
        raise ValueError(f"byte_offset {offset} out of range for {len(data)} bytes")
    data[offset] ^= 1 << bit
    with open(path, "wb") as handle:
        handle.write(bytes(data))
        handle.flush()
        os.fsync(handle.fileno())
    return path


def corrupt_model_artifact(
    artifact_dir: str | Path, filename: str = "weights.npz"
) -> Path:
    """Flip one bit inside a saved model artifact's payload file.

    The manifest checksums written by :func:`repro.io.save_model` still
    describe the original bytes, so any subsequent checksum-verified load
    of this version must fail — the registry-fallback scenario.
    """
    target = Path(artifact_dir) / filename
    if not target.is_file():
        raise FileNotFoundError(f"artifact payload {target} does not exist")
    return flip_bit(target)


class LatencyStorm:
    """Seeded, toggleable latency injection around a synchronous callable.

    While :attr:`active`, each wrapped call first blocks for a delay drawn
    uniformly from ``[min_delay_s, max_delay_s]`` out of a seeded
    :class:`numpy.random.Generator` — the schedule replays exactly for a
    given seed.  Blocking is the point: a slow model load or a stalled
    disk blocks the caller just like this does.  ``sleep`` is injectable
    so unit tests can record the schedule instead of waiting it out.
    """

    def __init__(
        self,
        min_delay_s: float,
        max_delay_s: float,
        *,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if min_delay_s < 0:
            raise ValueError(f"min_delay_s must be >= 0, got {min_delay_s}")
        if max_delay_s < min_delay_s:
            raise ValueError("max_delay_s must be >= min_delay_s")
        self.min_delay_s = min_delay_s
        self.max_delay_s = max_delay_s
        self.active = False
        self.calls_delayed = 0
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep

    def next_delay(self) -> float:
        """Draw the next delay from the seeded schedule."""
        span = self.max_delay_s - self.min_delay_s
        return self.min_delay_s + span * float(self._rng.random())

    def start(self) -> None:
        self.active = True

    def stop(self) -> None:
        self.active = False

    def wrap(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """``fn`` with storm delays injected before every call while active."""

        def stormy(*args: Any, **kwargs: Any) -> Any:
            if self.active:
                self.calls_delayed += 1
                self._sleep(self.next_delay())
            return fn(*args, **kwargs)

        return stormy


class ScheduledFailures:
    """Raise :class:`SimulatedCrash` on chosen call indices (1-based).

    Wrapping a batch handler with ``ScheduledFailures({2, 5})`` makes its
    2nd and 5th invocations explode mid-batch — the "one bad batch must
    not kill the worker, and must never emit a partial response" drill.
    """

    def __init__(self, at_calls: Iterable[int]) -> None:
        self.at_calls = frozenset(int(n) for n in at_calls)
        if any(n < 1 for n in self.at_calls):
            raise ValueError("call indices are 1-based and must be >= 1")
        self.calls = 0
        self.failures = 0

    def wrap(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        def flaky(*args: Any, **kwargs: Any) -> Any:
            self.calls += 1
            if self.calls in self.at_calls:
                self.failures += 1
                raise SimulatedCrash(f"injected mid-batch failure at call {self.calls}")
            return fn(*args, **kwargs)

        return flaky
