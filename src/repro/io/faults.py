"""Fault-injection helpers for crash-safety testing.

Small, dependency-free primitives used by ``tests/test_fault_injection.py``
to simulate the failure modes the checkpoint subsystem defends against:

* :class:`CrashAt` — a ``stop_check``-style callable that raises
  :class:`SimulatedCrash` on its N-th invocation, modelling a hard kill
  (``kill -9`` / OOM / power loss) at training iteration N with **no**
  opportunity to flush state.
* :func:`truncate_file` — cut an artifact short, modelling a crash or full
  disk mid-write on a non-atomic writer.
* :func:`flip_bit` — flip one bit in place, modelling silent media or
  transfer corruption that leaves the file length intact.

They live in the library (not the test tree) so downstream deployments can
reuse them to drill their own recovery procedures.
"""

from __future__ import annotations

import os
from pathlib import Path


class SimulatedCrash(RuntimeError):
    """An injected failure standing in for a real process/machine crash."""


class CrashAt:
    """Raise :class:`SimulatedCrash` on the ``at_call``-th invocation.

    Passed as ``stop_check`` to :meth:`repro.core.pafeat.PAFeat.fit`, which
    consults it once per training iteration — so ``CrashAt(7)`` kills the
    run at iteration 7 before any end-of-iteration checkpoint flush,
    exactly like an uncatchable signal would.
    """

    def __init__(self, at_call: int) -> None:
        if at_call < 1:
            raise ValueError(f"at_call must be >= 1, got {at_call}")
        self.at_call = at_call
        self.calls = 0

    def __call__(self) -> bool:
        self.calls += 1
        if self.calls >= self.at_call:
            raise SimulatedCrash(f"injected crash at call {self.calls}")
        return False


def truncate_file(path: str | Path, keep_bytes: int) -> Path:
    """Truncate ``path`` to its first ``keep_bytes`` bytes."""
    path = Path(path)
    if keep_bytes < 0:
        raise ValueError(f"keep_bytes must be >= 0, got {keep_bytes}")
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(min(keep_bytes, size))
    return path


def flip_bit(path: str | Path, byte_offset: int | None = None, bit: int = 0) -> Path:
    """Flip one bit of ``path`` in place (default: middle byte, bit 0)."""
    if not 0 <= bit <= 7:
        raise ValueError(f"bit must be in [0, 7], got {bit}")
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot flip a bit in empty file {path}")
    offset = len(data) // 2 if byte_offset is None else byte_offset
    if not 0 <= offset < len(data):
        raise ValueError(f"byte_offset {offset} out of range for {len(data)} bytes")
    data[offset] ^= 1 << bit
    with open(path, "wb") as handle:
        handle.write(bytes(data))
        handle.flush()
        os.fsync(handle.fileno())
    return path
