"""Crash-safe checkpointing: atomic artifact I/O and checkpoint retention.

Long multi-task training runs are PA-FEAT's whole value proposition — the
cost of Algorithm 1 is amortised across every future unseen task — so an
interrupted run must never lose its progress.  This module provides the
durable layer underneath :meth:`repro.core.pafeat.PAFeat.fit`:

* **Atomic writes** (:func:`atomic_write_bytes` and friends): artifacts are
  written to a temporary path in the destination directory, flushed and
  fsynced, then published with ``os.replace``.  A crash at any point leaves
  either the previous artifact or no artifact — never a half-written file.
* **Checkpoints** (:class:`CheckpointManager`): one directory per
  checkpoint (``ckpt-00000042/``) holding ``state.json`` (counters, RNG
  states, telemetry), ``arrays.npz`` (network weights, optimizer moments,
  replay transitions) and a ``manifest.json`` carrying a SHA-256 checksum
  per artifact.  The manifest is written last, so a checkpoint without a
  valid manifest is by definition incomplete and is skipped.
* **Corruption detection**: :meth:`CheckpointManager.latest_valid` walks
  checkpoints newest-first, verifies checksums, and falls back to the
  newest checkpoint that passes — truncated or bit-flipped artifacts are
  reported (``logging`` + :attr:`CheckpointManager.skipped`) and ignored.
* **Retention**: a keep-last-K policy prunes old checkpoints after each
  successful save.

The manager is payload-agnostic: it stores a JSON-able ``meta`` dict plus a
``{name: ndarray}`` array mapping.  The training stack's
``capture_state()`` / ``restore_state()`` methods produce and consume that
payload (see :meth:`repro.core.feat.FEATTrainer.capture_state`).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

# Canonical homes are repro.errors (the typed taxonomy); re-exported here
# (``as`` keeps the re-export explicit under --no-implicit-reexport)
# because checkpointing is where callers have always imported them from.
from repro.errors import CheckpointCorruptionError as CheckpointCorruptionError
from repro.errors import CheckpointError as CheckpointError
from repro.errors import TrainingInterrupted as TrainingInterrupted
from repro.obs.log import get_logger

_LOG = get_logger("io.checkpoint")

CHECKPOINT_FORMAT_VERSION = 1
STATE_NAME = "state.json"
ARRAYS_NAME = "arrays.npz"
MANIFEST_NAME = "manifest.json"

_CKPT_PATTERN = re.compile(r"^ckpt-(\d{8})$")


# ---------------------------------------------------------------------------
# RNG state round trips
# ---------------------------------------------------------------------------

def rng_state(rng: np.random.Generator) -> dict:
    """A generator's bit-generator state as a JSON-able dict."""
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a state captured by :func:`rng_state` (exact stream resume)."""
    if state.get("bit_generator") != type(rng.bit_generator).__name__:
        raise CheckpointError(
            f"RNG mismatch: checkpoint holds {state.get('bit_generator')!r} state "
            f"but the generator is {type(rng.bit_generator).__name__!r}"
        )
    rng.bit_generator.state = state


# ---------------------------------------------------------------------------
# Atomic artifact I/O
# ---------------------------------------------------------------------------

def sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str | Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def fsync_directory(directory: str | Path) -> None:
    """Flush a directory entry so a rename survives power loss (POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - some filesystems refuse
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically: temp file → fsync → replace.

    A crash before the final ``os.replace`` leaves the previous content of
    ``path`` (or nothing) in place; readers never observe a partial write.
    """
    path = Path(path)
    fd, temp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)
    return path


def atomic_write_json(path: str | Path, obj: object) -> Path:
    return atomic_write_bytes(path, json.dumps(obj, indent=2).encode("utf-8"))


def atomic_write_npz(path: str | Path, arrays: dict[str, np.ndarray]) -> Path:
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return atomic_write_bytes(path, buffer.getvalue())


# ---------------------------------------------------------------------------
# Checkpoint store
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Checkpoint:
    """A validated, fully loaded checkpoint."""

    path: Path
    iteration: int
    meta: dict
    arrays: dict[str, np.ndarray] = field(repr=False)


class CheckpointManager:
    """Durable store of training checkpoints under one directory.

    Each checkpoint is staged in a hidden ``.staging-*`` directory, written
    artifact-by-artifact with atomic file writes, then published with a
    single directory rename — so the ``ckpt-*`` namespace only ever
    contains checkpoints whose every artifact hit the disk, and a crash at
    any point during :meth:`save` is invisible to :meth:`latest_valid`.
    """

    def __init__(self, directory: str | Path, keep_last: int = 3) -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = keep_last
        #: corrupt/incomplete checkpoints seen by :meth:`latest_valid`,
        #: as ``(path, reason)`` pairs — surfaced for observability.
        self.skipped: list[tuple[Path, str]] = []

    # -- enumeration ----------------------------------------------------
    def checkpoint_paths(self) -> list[Path]:
        """Published checkpoint directories, oldest → newest."""
        found = []
        for entry in self.directory.iterdir():
            match = _CKPT_PATTERN.match(entry.name)
            if match and entry.is_dir():
                found.append((int(match.group(1)), entry))
        return [path for _, path in sorted(found)]

    # -- write ----------------------------------------------------------
    def save(self, iteration: int, meta: dict, arrays: dict[str, np.ndarray]) -> Path:
        """Publish one checkpoint atomically and prune old ones."""
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        name = f"ckpt-{iteration:08d}"
        staging = Path(
            tempfile.mkdtemp(prefix=f".staging-{name}-", dir=self.directory)
        )
        try:
            state_doc = {
                "format_version": CHECKPOINT_FORMAT_VERSION,
                "iteration": iteration,
                "meta": meta,
            }
            atomic_write_json(staging / STATE_NAME, state_doc)
            atomic_write_npz(staging / ARRAYS_NAME, arrays)
            manifest = {
                "format_version": CHECKPOINT_FORMAT_VERSION,
                "iteration": iteration,
                "artifacts": {
                    artifact: {
                        "sha256": sha256_file(staging / artifact),
                        "bytes": (staging / artifact).stat().st_size,
                    }
                    for artifact in (STATE_NAME, ARRAYS_NAME)
                },
            }
            atomic_write_json(staging / MANIFEST_NAME, manifest)
            final = self.directory / name
            if final.exists():
                # Re-saving an iteration (e.g. resuming over a corrupt
                # checkpoint): retire the old directory out of the visible
                # namespace first, then publish.
                retired = Path(
                    tempfile.mkdtemp(prefix=f".retired-{name}-", dir=self.directory)
                )
                os.replace(final, retired / name)
                shutil.rmtree(retired, ignore_errors=True)
            os.replace(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        fsync_directory(self.directory)
        self._prune()
        return final

    def _prune(self) -> None:
        """Keep the newest ``keep_last`` checkpoints; drop stale staging dirs."""
        paths = self.checkpoint_paths()
        for stale in paths[: -self.keep_last]:
            shutil.rmtree(stale, ignore_errors=True)
        for entry in self.directory.iterdir():
            if entry.name.startswith((".staging-", ".retired-")) and entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)

    # -- read -----------------------------------------------------------
    def validate(self, path: str | Path) -> dict:
        """Check one checkpoint's manifest and checksums; return the manifest.

        Raises :class:`CheckpointCorruptionError` describing the first
        problem found (missing artifact, size mismatch, checksum mismatch,
        unreadable manifest, unsupported format version).
        """
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise CheckpointCorruptionError(
                f"{path.name}: missing {MANIFEST_NAME} (incomplete checkpoint)"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointCorruptionError(
                f"{path.name}: unreadable manifest ({exc})"
            ) from exc
        if manifest.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointCorruptionError(
                f"{path.name}: unsupported checkpoint format "
                f"{manifest.get('format_version')!r} "
                f"(expected {CHECKPOINT_FORMAT_VERSION})"
            )
        for artifact, expected in manifest.get("artifacts", {}).items():
            artifact_path = path / artifact
            if not artifact_path.exists():
                raise CheckpointCorruptionError(f"{path.name}: missing {artifact}")
            size = artifact_path.stat().st_size
            if size != expected.get("bytes"):
                raise CheckpointCorruptionError(
                    f"{path.name}: {artifact} is {size} bytes, "
                    f"manifest expects {expected.get('bytes')} (truncated?)"
                )
            digest = sha256_file(artifact_path)
            if digest != expected.get("sha256"):
                raise CheckpointCorruptionError(
                    f"{path.name}: {artifact} checksum mismatch "
                    f"({digest[:12]}… != {str(expected.get('sha256'))[:12]}…)"
                )
        return manifest

    def load(self, path: str | Path) -> Checkpoint:
        """Validate and fully load one checkpoint."""
        path = Path(path)
        manifest = self.validate(path)
        try:
            state_doc = json.loads((path / STATE_NAME).read_text())
            with np.load(path / ARRAYS_NAME) as handle:
                arrays = {key: handle[key] for key in handle.files}
        except Exception as exc:  # any decode failure ⇒ corrupt artifact
            raise CheckpointCorruptionError(
                f"{path.name}: failed to decode artifacts ({exc})"
            ) from exc
        return Checkpoint(
            path=path,
            iteration=int(manifest["iteration"]),
            meta=state_doc.get("meta", {}),
            arrays=arrays,
        )

    def latest_valid(self) -> Checkpoint | None:
        """The newest checkpoint that passes validation, or ``None``.

        Corrupt or incomplete checkpoints are logged, recorded in
        :attr:`skipped` and passed over — resume degrades gracefully to the
        most recent state that is actually trustworthy.
        """
        for path in reversed(self.checkpoint_paths()):
            try:
                return self.load(path)
            except CheckpointError as exc:
                _LOG.warning("skipping corrupt checkpoint %s: %s", path, exc)
                self.skipped.append((path, str(exc)))
        return None
