"""Resilience primitives: deadlines, retries, circuit breakers, rate limits.

The serving stack (and any future distributed component) needs four small,
composable defenses against the failure modes a production deployment
actually sees — slow disks, corrupt artifacts, overload, and stuck
dependencies.  They live in ``repro.io`` (a *free* layer under the import
contract) so every layer can use them without bending the architecture:

* :class:`Deadline` — a propagatable latency budget.  Created once at the
  edge (one per request), carried call-to-call, and consulted with
  :meth:`Deadline.remaining` / :attr:`Deadline.expired` so each hop spends
  only what is left rather than re-granting itself a fresh timeout.
* :class:`Retry` — bounded retries with exponential backoff and **seeded**
  jitter (a :class:`numpy.random.Generator` injected by seed, honoring the
  repolint RNG discipline: no hidden global randomness, replayable delay
  schedules).
* :class:`CircuitBreaker` — closed → open → half-open with an injectable
  monotonic clock.  Repeated failures trip the circuit so callers stop
  hammering a broken dependency; after ``reset_timeout_s`` a limited
  number of half-open probes decide between closing and re-opening.
* :class:`TokenBucket` — a lazily refilled rate limiter for admission
  control (burst up to ``capacity``, sustained ``refill_per_s``).

Everything is synchronous, allocation-light and dependency-free beyond
numpy; async callers use :meth:`Deadline.remaining` as their
``asyncio.wait_for`` timeout.  All clocks default to
:func:`time.monotonic` and are injectable so tests drive every state
transition deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, TypeVar

import numpy as np

# Canonical home is repro.errors (the typed taxonomy); re-exported here
# because the serve stack has always imported it from this module.
from repro.errors import ResilienceError as ResilienceError

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "ResilienceError",
    "RetriesExhausted",
    "Retry",
    "TokenBucket",
]

T = TypeVar("T")


class DeadlineExceeded(ResilienceError):
    """An operation ran past (or was rejected by) its :class:`Deadline`."""


class CircuitOpen(ResilienceError):
    """A call was refused because its :class:`CircuitBreaker` is open."""


class RetriesExhausted(ResilienceError):
    """Every attempt of a :class:`Retry` schedule failed."""


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------


class Deadline:
    """A fixed latency budget, consumable across call boundaries.

    A request gets one Deadline at the edge; every downstream hop asks
    :meth:`remaining` for its own timeout and checks :attr:`expired`
    before doing work, so queue time, I/O time and compute time all draw
    from the same budget instead of stacking independent timeouts.
    """

    __slots__ = ("budget_s", "_clock", "_expires_at")

    def __init__(
        self, budget_s: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget_s < 0:
            raise ValueError(f"budget_s must be >= 0, got {budget_s}")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._expires_at = clock() + self.budget_s

    @classmethod
    def after_ms(
        cls, budget_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        return cls(budget_ms / 1000.0, clock=clock)

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def require(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget_s * 1000.0:.0f} ms budget"
            )

    def __repr__(self) -> str:
        return (
            f"Deadline(budget_s={self.budget_s:.3f}, "
            f"remaining_s={self.remaining():.3f})"
        )


# ---------------------------------------------------------------------------
# Retry
# ---------------------------------------------------------------------------


class Retry:
    """Bounded retries with exponential backoff and seeded jitter.

    The delay before attempt ``n+1`` is
    ``min(max_delay_s, base_delay_s * multiplier**n)`` scaled by a jitter
    factor drawn from an **injected seed** (``[1 - jitter, 1]``, so the
    configured delay is an upper bound).  Seeding keeps the schedule
    replayable — the same seed produces the same backoff trace, which is
    what the repolint RNG rules demand of every random draw in the repo.
    """

    def __init__(
        self,
        *,
        max_attempts: int = 3,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
        retry_on: tuple[type[BaseException], ...] = (OSError,),
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, BaseException, float], None] | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay_s < 0:
            raise ValueError(f"base_delay_s must be >= 0, got {base_delay_s}")
        if max_delay_s < base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.multiplier = multiplier
        self.jitter = jitter
        self.retry_on = retry_on
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep
        self._on_retry = on_retry

    def delays(self) -> Iterator[float]:
        """The jittered backoff schedule (``max_attempts - 1`` delays)."""
        for attempt in range(self.max_attempts - 1):
            raw = min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)
            yield raw * (1.0 - self.jitter * float(self._rng.random()))

    def call(self, fn: Callable[[], T], *, deadline: Deadline | None = None) -> T:
        """Invoke ``fn`` until it succeeds, attempts run out, or the
        deadline expires; re-raises non-retryable exceptions immediately."""
        last_error: BaseException | None = None
        delays = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None:
                deadline.require("retryable operation")
            try:
                return fn()
            except self.retry_on as exc:
                last_error = exc
                if attempt == self.max_attempts:
                    break
                delay = next(delays)
                if deadline is not None:
                    delay = min(delay, deadline.remaining())
                if self._on_retry is not None:
                    self._on_retry(attempt, exc, delay)
                self._sleep(delay)
        raise RetriesExhausted(
            f"gave up after {self.max_attempts} attempts: {last_error}"
        ) from last_error


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed / open / half-open failure isolation with an injectable clock.

    * **closed** — calls flow; ``failure_threshold`` consecutive failures
      trip the circuit open.
    * **open** — calls are refused outright (the broken dependency gets no
      traffic) until ``reset_timeout_s`` has elapsed.
    * **half-open** — up to ``half_open_probes`` trial calls are admitted;
      one success closes the circuit, one failure re-opens it and restarts
      the reset clock.

    State transitions are reported through ``on_state_change(old, new)``
    so a server can export breaker state as a metric.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_state_change: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ValueError(f"reset_timeout_s must be >= 0, got {reset_timeout_s}")
        if half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {half_open_probes}")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_state_change = on_state_change
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0

    # -- state ----------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state; reading it applies the open → half-open timer."""
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._transition(BREAKER_HALF_OPEN)
            self._probes = 0
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def _transition(self, new_state: str) -> None:
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        if self._on_state_change is not None:
            self._on_state_change(old_state, new_state)

    # -- protocol -------------------------------------------------------
    def allow(self) -> bool:
        """May a call proceed right now?  Half-open consumes a probe slot."""
        state = self.state
        if state == BREAKER_CLOSED:
            return True
        if state == BREAKER_OPEN:
            return False
        if self._probes >= self.half_open_probes:
            return False
        self._probes += 1
        return True

    def record_success(self) -> None:
        """A guarded call succeeded; half-open success closes the circuit."""
        self._failures = 0
        if self.state != BREAKER_CLOSED:
            self._transition(BREAKER_CLOSED)
            self._probes = 0

    def record_failure(self) -> None:
        """A guarded call failed; trips or re-opens the circuit as needed."""
        self._failures += 1
        state = self.state
        if state == BREAKER_HALF_OPEN or (
            state == BREAKER_CLOSED and self._failures >= self.failure_threshold
        ):
            self._transition(BREAKER_OPEN)
            self._opened_at = self._clock()
            self._probes = 0

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the breaker: refuse when open, record outcome."""
        if not self.allow():
            raise CircuitOpen(
                f"circuit is {self.state} after {self._failures} consecutive "
                f"failures; retry after {self.reset_timeout_s:.1f}s"
            )
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


# ---------------------------------------------------------------------------
# Token bucket
# ---------------------------------------------------------------------------


class TokenBucket:
    """Lazily refilled token-bucket rate limiter.

    Admits bursts up to ``capacity`` and a sustained ``refill_per_s``;
    :meth:`try_acquire` never blocks — admission control wants an instant
    shed decision, not a queue.
    """

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if refill_per_s <= 0:
            raise ValueError(f"refill_per_s must be > 0, got {refill_per_s}")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._last_refill = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_s
            )
            self._last_refill = now

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (after a lazy refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False means shed the request."""
        if tokens <= 0:
            raise ValueError(f"tokens must be > 0, got {tokens}")
        self._refill()
        if self._tokens < tokens:
            return False
        self._tokens -= tokens
        return True

    def retry_after_s(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will have refilled — the 429 hint."""
        self._refill()
        deficit = max(0.0, tokens - self._tokens)
        return deficit / self.refill_per_s
