"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — list the dataset catalog (Table I), or one dataset's details.
* ``train`` — fit PA-FEAT on a dataset's seen tasks and save the model.
* ``select`` — load a saved model and select features for unseen tasks.
* ``experiment`` — run one paper artefact (table1, fig5, ..., fig9) and
  print its rows.
* ``serve`` — run the async micro-batching selection server on a saved
  model (or a directory of versioned models); ``/select``, ``/healthz``,
  ``/metrics``, graceful drain on SIGTERM.
* ``obs`` — inspect observability artifacts; ``obs summarize`` renders a
  run report from a ``--telemetry-dir`` event stream.

Examples::

    python -m repro info
    python -m repro train --dataset water-quality --output /tmp/model
    python -m repro train --dataset water-quality --output /tmp/model \
        --telemetry-dir /tmp/telemetry
    python -m repro obs summarize /tmp/telemetry
    python -m repro select --model /tmp/model --dataset water-quality
    python -m repro experiment --artefact table2 --scale smoke
    python -m repro serve --checkpoint-dir /tmp/model --port 8765
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace

import numpy as np

from repro import __version__
from repro.core.pafeat import PAFeat
from repro.data.catalog import DATASETS, dataset_names
from repro.experiments.runner import load_suite, make_config
from repro.io.lifecycle import GracefulShutdown

#: Exit code for a run stopped by SIGINT/SIGTERM (after the checkpoint flush).
EXIT_INTERRUPTED = 130


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PA-FEAT reproduction: fast feature selection via MT-DRL",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="describe the dataset catalog")
    info.add_argument("--dataset", choices=dataset_names(), help="one dataset's details")

    train = subparsers.add_parser("train", help="fit PA-FEAT and save the model")
    train.add_argument("--dataset", required=True, choices=dataset_names())
    train.add_argument("--output", required=True, help="directory for the model artifact")
    train.add_argument("--scale", default="mini", choices=("smoke", "mini", "full"))
    train.add_argument("--iterations", type=int, default=None, help="override iteration count")
    train.add_argument("--mfr", type=float, default=0.6, help="max feature ratio")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--checkpoint-dir",
        default=None,
        help="flush crash-safe training checkpoints to this directory",
    )
    train.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="iterations between checkpoints (default: config checkpoint_every)",
    )
    train.add_argument(
        "--keep-last",
        type=int,
        default=3,
        help="how many checkpoints to retain (default: 3)",
    )
    train.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest valid checkpoint in --checkpoint-dir",
    )
    train.add_argument(
        "--rollout-workers",
        type=int,
        default=None,
        help="rollout worker processes for the Buffer Filling Phase "
        "(default: $REPRO_ROLLOUT_WORKERS, else 1 = serial)",
    )
    train.add_argument(
        "--telemetry-dir",
        default=None,
        help="write the training telemetry stream (events.jsonl + "
        "trace.jsonl) to this directory; inspect it afterwards with "
        "`repro obs summarize <dir>`",
    )

    select = subparsers.add_parser("select", help="select features with a saved model")
    select.add_argument("--model", required=True, help="model directory from `train`")
    select.add_argument("--dataset", required=True, choices=dataset_names())
    select.add_argument("--scale", default="mini", choices=("smoke", "mini", "full"))
    select.add_argument("--seed", type=int, default=0)
    select.add_argument("--evaluate", action="store_true", help="score subsets with the SVM protocol")

    experiment = subparsers.add_parser("experiment", help="run one paper artefact")
    experiment.add_argument(
        "--artefact",
        required=True,
        choices=("table1", "fig5", "fig6", "table2", "fig7", "table3", "fig8", "fig9"),
    )
    experiment.add_argument("--scale", default="smoke", choices=("smoke", "mini", "full"))

    serve = subparsers.add_parser(
        "serve", help="run the async micro-batching selection server"
    )
    serve.add_argument(
        "--checkpoint-dir",
        required=True,
        help="model registry root: a saved model artifact (from `train`) "
        "or a directory of versioned artifact subdirectories",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--max-batch-size",
        type=int,
        default=64,
        help="lockstep episodes per inference batch (default: 64)",
    )
    serve.add_argument(
        "--max-latency-ms",
        type=float,
        default=5.0,
        help="micro-batching latency budget in ms (default: 5.0)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=256,
        help="admission-queue bound; beyond it requests are shed with "
        "429 + Retry-After (default: 256)",
    )
    serve.add_argument(
        "--request-timeout-ms",
        type=float,
        default=2000.0,
        help="per-request deadline in ms; expired requests get 504 without "
        "consuming a batch slot (default: 2000; 0 disables)",
    )
    serve.add_argument(
        "--rate-limit-rps",
        type=float,
        default=None,
        help="token-bucket admission rate in requests/s "
        "(default: unlimited)",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive reload failures that trip the model-reload "
        "circuit breaker open (default: 3)",
    )
    serve.add_argument(
        "--breaker-reset-s",
        type=float,
        default=30.0,
        help="seconds the reload breaker stays open before a half-open "
        "probe (default: 30)",
    )
    serve.add_argument(
        "--watchdog-timeout-ms",
        type=float,
        default=5000.0,
        help="flush-loop stall detector: pending work older than this "
        "fails with a typed error and the loop restarts "
        "(default: 5000; 0 disables)",
    )
    serve.add_argument(
        "--io-timeout-s",
        type=float,
        default=10.0,
        help="socket read/write timeout per request (default: 10)",
    )

    obs = subparsers.add_parser(
        "obs", help="inspect observability artifacts (telemetry, traces)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize", help="render a run report from a telemetry directory"
    )
    summarize.add_argument(
        "path",
        help="telemetry directory (or events.jsonl file) written by "
        "`repro train --telemetry-dir`",
    )
    summarize.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable summary instead of the report",
    )
    return parser


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.experiments import table1

    if args.dataset:
        spec = DATASETS[args.dataset]
        print(f"{spec.name}: {spec.n_instances} instances x {spec.n_features} features")
        print(f"  seen tasks:   {spec.n_seen}")
        print(f"  unseen tasks: {spec.n_unseen}")
        print(f"  generator: {spec.task_informative} informative features/task, "
              f"{spec.n_concepts} concept pools, seed {spec.seed}")
        return 0
    print(table1.render(table1.run(scale="mini", verify=False)))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.io import TrainingInterrupted, save_model

    if args.resume and args.checkpoint_dir is None:
        raise ValueError("--resume requires --checkpoint-dir")
    suite = load_suite(args.dataset, args.scale)
    train, _ = suite.split_rows(0.7, np.random.default_rng(args.seed))
    config = make_config(args.scale, mfr=args.mfr, seed=args.seed)
    if args.iterations is not None:
        config = replace(config, n_iterations=args.iterations)
    print(f"training on {train.n_seen} seen tasks of {suite.name} "
          f"({config.n_iterations} iterations)...")
    start = time.perf_counter()
    with _graceful_shutdown() as stop_requested:
        try:
            model = PAFeat(config).fit(
                train,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                keep_last=args.keep_last,
                resume=args.resume,
                stop_check=stop_requested if args.checkpoint_dir else None,
                rollout_workers=args.rollout_workers,
                telemetry=args.telemetry_dir,
            )
        except TrainingInterrupted as exc:
            where = (
                f"checkpoint flushed to {exc.checkpoint_path}"
                if exc.checkpoint_path
                else "no checkpoint directory configured"
            )
            print(
                f"interrupted at iteration {exc.iteration}; {where}. "
                f"Re-run with --resume to continue.",
                file=sys.stderr,
            )
            return EXIT_INTERRUPTED
    print(f"trained in {time.perf_counter() - start:.1f}s")
    directory = save_model(model, args.output)
    print(f"model saved to {directory}")
    if args.telemetry_dir:
        print(
            f"telemetry written to {args.telemetry_dir} "
            f"(view with `repro obs summarize {args.telemetry_dir}`)"
        )
    return 0


def _graceful_shutdown() -> GracefulShutdown:
    """Training's stop discipline: first signal → checkpoint flush → exit.

    The signal machinery lives in :class:`repro.io.lifecycle.GracefulShutdown`
    (shared with ``repro serve``, whose wind-down drains requests instead
    of flushing a checkpoint); this wrapper pins the training wording.
    """
    return GracefulShutdown(
        action="finishing the current iteration and flushing a checkpoint"
    )


def _cmd_select(args: argparse.Namespace) -> int:
    from repro.io import load_model

    model = load_model(args.model)
    suite = load_suite(args.dataset, args.scale)
    train, test = suite.split_rows(0.7, np.random.default_rng(args.seed))
    test_by_index = {task.label_index: task for task in test.unseen_tasks}
    for task in train.unseen_tasks:
        start = time.perf_counter()
        subset = model.select(task)
        latency_ms = (time.perf_counter() - start) * 1000.0
        line = f"{task.name}: {len(subset)} features {subset} [{latency_ms:.1f} ms]"
        if args.evaluate:
            from repro.eval.svm import evaluate_subset_with_svm

            test_task = test_by_index[task.label_index]
            scores = evaluate_subset_with_svm(
                subset, task.features, task.labels,
                test_task.features, test_task.labels,
            )
            line += f" F1={scores['f1']:.3f} AUC={scores['auc']:.3f}"
        print(line)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.artefact}")
    if args.artefact == "table1":
        print(module.render(module.run(scale=args.scale, verify=True)))
    elif args.artefact in ("fig8", "fig9"):
        print(module.render(module.run(scale=args.scale)))
    else:
        print(module.render(module.run(datasets=("water-quality",), scale=args.scale)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ModelRegistry, SelectionServer

    registry = ModelRegistry(args.checkpoint_dir)
    version = registry.load()
    for path, reason in registry.skipped:
        print(f"skipped corrupt model version {path.name}: {reason}", file=sys.stderr)
    server = SelectionServer(
        registry,
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_latency_ms=args.max_latency_ms,
        max_queue_depth=args.max_queue_depth,
        request_timeout_ms=args.request_timeout_ms or None,
        rate_limit_rps=args.rate_limit_rps,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset_s,
        watchdog_timeout_ms=args.watchdog_timeout_ms or None,
        io_timeout_s=args.io_timeout_s,
    )
    print(
        f"serving model version {version.name!r} ({version.n_features} features) "
        f"on http://{args.host}:{args.port} "
        f"[batch<={args.max_batch_size}, latency<={args.max_latency_ms}ms, "
        f"queue<={args.max_queue_depth}, deadline="
        f"{args.request_timeout_ms or 'off'}ms] "
        f"-- POST /select, GET /healthz, GET /metrics; Ctrl-C to drain and exit"
    )
    asyncio.run(server.run())
    print("drained; bye")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs.telemetry import (
        read_events,
        render_run_report,
        summarize_events,
    )

    if args.obs_command == "summarize":
        summary = summarize_events(read_events(args.path))
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_run_report(summary))
        return 0
    raise ValueError(f"unknown obs subcommand {args.obs_command!r}")


_COMMANDS = {
    "info": _cmd_info,
    "train": _cmd_train,
    "select": _cmd_select,
    "experiment": _cmd_experiment,
    "serve": _cmd_serve,
    "obs": _cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Expected failures (bad inputs, missing/corrupt artifacts) surface as a
    one-line ``error:`` message on stderr and a nonzero exit code rather
    than a traceback; genuine bugs still propagate loudly.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, RuntimeError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed the pipe early (`repro obs summarize … | head`).
        # Point stdout at devnull so the interpreter's shutdown flush does
        # not raise a second time, and exit like head's upstream should.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
