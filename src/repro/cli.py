"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — list the dataset catalog (Table I), or one dataset's details.
* ``train`` — fit PA-FEAT on a dataset's seen tasks and save the model.
* ``select`` — load a saved model and select features for unseen tasks.
* ``experiment`` — run one paper artefact (table1, fig5, ..., fig9) and
  print its rows.

Examples::

    python -m repro info
    python -m repro train --dataset water-quality --output /tmp/model
    python -m repro select --model /tmp/model --dataset water-quality
    python -m repro experiment --artefact table2 --scale smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

import numpy as np

from repro.core.pafeat import PAFeat
from repro.data.catalog import DATASETS, dataset_names
from repro.experiments.runner import load_suite, make_config


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PA-FEAT reproduction: fast feature selection via MT-DRL",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="describe the dataset catalog")
    info.add_argument("--dataset", choices=dataset_names(), help="one dataset's details")

    train = subparsers.add_parser("train", help="fit PA-FEAT and save the model")
    train.add_argument("--dataset", required=True, choices=dataset_names())
    train.add_argument("--output", required=True, help="directory for the model artifact")
    train.add_argument("--scale", default="mini", choices=("smoke", "mini", "full"))
    train.add_argument("--iterations", type=int, default=None, help="override iteration count")
    train.add_argument("--mfr", type=float, default=0.6, help="max feature ratio")
    train.add_argument("--seed", type=int, default=0)

    select = subparsers.add_parser("select", help="select features with a saved model")
    select.add_argument("--model", required=True, help="model directory from `train`")
    select.add_argument("--dataset", required=True, choices=dataset_names())
    select.add_argument("--scale", default="mini", choices=("smoke", "mini", "full"))
    select.add_argument("--seed", type=int, default=0)
    select.add_argument("--evaluate", action="store_true", help="score subsets with the SVM protocol")

    experiment = subparsers.add_parser("experiment", help="run one paper artefact")
    experiment.add_argument(
        "--artefact",
        required=True,
        choices=("table1", "fig5", "fig6", "table2", "fig7", "table3", "fig8", "fig9"),
    )
    experiment.add_argument("--scale", default="smoke", choices=("smoke", "mini", "full"))
    return parser


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.experiments import table1

    if args.dataset:
        spec = DATASETS[args.dataset]
        print(f"{spec.name}: {spec.n_instances} instances x {spec.n_features} features")
        print(f"  seen tasks:   {spec.n_seen}")
        print(f"  unseen tasks: {spec.n_unseen}")
        print(f"  generator: {spec.task_informative} informative features/task, "
              f"{spec.n_concepts} concept pools, seed {spec.seed}")
        return 0
    print(table1.render(table1.run(scale="mini", verify=False)))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.io import save_model

    suite = load_suite(args.dataset, args.scale)
    train, _ = suite.split_rows(0.7, np.random.default_rng(args.seed))
    config = make_config(args.scale, mfr=args.mfr, seed=args.seed)
    if args.iterations is not None:
        config = replace(config, n_iterations=args.iterations)
    print(f"training on {train.n_seen} seen tasks of {suite.name} "
          f"({config.n_iterations} iterations)...")
    start = time.perf_counter()
    model = PAFeat(config).fit(train)
    print(f"trained in {time.perf_counter() - start:.1f}s")
    directory = save_model(model, args.output)
    print(f"model saved to {directory}")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    from repro.io import load_model

    model = load_model(args.model)
    suite = load_suite(args.dataset, args.scale)
    train, test = suite.split_rows(0.7, np.random.default_rng(args.seed))
    test_by_index = {task.label_index: task for task in test.unseen_tasks}
    for task in train.unseen_tasks:
        start = time.perf_counter()
        subset = model.select(task)
        latency_ms = (time.perf_counter() - start) * 1000.0
        line = f"{task.name}: {len(subset)} features {subset} [{latency_ms:.1f} ms]"
        if args.evaluate:
            from repro.eval.svm import evaluate_subset_with_svm

            test_task = test_by_index[task.label_index]
            scores = evaluate_subset_with_svm(
                subset, task.features, task.labels,
                test_task.features, test_task.labels,
            )
            line += f" F1={scores['f1']:.3f} AUC={scores['auc']:.3f}"
        print(line)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.artefact}")
    if args.artefact == "table1":
        print(module.render(module.run(scale=args.scale, verify=True)))
    elif args.artefact in ("fig8", "fig9"):
        print(module.render(module.run(scale=args.scale)))
    else:
        print(module.render(module.run(datasets=("water-quality",), scale=args.scale)))
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "train": _cmd_train,
    "select": _cmd_select,
    "experiment": _cmd_experiment,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
