"""Baseline feature-selection methods from the paper's evaluation.

Three families (Section IV-A2):

* **multi-task enhanced** — PopArt, Go-Explore, Reward Randomization (all
  implemented *under FEAT*, exactly as the paper does), plus the multi-label
  methods GRRO-LS, Ant-TD and MDFS;
* **single-task** — K-Best, RFE, SADRLFS, MARLFS (train from scratch per
  unseen task);
* **no feature selection** — DNN and SVM on all features.

All selectors implement the :class:`repro.baselines.base.FeatureSelector`
interface: ``prepare(train_suite)`` before unseen tasks arrive, then
``select(task)`` when one does.
"""

from repro.baselines.base import FeatureSelector, feature_budget
from repro.baselines.go_explore import GoExploreSelector
from repro.baselines.kbest import KBestSelector
from repro.baselines.marlfs import MARLFSSelector
from repro.baselines.multilabel import AntTDSelector, GRROSelector, MDFSSelector
from repro.baselines.no_fs import AllFeaturesSelector
from repro.baselines.popart import PopArtAgent, PopArtSelector
from repro.baselines.reward_randomization import RewardRandomizationSelector
from repro.baselines.rfe import RFESelector
from repro.baselines.sadrlfs import SADRLFSSelector

__all__ = [
    "AllFeaturesSelector",
    "AntTDSelector",
    "FeatureSelector",
    "GRROSelector",
    "GoExploreSelector",
    "KBestSelector",
    "MARLFSSelector",
    "MDFSSelector",
    "PopArtAgent",
    "PopArtSelector",
    "RFESelector",
    "RewardRandomizationSelector",
    "SADRLFSSelector",
    "feature_budget",
]
