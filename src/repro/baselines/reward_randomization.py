"""Reward Randomization baseline (Tang et al., ICLR 2021), under FEAT.

RR drives exploration diversity by perturbing the reward function: the
learner is trained against randomly re-weighted versions of the task
reward, escaping local optima that the unperturbed reward landscape traps
it in.  Here each rollout draws a per-task multiplicative perturbation
factor around 1 and a small additive noise term; the perturbation is
resampled every ``resample_every`` rewarded steps, mimicking the original's
population of randomised reward configurations.

The PA-FEAT paper's criticism — that randomness is a blunt substitute for
analysing the experience actually gathered — is visible in this baseline's
higher-variance learning curves.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.config import PAFeatConfig
from repro.core.pafeat import PAFeat


class _RewardRandomizer:
    """Per-task randomised affine reward perturbation."""

    def __init__(
        self,
        rng: np.random.Generator,
        scale_spread: float = 0.3,
        additive_noise: float = 0.02,
        resample_every: int = 64,
    ) -> None:
        if scale_spread < 0.0 or additive_noise < 0.0:
            raise ValueError("perturbation magnitudes must be >= 0")
        if resample_every < 1:
            raise ValueError(f"resample_every must be >= 1, got {resample_every}")
        self._rng = rng
        self.scale_spread = scale_spread
        self.additive_noise = additive_noise
        self.resample_every = resample_every
        self._scales: dict[int, float] = {}
        self._counts: dict[int, int] = {}

    def __call__(self, task_id: int, reward: float) -> float:
        count = self._counts.get(task_id, 0)
        if count % self.resample_every == 0:
            self._scales[task_id] = float(
                self._rng.uniform(1.0 - self.scale_spread, 1.0 + self.scale_spread)
            )
        self._counts[task_id] = count + 1
        noise = float(self._rng.normal(0.0, self.additive_noise))
        return self._scales[task_id] * reward + noise


class RewardRandomizationSelector(PAFeat):
    """FEAT + reward randomization, without ITS/ITE (the paper's setup)."""

    name = "rr"

    def __init__(
        self, config: PAFeatConfig | None = None, scale_spread: float = 0.3
    ) -> None:
        base = config or PAFeatConfig()
        super().__init__(replace(base, use_its=False, use_ite=False))
        self._randomizer = _RewardRandomizer(
            np.random.default_rng(self._seed_sequence.spawn(1)[0]),
            scale_spread=scale_spread,
        )

    def _extra_trainer_kwargs(self) -> dict:
        return {"reward_transform": self._randomizer}
