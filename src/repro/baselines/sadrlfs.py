"""SADRLFS baseline (Zhao et al., ICDM 2020): single-agent DRL per task.

A single-agent restructured-choice DRL feature selector that trains *from
scratch* for each arriving task: pretrain the reward classifier, run a
fresh Dueling-DQN through the sequential scanning MDP for ``n_iterations``,
then emit the greedy subset.  No knowledge is carried between tasks, which
is why the paper measures its per-task latency at 3-4 orders of magnitude
above PA-FEAT's (Fig. 7) despite slightly better subset quality.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FeatureSelector
from repro.core.config import PAFeatConfig
from repro.core.env import FeatureSelectionEnv
from repro.core.feat import FEATTrainer
from repro.core.state import state_dim
from repro.data.stats import feature_redundancy_matrix, pearson_representation
from repro.data.tasks import Task
from repro.nn.classifier import MaskedMLPClassifier
from repro.rl.reward import build_task_reward
from repro.rl.agent import DuelingDQNAgent
from repro.rl.schedules import LinearDecay
from repro.rl.seeding import task_seed_sequence


class SADRLFSSelector(FeatureSelector):
    """Train a fresh single-task DQN at selection time."""

    name = "sadrlfs"

    def __init__(
        self,
        max_feature_ratio: float = 0.6,
        config: PAFeatConfig | None = None,
        n_iterations: int = 100,
        seed: int = 0,
    ) -> None:
        super().__init__(max_feature_ratio)
        base = config or PAFeatConfig()
        from dataclasses import replace

        self.config = replace(
            base,
            use_its=False,
            use_ite=False,
            n_iterations=n_iterations,
            env=replace(base.env, max_feature_ratio=max_feature_ratio),
        )
        self.seed = seed
        self.last_trainer: FEATTrainer | None = None

    def select(self, task: Task) -> tuple[int, ...]:
        seed_sequence = task_seed_sequence(self.seed, task.label_index)
        child_seeds = seed_sequence.spawn(4)

        classifier_config = self.config.classifier
        classifier = MaskedMLPClassifier(
            n_features=task.n_features,
            hidden=classifier_config.hidden,
            lr=classifier_config.lr,
            n_epochs=classifier_config.n_epochs,
            batch_size=classifier_config.batch_size,
            mask_augment=classifier_config.mask_augment,
            seed=int(child_seeds[0].generate_state(1)[0]),
        )
        reward_fn = build_task_reward(
            task.features, task.labels, classifier,
            metric=self.config.env.reward_metric,
            seed=int(child_seeds[0].generate_state(1)[0]),
        )
        representation = pearson_representation(task.features, task.labels)
        env = FeatureSelectionEnv(
            task.label_index, representation, reward_fn, self.config.env,
            feature_corr=feature_redundancy_matrix(task.features),
        )

        agent_config = self.config.agent
        agent = DuelingDQNAgent(
            state_dim=state_dim(task.n_features),
            n_actions=FeatureSelectionEnv.N_ACTIONS,
            hidden=agent_config.hidden,
            gamma=agent_config.gamma,
            lr=agent_config.lr,
            epsilon_schedule=LinearDecay(
                agent_config.epsilon_start,
                agent_config.epsilon_end,
                agent_config.epsilon_decay_steps,
            ),
            target_sync_every=agent_config.target_sync_every,
            rng=np.random.default_rng(child_seeds[1]),
            grad_clip=agent_config.grad_clip,
        )
        trainer = FEATTrainer(
            {task.label_index: env},
            agent,
            self.config,
            np.random.default_rng(child_seeds[2]),
        )
        trainer.train(self.config.n_iterations)
        self.last_trainer = trainer
        subset = trainer.infer_subset(env)
        if not subset:
            subset = (int(np.argmax(representation)),)
        return subset
