"""Multi-label feature-selection baselines: GRRO-LS, MDFS and Ant-TD.

These methods select *one* subset for all labels jointly.  Following the
paper's twist ("we extend these methods for unseen tasks by considering
historical seen tasks and target unseen task at the same time"), ``select``
re-runs the whole computation over the seen labels *plus* the arriving
task's labels — which is why they have no cheap preparation phase and the
paper reports their per-task latency as orders of magnitude above the
FEAT-based methods.

Each implementation keeps its source method's core mechanism:

* **GRRO-LS** (Zhang et al., IJCAI 2020): greedy maximisation of global
  label relevance minus feature redundancy (information-theoretic scores).
* **MDFS** (Zhang et al., Pattern Recognition 2019): manifold-regularised
  least squares — feature weights solve ``(X'X + λI + μ X'LX) W = X'Y``
  with ``L`` a kNN-graph Laplacian capturing local label structure; features
  rank by the L2 row-norm of ``W`` (the L2,1 surrogate).
* **Ant-TD** (Paniri et al., Swarm & Evol. Comp. 2021): ant-colony search
  over feature subsets whose pheromone trails are updated with a temporal-
  difference rule from subset evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.numerics import normalized
from repro.baselines.base import FeatureSelector
from repro.data.stats import (
    feature_redundancy_matrix,
    mutual_information_scores,
    pearson_representation,
)
from repro.data.tasks import Task, TaskSuite
from repro.eval.svm import LinearSVM
from repro.eval.metrics import roc_auc_score


def _stack_labels(suite: TaskSuite | None, task: Task) -> np.ndarray:
    """Seen labels plus the arriving task's labels, as an (n, L) matrix."""
    columns = []
    if suite is not None:
        columns.extend(seen.labels for seen in suite.seen_tasks)
    columns.append(task.labels)
    return np.stack(columns, axis=1)


class GRROSelector(FeatureSelector):
    """Global relevance & redundancy optimisation (greedy mRMR over labels)."""

    name = "grro-ls"

    def __init__(self, max_feature_ratio: float = 0.6, redundancy_weight: float = 1.0) -> None:
        super().__init__(max_feature_ratio)
        if redundancy_weight < 0.0:
            raise ValueError(f"redundancy_weight must be >= 0, got {redundancy_weight}")
        self.redundancy_weight = redundancy_weight
        self._suite: TaskSuite | None = None

    def prepare(self, suite: TaskSuite) -> "GRROSelector":
        self._suite = suite
        return self

    def select(self, task: Task) -> tuple[int, ...]:
        labels = _stack_labels(self._suite, task)
        features = task.features
        # Global relevance: summed MI against every label, each label weighted
        # by its aggregate correlation with the other labels (the "label
        # relevance" term of GRRO).  The arriving task is one label among
        # many — seen tasks dominate by count, which is exactly the
        # unified-subset limitation the PA-FEAT paper highlights.
        label_matrix = labels.astype(np.float64)
        label_weights = np.empty(labels.shape[1])
        for li in range(labels.shape[1]):
            correlations = pearson_representation(label_matrix, label_matrix[:, li])
            label_weights[li] = float(np.mean(correlations))
        label_weights = np.where(label_weights > 0, label_weights, 1e-3)
        relevance = np.zeros(task.n_features)
        for li in range(labels.shape[1]):
            relevance += label_weights[li] * mutual_information_scores(
                features, labels[:, li]
            )
        redundancy = feature_redundancy_matrix(features)

        k = self.budget(task.n_features)
        selected: list[int] = [int(np.argmax(relevance))]
        candidates = set(range(task.n_features)) - set(selected)
        while len(selected) < k and candidates:
            best_feature, best_score = -1, -np.inf
            selected_idx = np.asarray(selected)
            for candidate in candidates:
                penalty = float(redundancy[candidate, selected_idx].mean())
                score = relevance[candidate] - self.redundancy_weight * penalty
                if score > best_score:
                    best_feature, best_score = candidate, score
            selected.append(best_feature)
            candidates.remove(best_feature)
        return tuple(sorted(selected))


class MDFSSelector(FeatureSelector):
    """Manifold-regularised discriminative feature selection."""

    name = "mdfs"

    def __init__(
        self,
        max_feature_ratio: float = 0.6,
        ridge: float = 1.0,
        manifold_weight: float = 0.1,
        n_neighbors: int = 5,
        max_rows: int = 500,
        seed: int = 0,
    ) -> None:
        super().__init__(max_feature_ratio)
        if ridge <= 0.0:
            raise ValueError(f"ridge must be positive, got {ridge}")
        if manifold_weight < 0.0:
            raise ValueError(f"manifold_weight must be >= 0, got {manifold_weight}")
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.ridge = ridge
        self.manifold_weight = manifold_weight
        self.n_neighbors = n_neighbors
        self.max_rows = max_rows
        self.seed = seed
        self._suite: TaskSuite | None = None

    def prepare(self, suite: TaskSuite) -> "MDFSSelector":
        self._suite = suite
        return self

    def select(self, task: Task) -> tuple[int, ...]:
        labels = _stack_labels(self._suite, task).astype(np.float64)
        features = np.asarray(task.features, dtype=np.float64)
        n = features.shape[0]
        if n > self.max_rows:
            # The Laplacian is O(n^2); subsample rows as the original
            # implementations do for large corpora.
            rng = np.random.default_rng(self.seed)
            rows = rng.choice(n, size=self.max_rows, replace=False)
            features, labels = features[rows], labels[rows]
            n = self.max_rows
        x = features - features.mean(axis=0)
        y = labels - labels.mean(axis=0)
        laplacian = self._knn_laplacian(x)
        m = x.shape[1]
        gram = x.T @ x + self.ridge * np.eye(m)
        if self.manifold_weight > 0.0:
            gram = gram + self.manifold_weight * (x.T @ laplacian @ x)
        weights = np.linalg.solve(gram, x.T @ y)
        scores = np.linalg.norm(weights, axis=1)  # L2,1 row norms
        k = self.budget(task.n_features)
        top = np.argsort(scores)[::-1][:k]
        return tuple(sorted(int(i) for i in top))

    def _knn_laplacian(self, x: np.ndarray) -> np.ndarray:
        """Unnormalised graph Laplacian of the symmetric kNN adjacency."""
        n = x.shape[0]
        k = min(self.n_neighbors, n - 1)
        squared = np.sum(x**2, axis=1)
        distances = squared[:, None] + squared[None, :] - 2.0 * (x @ x.T)
        np.fill_diagonal(distances, np.inf)
        adjacency = np.zeros((n, n))
        neighbor_idx = np.argpartition(distances, k, axis=1)[:, :k]
        rows = np.repeat(np.arange(n), k)
        adjacency[rows, neighbor_idx.reshape(-1)] = 1.0
        adjacency = np.maximum(adjacency, adjacency.T)
        degree = np.diag(adjacency.sum(axis=1))
        return degree - adjacency


class AntTDSelector(FeatureSelector):
    """Ant colony optimisation with TD-updated pheromones."""

    name = "ant-td"

    def __init__(
        self,
        max_feature_ratio: float = 0.6,
        n_ants: int = 10,
        n_generations: int = 8,
        evaporation: float = 0.2,
        td_learning_rate: float = 0.4,
        heuristic_power: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(max_feature_ratio)
        if n_ants < 1 or n_generations < 1:
            raise ValueError("n_ants and n_generations must be >= 1")
        if not 0.0 <= evaporation < 1.0:
            raise ValueError(f"evaporation must be in [0, 1), got {evaporation}")
        if not 0.0 < td_learning_rate <= 1.0:
            raise ValueError(
                f"td_learning_rate must be in (0, 1], got {td_learning_rate}"
            )
        self.n_ants = n_ants
        self.n_generations = n_generations
        self.evaporation = evaporation
        self.td_learning_rate = td_learning_rate
        self.heuristic_power = heuristic_power
        self.seed = seed
        self._suite: TaskSuite | None = None

    def prepare(self, suite: TaskSuite) -> "AntTDSelector":
        self._suite = suite
        return self

    def select(self, task: Task) -> tuple[int, ...]:
        labels = _stack_labels(self._suite, task)
        features = np.asarray(task.features, dtype=np.float64)
        m = task.n_features
        k = self.budget(m)
        rng = np.random.default_rng(self.seed)

        # Heuristic: average MI against all labels (the ants' prior).
        heuristic = np.zeros(m)
        for li in range(labels.shape[1]):
            heuristic += mutual_information_scores(features, labels[:, li])
        heuristic = heuristic / labels.shape[1]
        heuristic = (heuristic + 1e-6) ** self.heuristic_power

        pheromone = np.ones(m)
        best_subset: tuple[int, ...] = tuple(np.argsort(heuristic)[::-1][:k])
        best_quality = self._evaluate(best_subset, features, labels, rng)
        for _ in range(self.n_generations):
            for _ in range(self.n_ants):
                weights = pheromone * heuristic
                probabilities = normalized(weights)
                subset = tuple(
                    sorted(rng.choice(m, size=k, replace=False, p=probabilities))
                )
                quality = self._evaluate(subset, features, labels, rng)
                # TD-style pheromone update toward the observed quality.
                idx = np.asarray(subset, dtype=np.int64)
                pheromone[idx] += self.td_learning_rate * (quality - pheromone[idx])
                if quality > best_quality:
                    best_subset, best_quality = subset, quality
            pheromone *= 1.0 - self.evaporation
            pheromone = np.maximum(pheromone, 1e-3)
        return tuple(int(i) for i in best_subset)

    def _evaluate(
        self,
        subset: tuple[int, ...],
        features: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator,
    ) -> float:
        """Subset quality: mean quick-SVM AUC over a sample of labels."""
        idx = np.asarray(subset, dtype=np.int64)
        n_labels = labels.shape[1]
        sample = (
            rng.choice(n_labels, size=min(3, n_labels), replace=False)
            if n_labels > 3
            else np.arange(n_labels)
        )
        scores = []
        for li in sample:
            svm = LinearSVM(n_epochs=3, seed=int(li)).fit(features[:, idx], labels[:, li])
            scores.append(
                roc_auc_score(labels[:, li], svm.decision_function(features[:, idx]))
            )
        return float(np.mean(scores))
