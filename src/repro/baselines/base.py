"""Common interface for every selection method in the evaluation.

The fast-feature-selection protocol has two phases: ``prepare`` runs before
any unseen task arrives (the trainable methods do their multi-task learning
here; single-task methods do nothing), and ``select`` answers an arriving
unseen task.  The experiment harness times the two phases separately, which
is exactly the split behind Table II and Fig. 7 of the paper.
"""

from __future__ import annotations

import math

from repro.data.tasks import Task, TaskSuite


def feature_budget(n_features: int, max_feature_ratio: float) -> int:
    """Largest selectable subset size under the ``mfr`` budget (≥ 1)."""
    if n_features < 1:
        raise ValueError(f"n_features must be >= 1, got {n_features}")
    if not 0.0 < max_feature_ratio <= 1.0:
        raise ValueError(
            f"max_feature_ratio must be in (0, 1], got {max_feature_ratio}"
        )
    return max(1, int(math.floor(max_feature_ratio * n_features)))


class FeatureSelector:
    """Base class: ``prepare`` on seen tasks, ``select`` per unseen task."""

    #: Human-readable method name used in experiment tables.
    name: str = "base"

    def __init__(self, max_feature_ratio: float = 0.6) -> None:
        if not 0.0 < max_feature_ratio <= 1.0:
            raise ValueError(
                f"max_feature_ratio must be in (0, 1], got {max_feature_ratio}"
            )
        self.max_feature_ratio = max_feature_ratio

    def prepare(self, suite: TaskSuite) -> "FeatureSelector":
        """Learn from seen tasks before unseen tasks arrive (default: no-op)."""
        del suite
        return self

    def select(self, task: Task) -> tuple[int, ...]:
        """Return the selected feature subset for one arriving task."""
        raise NotImplementedError

    def budget(self, n_features: int) -> int:
        return feature_budget(n_features, self.max_feature_ratio)
