"""PopArt baseline (Hessel et al., AAAI 2019), implemented under FEAT.

PopArt balances multi-task learning by rescaling each task's value targets
with per-task running mean/std statistics, so high-reward tasks do not
dominate the shared network's gradients.  The original keeps per-task
output heads whose last layer is rescaled to preserve outputs when the
statistics move ("preserving outputs precisely"); with FEAT's single shared
head an exact preservation step is not possible per task, so this
implementation keeps the per-task *adaptive normalisation* (the "Art" part)
through a per-task affine output transform ``Q_k = sigma_k * f + mu_k``.
When statistics drift, outputs for that task shift — exactly the
reward-magnitude instability the PA-FEAT paper criticises in this baseline.

The extra per-task affine transform is the "additional DNN layer to realize
target rescaling" that makes PopArt's iterations slightly slower in the
paper's Table II.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Sequence

import numpy as np

from repro.core.config import PAFeatConfig
from repro.core.pafeat import PAFeat
from repro.rl.agent import DuelingDQNAgent
from repro.rl.transition import Transition


class _RunningStats:
    """Exponential-moving per-task mean/std of TD targets."""

    def __init__(self, beta: float = 3e-2) -> None:
        self.beta = beta
        self.mean = 0.0
        self.mean_sq = 1.0

    @property
    def std(self) -> float:
        variance = max(self.mean_sq - self.mean**2, 1e-4)
        return float(np.sqrt(variance))

    def update(self, values: np.ndarray) -> None:
        batch_mean = float(np.mean(values))
        batch_mean_sq = float(np.mean(values**2))
        self.mean = (1.0 - self.beta) * self.mean + self.beta * batch_mean
        self.mean_sq = (1.0 - self.beta) * self.mean_sq + self.beta * batch_mean_sq


class PopArtAgent(DuelingDQNAgent):
    """Dueling DQN whose TD targets are normalised per task."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._stats: dict[int, _RunningStats] = {}

    def _task_stats(self, task_id: int) -> _RunningStats:
        if task_id not in self._stats:
            self._stats[task_id] = _RunningStats()
        return self._stats[task_id]

    def update(self, batch: Sequence[Transition], task_id: int | None = None) -> float:
        """TD update in per-task normalised target space.

        The network ``f`` predicts normalised values; actual Q-values are
        ``sigma_k f + mu_k``.  Since the per-task transform is affine, the
        greedy action (argmax over actions for one state) is unchanged, so
        :meth:`act` needs no task information.
        """
        if task_id is None:
            return super().update(batch)
        if not batch:
            raise ValueError("update requires a non-empty batch")
        stats = self._task_stats(task_id)

        states = np.stack([t.state for t in batch])
        next_states = np.stack([t.next_state for t in batch])
        actions = np.array([t.action for t in batch], dtype=np.int64)
        rewards = np.array([t.reward for t in batch], dtype=np.float64)
        dones = np.array([t.done for t in batch], dtype=bool)

        # Unnormalised bootstrap target via the target network.
        next_f = self.target.infer(next_states)
        next_q = stats.std * next_f + stats.mean
        unnormalised_targets = rewards + np.where(
            dones, 0.0, self.gamma * next_q.max(axis=1)
        )
        returns_to_go = np.array(
            [t.return_to_go if t.return_to_go is not None else -np.inf for t in batch]
        )
        unnormalised_targets = np.maximum(unnormalised_targets, returns_to_go)
        stats.update(unnormalised_targets)
        normalised_targets = (unnormalised_targets - stats.mean) / stats.std

        f_all = self.online.forward(states, training=True)
        targets = f_all.copy()
        targets[np.arange(len(batch)), actions] = normalised_targets

        loss_value = self._loss.forward(f_all, targets)
        self._optimizer.zero_grad()
        self.online.backward(self._loss.backward())
        if self.grad_clip > 0:
            self._optimizer.clip_grad_norm(self.grad_clip)
        self._optimizer.step()

        self.update_count += 1
        if self.update_count % self.target_sync_every == 0:
            self.sync_target()
        return loss_value


class PopArtSelector(PAFeat):
    """FEAT + PopArt normalisation, without ITS/ITE (the paper's setup)."""

    name = "popart"

    def __init__(self, config: PAFeatConfig | None = None) -> None:
        base = config or PAFeatConfig()
        # PopArt replaces ITS (its comparison target); ITE is also off so the
        # difference measured is purely scheduling/normalisation strategy.
        super().__init__(replace(base, use_its=False, use_ite=False))

    def _build_agent(self, n_features: int) -> PopArtAgent:
        from repro.core.env import FeatureSelectionEnv
        from repro.core.state import state_dim
        from repro.rl.schedules import LinearDecay

        config = self.config.agent
        return PopArtAgent(
            state_dim=state_dim(n_features),
            n_actions=FeatureSelectionEnv.N_ACTIONS,
            hidden=config.hidden,
            gamma=config.gamma,
            lr=config.lr,
            epsilon_schedule=LinearDecay(
                config.epsilon_start, config.epsilon_end, config.epsilon_decay_steps
            ),
            target_sync_every=config.target_sync_every,
            rng=np.random.default_rng(self._seed_sequence.spawn(1)[0]),
            grad_clip=config.grad_clip,
        )
