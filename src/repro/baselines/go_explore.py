"""Go-Explore baseline (Ecoffet et al., Nature 2021), implemented under FEAT.

Go-Explore keeps an archive of visited states ("cells") and restarts
episodes from promising archive entries, exploring onward with a *simple*
(random) policy — exploration is fully decoupled from the learning policy.
The experience still trains the Q-network, but the choice of restart state
ignores the learned policy's exploitation progress, which is exactly the
weakness the PA-FEAT paper contrasts its Intra-Task Explorer against.

Archive entries are logical environment states; restart selection follows
the original's count-based heuristic — sample cells with weight
``1 / sqrt(visits + 1)`` biased by the best score reached from the cell.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis.numerics import normalized
from repro.core.config import PAFeatConfig
from repro.core.pafeat import PAFeat
from repro.core.state import EnvState
from repro.rl.transition import Trajectory


class _Archive:
    """Per-task state archive with count-based restart sampling."""

    def __init__(self, rng: np.random.Generator, max_cells: int = 20_000) -> None:
        self._rng = rng
        self.max_cells = max_cells
        self._cells: dict[EnvState, dict[str, float]] = {}

    def record(self, trajectory: Trajectory, start: EnvState) -> None:
        score = trajectory.final_reward
        state = start
        self._touch(state, score)
        selected = list(start.selected)
        position = start.position
        for transition in trajectory.transitions:
            if transition.action == 1:
                selected.append(position)
            position += 1
            state = EnvState(selected=tuple(selected), position=position)
            self._touch(state, score)

    def _touch(self, state: EnvState, score: float) -> None:
        if state not in self._cells:
            if len(self._cells) >= self.max_cells:
                return
            self._cells[state] = {"visits": 0.0, "best": score}
        cell = self._cells[state]
        cell["visits"] += 1.0
        cell["best"] = max(cell["best"], score)

    def sample_restart(self) -> EnvState:
        if not self._cells:
            return EnvState(selected=(), position=0)
        states = list(self._cells)
        weights = np.array(
            [
                (1.0 + self._cells[s]["best"]) / np.sqrt(self._cells[s]["visits"] + 1.0)
                for s in states
            ]
        )
        probabilities = normalized(weights)
        index = int(self._rng.choice(len(states), p=probabilities))
        return states[index]


class GoExploreSelector(PAFeat):
    """FEAT + Go-Explore archive restarts with a random exploration policy."""

    name = "go-explore"

    def __init__(self, config: PAFeatConfig | None = None) -> None:
        base = config or PAFeatConfig()
        super().__init__(replace(base, use_its=False, use_ite=False))
        self._archives: dict[int, _Archive] = {}
        self._archive_rng = np.random.default_rng(
            self._seed_sequence.spawn(1)[0]
        )

    def _archive(self, task_id: int) -> _Archive:
        if task_id not in self._archives:
            self._archives[task_id] = _Archive(self._archive_rng)
        return self._archives[task_id]

    def _extra_trainer_kwargs(self) -> dict:
        return {
            "initial_state_provider": lambda task_id: self._archive(
                task_id
            ).sample_restart(),
            "episode_end_hook": lambda task_id, trajectory, start: self._archive(
                task_id
            ).record(trajectory, start),
            # Exploration decoupled from the learned policy: random actions
            # whenever the restart state is non-default.
            "restart_policy": "random",
        }
