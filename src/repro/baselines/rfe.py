"""Recursive Feature Elimination baseline (Granitto et al., 2006).

Wrapper method: repeatedly fits a linear SVM on the remaining features and
drops the fraction with the smallest absolute weights until the ``mfr``
budget is met.  Fitting a model per elimination round is what makes RFE
"significantly more time" than PA-FEAT in the paper's Fig. 7, and tying the
ranking to one predictive model is its noted generalisation weakness.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import FeatureSelector
from repro.data.tasks import Task
from repro.eval.svm import LinearSVM


class RFESelector(FeatureSelector):
    """Eliminate lowest-|weight| features round by round with a linear SVM."""

    name = "rfe"

    def __init__(
        self,
        max_feature_ratio: float = 0.6,
        step_fraction: float = 0.25,
        svm_epochs: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(max_feature_ratio)
        if not 0.0 < step_fraction < 1.0:
            raise ValueError(f"step_fraction must be in (0, 1), got {step_fraction}")
        self.step_fraction = step_fraction
        self.svm_epochs = svm_epochs
        self.seed = seed

    def select(self, task: Task) -> tuple[int, ...]:
        target = self.budget(task.n_features)
        remaining = list(range(task.n_features))
        features = np.asarray(task.features, dtype=np.float64)
        labels = task.labels
        while len(remaining) > target:
            svm = LinearSVM(n_epochs=self.svm_epochs, seed=self.seed)
            svm.fit(features[:, remaining], labels)
            assert svm.weights is not None
            importance = np.abs(svm.weights)
            n_drop = max(1, int(math.ceil(self.step_fraction * len(remaining))))
            n_drop = min(n_drop, len(remaining) - target)
            drop_order = np.argsort(importance)[:n_drop]
            drop_set = {remaining[i] for i in drop_order}
            remaining = [f for f in remaining if f not in drop_set]
        return tuple(sorted(remaining))
