"""MARLFS baseline (Liu et al., KDD 2019): one RL agent per feature.

Every feature owns an agent that decides *select* or *deselect* for its
feature each episode; the joint decision forms the subset and all agents
share the resulting classifier-score reward.  Each agent maintains its own
small Q-function (here: per-action value estimates updated toward the
shared reward with an advantage-style baseline), its own epsilon schedule
and its own experience — which is why the method's cost scales with the
number of agents and the paper measures it as the slowest baseline.

Training happens from scratch at selection time (single-task method).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FeatureSelector
from repro.core.config import ClassifierConfig
from repro.data.tasks import Task
from repro.nn.classifier import MaskedMLPClassifier
from repro.rl.reward import build_task_reward
from repro.rl.seeding import task_rng


class _FeatureAgent:
    """Per-feature two-action Q-learner with its own replay of returns."""

    def __init__(self, learning_rate: float) -> None:
        self.q = np.zeros(2)  # [deselect, select]
        self.learning_rate = learning_rate
        self.visits = np.zeros(2)

    def act(self, epsilon: float, rng: np.random.Generator) -> int:
        if rng.random() < epsilon:
            return int(rng.integers(2))
        if self.q[0] == self.q[1]:
            return int(rng.integers(2))
        return int(np.argmax(self.q))

    def update(self, action: int, reward: float) -> None:
        self.visits[action] += 1.0
        self.q[action] += self.learning_rate * (reward - self.q[action])

    @property
    def advantage(self) -> float:
        """Preference for selecting this feature."""
        return float(self.q[1] - self.q[0])


class MARLFSSelector(FeatureSelector):
    """Multi-agent RL feature selection, trained per arriving task."""

    name = "marlfs"

    def __init__(
        self,
        max_feature_ratio: float = 0.6,
        n_episodes: int = 300,
        learning_rate: float = 0.1,
        epsilon_start: float = 0.8,
        epsilon_end: float = 0.05,
        classifier_config: ClassifierConfig | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(max_feature_ratio)
        if n_episodes < 1:
            raise ValueError(f"n_episodes must be >= 1, got {n_episodes}")
        self.n_episodes = n_episodes
        self.learning_rate = learning_rate
        self.epsilon_start = epsilon_start
        self.epsilon_end = epsilon_end
        self.classifier_config = classifier_config or ClassifierConfig()
        self.seed = seed

    def select(self, task: Task) -> tuple[int, ...]:
        rng = task_rng(self.seed, task.label_index)
        config = self.classifier_config
        classifier = MaskedMLPClassifier(
            n_features=task.n_features,
            hidden=config.hidden,
            lr=config.lr,
            n_epochs=config.n_epochs,
            batch_size=config.batch_size,
            mask_augment=config.mask_augment,
            seed=int(rng.integers(2**31)),
        )
        reward_fn = build_task_reward(
            task.features, task.labels, classifier, seed=int(rng.integers(2**31))
        )

        agents = [_FeatureAgent(self.learning_rate) for _ in range(task.n_features)]
        best_subset: tuple[int, ...] = ()
        best_score = -np.inf
        for episode in range(self.n_episodes):
            fraction = episode / max(1, self.n_episodes - 1)
            epsilon = self.epsilon_start + fraction * (
                self.epsilon_end - self.epsilon_start
            )
            actions = [agent.act(epsilon, rng) for agent in agents]
            subset = tuple(i for i, action in enumerate(actions) if action == 1)
            score = reward_fn(subset) if subset else 0.0
            for agent, action in zip(agents, actions):
                agent.update(action, score)
            if subset and score > best_score:
                best_subset, best_score = subset, score

        subset = best_subset or tuple(
            i for i, agent in enumerate(agents) if agent.advantage > 0
        )
        if not subset:
            subset = (int(np.argmax([agent.advantage for agent in agents])),)
        budget = self.budget(task.n_features)
        if len(subset) > budget:
            # Keep the features the agents prefer most, within the mfr cap.
            advantages = np.array([agents[i].advantage for i in subset])
            keep = np.argsort(advantages)[::-1][:budget]
            subset = tuple(sorted(subset[i] for i in keep))
        return tuple(sorted(subset))
