"""K-Best filter baseline (Yang & Pedersen, 1997).

Ranks features by mutual information with the arriving task's labels and
keeps the top K, where K is the ``mfr`` budget.  No preparation phase — the
whole computation happens at selection time, which is why the paper finds
its latency comparable to PA-FEAT's (both are O(n·m) statistics passes).
It ignores inter-feature redundancy entirely, which is its known weakness.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FeatureSelector
from repro.data.stats import mutual_information_scores
from repro.data.tasks import Task


class KBestSelector(FeatureSelector):
    """Top-K features by mutual information with the label."""

    name = "k-best"

    def __init__(self, max_feature_ratio: float = 0.6, n_bins: int = 8) -> None:
        super().__init__(max_feature_ratio)
        self.n_bins = n_bins

    def select(self, task: Task) -> tuple[int, ...]:
        scores = mutual_information_scores(task.features, task.labels, n_bins=self.n_bins)
        k = self.budget(task.n_features)
        top = np.argsort(scores)[::-1][:k]
        return tuple(sorted(int(i) for i in top))
