"""No-feature-selection baselines: use all features.

The paper's "DNN" and "SVM" rows train a model on the raw feature vector.
In the evaluation harness every method is reduced to the subset it selects
(the downstream evaluator is fixed), so both rows collapse to the identity
subset — kept as an explicit selector so the comparison tables can include
them uniformly.
"""

from __future__ import annotations

from repro.baselines.base import FeatureSelector
from repro.data.tasks import Task


class AllFeaturesSelector(FeatureSelector):
    """Selects every feature (the no-feature-selection row)."""

    name = "all-features"

    def __init__(self) -> None:
        super().__init__(max_feature_ratio=1.0)

    def select(self, task: Task) -> tuple[int, ...]:
        return tuple(range(task.n_features))
