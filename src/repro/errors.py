"""Typed error taxonomy: every operational failure is a :class:`ReproError`.

The exception-flow certificate (``tools/repolint`` EXC1001–1005, see
ARCHITECTURE.md §7.6) checks two boundary contracts statically:

* the serve handlers map every failure to a structured HTTP error, and
* :meth:`repro.core.pafeat.PAFeat.fit` may only leak this hierarchy (plus
  ``ValueError`` for caller argument mistakes).

Those contracts are only checkable if failures are *typed*, so raising a
bare ``Exception``/``RuntimeError`` anywhere in ``repro`` is a lint error
(EXC1004) — operational failures pick the closest class below instead.

Every class keeps its historical builtin base via multiple inheritance
(``CheckpointError`` is still a ``RuntimeError``, ``DataValidationError``
is still a ``ValueError``), so existing ``except RuntimeError`` /
``except ValueError`` call sites and tests are unaffected::

    ReproError (Exception)
    ├── DataValidationError (+ ValueError)    bad rows, schemas, parses
    │   └── repro.data.arff.ArffError
    ├── BoundsError (+ IndexError)            feature/label index overruns
    ├── ArtifactError (+ ValueError)          corrupt/mismatched model dirs
    ├── CheckpointError (+ RuntimeError)      checkpoint persistence
    │   └── CheckpointCorruptionError         truncated/bit-flipped artifact
    ├── TrainingInterrupted (+ RuntimeError)  stop request mid-fit
    ├── NotFittedError (+ RuntimeError)       inference before fit()/load
    ├── LifecycleError (+ RuntimeError)       protocol-order misuse
    ├── RolloutError (+ RuntimeError)         parallel rollout engine
    │   └── WorkerCrashError                  rollout worker died mid-phase
    ├── ServeError (+ RuntimeError)           serving stack
    │   ├── repro.serve.batcher.{BatcherClosed, BatcherStalled, QueueFull}
    │   ├── repro.serve.registry.RegistryError
    │   └── repro.serve.server.BadRequest (+ ValueError)
    └── ResilienceError (+ RuntimeError)
        └── repro.io.resilience.{DeadlineExceeded, CircuitOpen,
                                 RetriesExhausted}

This module is dependency-free (stdlib only) and sits in the ``errors``
free layer, importable from anywhere in the package.
"""

from __future__ import annotations

from pathlib import Path

__all__ = [
    "ArtifactError",
    "BoundsError",
    "CheckpointCorruptionError",
    "CheckpointError",
    "DataValidationError",
    "LifecycleError",
    "NotFittedError",
    "ReproError",
    "ResilienceError",
    "RolloutError",
    "ServeError",
    "TrainingInterrupted",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Root of the repo's typed error taxonomy."""


class DataValidationError(ReproError, ValueError):
    """Input data violates the expected schema, shape or value range."""


class BoundsError(ReproError, IndexError):
    """A feature/label/class index lies outside the structure's bounds.

    An ``IndexError`` for backward compatibility: table and task-suite
    index validation has always raised ``IndexError``.
    """


class ArtifactError(ReproError, ValueError):
    """A persisted model artifact is missing a piece, corrupt or mismatched.

    A ``ValueError`` for backward compatibility: the model registry's
    load fallback has always treated artifact problems as ``(ValueError,
    OSError, KeyError)``.
    """


class CheckpointError(ReproError, RuntimeError):
    """Base class for checkpoint persistence failures."""


class CheckpointCorruptionError(CheckpointError):
    """A checkpoint artifact is missing, truncated or checksum-mismatched."""


class TrainingInterrupted(ReproError, RuntimeError):
    """Raised when a stop request ends training early.

    Carries the iteration the run stopped at and, when checkpointing was
    active, the path of the final flushed checkpoint so callers (e.g. the
    CLI's SIGTERM handler) can report where to resume from.
    """

    def __init__(self, iteration: int, checkpoint_path: Path | None = None) -> None:
        self.iteration = iteration
        self.checkpoint_path = checkpoint_path
        suffix = f"; checkpoint flushed to {checkpoint_path}" if checkpoint_path else ""
        super().__init__(f"training interrupted at iteration {iteration}{suffix}")


class NotFittedError(ReproError, RuntimeError):
    """Inference was requested from a model that has not been fitted."""


class LifecycleError(ReproError, RuntimeError):
    """A component was driven out of protocol order.

    ``backward()`` before ``forward()``, ``step()`` on a finished episode,
    starting an already-started server — state-machine misuse, as opposed
    to bad data (:class:`DataValidationError`) or bad arguments
    (``ValueError``).
    """


class RolloutError(ReproError, RuntimeError):
    """Base class for parallel rollout-engine failures.

    Raised for protocol misuse (filling through a closed engine) and for
    payload validation failures (a worker returned a trajectory that does
    not match its :class:`~repro.rollout.plan.EpisodePlan`).  The engine
    itself converts these into graceful degradation — training falls back
    to plan-order serial execution rather than dying mid-fit.
    """


class WorkerCrashError(RolloutError):
    """A rollout worker process died or raised mid-phase.

    Carries no partial state: the engine re-executes every episode the
    crashed worker owned from its planned RNG shard, so the filled buffer
    is identical to an uncrashed run.
    """


class ServeError(ReproError, RuntimeError):
    """Base class for serving-stack failures (batcher, registry, server)."""


class ResilienceError(ReproError, RuntimeError):
    """Base class for typed resilience failures (deadline, circuit, retry)."""
