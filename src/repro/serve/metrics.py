"""Serving telemetry on the unified obs registry (PR 10 refactor).

:class:`ServeMetrics` keeps its recording API (``observe_*``) and its
read surface (``requests_total``, ``batch_sizes``, ``snapshot()``, ...)
but the numbers now live in a :class:`repro.obs.registry.MetricsRegistry`
— the label-aware, lock-guarded metric store shared by the whole serve
stack — so ``/metrics`` serves **one** registry: request/batch/queue
counters, admission-control and resilience counters, provider-backed
gauges (circuit-breaker state, representation-cache hit rate) and
anything else components register (e.g. phase histograms).

Two complementary latency views survive the refactor unchanged:

* **cumulative bucket counts** over fixed log-spaced boundaries — cheap,
  mergeable, never lose history;
* **a sliding window** of recent observations — exact p50/p99 over the
  last ``window`` requests, which is what an operator watching a dashboard
  actually wants (a lifetime-cumulative p99 hides a fresh regression).

The window view lives in :class:`LatencyHistogram` (instance-owned, event
-loop-confined as before) and joins the exposition through a registry
collector, so nothing is copied per observation.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Iterator, Mapping

from repro.obs.registry import Counter, Gauge, MetricsRegistry

#: Upper bounds (milliseconds) of the cumulative latency buckets.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0, math.inf,
)

#: Numeric encoding of circuit-breaker states for the gauge exposition.
BREAKER_STATE_VALUES: dict[str, int] = {"closed": 0, "half_open": 1, "open": 2}


class LatencyHistogram:
    """Cumulative log-bucket histogram plus an exact sliding window."""

    def __init__(
        self,
        buckets_ms: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
        window: int = 2048,
    ) -> None:
        if not buckets_ms:
            raise ValueError("need at least one bucket boundary")
        if list(buckets_ms) != sorted(buckets_ms):
            raise ValueError("bucket boundaries must be ascending")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.buckets_ms = tuple(buckets_ms)
        self.counts = [0] * len(self.buckets_ms)
        self.total = 0
        self.sum_ms = 0.0
        self._window: deque[float] = deque(maxlen=window)

    def observe(self, value_ms: float) -> None:
        """Record one latency observation (milliseconds)."""
        value_ms = float(value_ms)
        self.total += 1
        self.sum_ms += value_ms
        self._window.append(value_ms)
        for index, bound in enumerate(self.buckets_ms):
            if value_ms <= bound:
                self.counts[index] += 1
                break

    def percentile(self, q: float) -> float:
        """Exact q-quantile (0..1) over the sliding window; 0.0 when empty.

        Nearest-rank on the sorted window — the estimator dashboards
        expect, and exact for the window it covers.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    @property
    def window_size(self) -> int:
        return len(self._window)

    def snapshot(self) -> dict:
        return {
            "count": self.total,
            "sum_ms": round(self.sum_ms, 6),
            "p50_ms": round(self.percentile(0.50), 6),
            "p99_ms": round(self.percentile(0.99), 6),
            "buckets": {
                ("+Inf" if math.isinf(bound) else f"{bound:g}"): count
                for bound, count in zip(self.buckets_ms, self.counts)
            },
        }


class ServeMetrics:
    """The selection server's metric surface, backed by one obs registry."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        #: The unified registry ``/metrics`` renders; share one instance
        #: to co-expose serve metrics with other components' metrics.
        self.registry = registry if registry is not None else MetricsRegistry()
        #: queue-wait + batch-execution time per request (dual-view
        #: histogram; exposed through a registry collector).
        self.request_latency = LatencyHistogram()
        reg = self.registry
        self._requests: Counter = reg.counter(
            "repro_serve_requests_total", "Selection requests completed."
        )
        self._errors: Counter = reg.counter(
            "repro_serve_errors_total", "Requests that failed with an error."
        )
        self._batches: Counter = reg.counter(
            "repro_serve_batches_total", "Micro-batcher flushes executed."
        )
        self._queue_depth: Gauge = reg.gauge(
            "repro_serve_queue_depth", "Admission queue depth (last observed)."
        )
        self._queue_depth_peak: Gauge = reg.gauge(
            "repro_serve_queue_depth_peak", "Highest observed queue depth."
        )
        self._batch_size: Counter = reg.counter(
            "repro_serve_batch_size_total",
            "Flushes by batch size.",
            labelnames=("size",),
        )
        self._shed: Counter = reg.counter(
            "repro_serve_shed_total",
            "Requests shed by admission control, by reason.",
            labelnames=("reason",),
        )
        # Materialise the standard shed reasons at 0 so operators see the
        # series before the first shed (and dashboards need no fallback).
        self._shed.touch(reason="queue_full")
        self._shed.touch(reason="rate_limit")
        self._deadline: Counter = reg.counter(
            "repro_serve_deadline_exceeded_total",
            "Requests rejected or abandoned on an expired deadline.",
        )
        self._watchdog: Counter = reg.counter(
            "repro_serve_watchdog_restarts_total",
            "Flush-loop restarts performed by the batcher watchdog.",
        )
        self._dropped: Counter = reg.counter(
            "repro_serve_dropped_connections_total",
            "Client connections that vanished mid-request.",
        )
        self._breaker_transitions: Counter = reg.counter(
            "repro_serve_breaker_transitions_total",
            "Circuit-breaker state transitions (any direction).",
        )
        self._cache_stats: Callable[[], Mapping[str, int]] | None = None
        self._breaker_state: Callable[[], str] | None = None
        reg.register_collector(self._latency_lines)
        reg.register_collector(self._provider_lines)

    # -- recording ------------------------------------------------------
    def observe_request(self, latency_ms: float) -> None:
        self._requests.inc()
        self.request_latency.observe(latency_ms)

    def observe_error(self) -> None:
        self._errors.inc()

    def observe_shed(self, reason: str = "queue_full") -> None:
        self._shed.inc(reason=reason)

    def observe_deadline_exceeded(self) -> None:
        self._deadline.inc()

    def observe_watchdog_restart(self) -> None:
        self._watchdog.inc()

    def observe_dropped_connection(self) -> None:
        self._dropped.inc()

    def observe_breaker_transition(self, old_state: str, new_state: str) -> None:
        del old_state, new_state  # the transition count is state-agnostic
        self._breaker_transitions.inc()

    def observe_batch(self, size: int) -> None:
        self._batches.inc()
        self._batch_size.inc(size=int(size))

    def observe_queue_depth(self, depth: int) -> None:
        self._queue_depth.set(depth)
        self._queue_depth_peak.set_max(depth)

    def set_cache_stats_provider(
        self, provider: Callable[[], Mapping[str, int]]
    ) -> None:
        """Hook the registry's representation-cache counters in lazily."""
        self._cache_stats = provider

    def set_breaker_state_provider(self, provider: Callable[[], str]) -> None:
        """Hook the reload circuit breaker's state in lazily."""
        self._breaker_state = provider

    # -- reading (backward-compatible attribute surface) ----------------
    @property
    def requests_total(self) -> int:
        return int(self._requests.value())

    @property
    def errors_total(self) -> int:
        return int(self._errors.value())

    @property
    def batches_total(self) -> int:
        return int(self._batches.value())

    @property
    def batch_sizes(self) -> dict[int, int]:
        """Per-flush batch-size distribution as ``{size: count}``."""
        return {
            int(key[0]): int(count)
            for key, count in sorted(self._batch_size.series().items())
        }

    @property
    def queue_depth(self) -> int:
        return int(self._queue_depth.value())

    @property
    def queue_depth_peak(self) -> int:
        return int(self._queue_depth_peak.value())

    @property
    def shed_total(self) -> dict[str, int]:
        """Shed requests by reason (standard reasons present at 0)."""
        return {
            key[0]: int(count)
            for key, count in sorted(self._shed.series().items())
        }

    @property
    def deadline_exceeded_total(self) -> int:
        return int(self._deadline.value())

    @property
    def watchdog_restarts_total(self) -> int:
        return int(self._watchdog.value())

    @property
    def dropped_connections_total(self) -> int:
        return int(self._dropped.value())

    @property
    def breaker_transitions_total(self) -> int:
        return int(self._breaker_transitions.value())

    def cache_hit_rate(self) -> float | None:
        """Representation-cache hit rate in [0, 1], or None when unwired."""
        if self._cache_stats is None:
            return None
        stats = self._cache_stats()
        lookups = int(stats.get("hits", 0)) + int(stats.get("misses", 0))
        if lookups == 0:
            return 0.0
        return int(stats.get("hits", 0)) / lookups

    def snapshot(self) -> dict:
        data = {
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "batches_total": self.batches_total,
            "batch_sizes": self.batch_sizes,
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "shed_total": self.shed_total,
            "deadline_exceeded_total": self.deadline_exceeded_total,
            "watchdog_restarts_total": self.watchdog_restarts_total,
            "dropped_connections_total": self.dropped_connections_total,
            "breaker_transitions_total": self.breaker_transitions_total,
            "latency": self.request_latency.snapshot(),
        }
        if self._breaker_state is not None:
            data["breaker_state"] = self._breaker_state()
        hit_rate = self.cache_hit_rate()
        if hit_rate is not None:
            data["cache_hit_rate"] = round(hit_rate, 6)
            assert self._cache_stats is not None
            data["cache"] = dict(self._cache_stats())
        return data

    def render(self) -> str:
        """Prometheus exposition for ``/metrics`` — the whole registry."""
        return self.registry.render()

    # -- registry collectors (scrape-time views) ------------------------
    def _latency_lines(self) -> Iterator[str]:
        """The dual-view latency histogram: window quantiles + cumulative
        buckets, rendered at scrape time from the instance-owned state."""
        latency = self.request_latency
        yield "# TYPE repro_serve_latency_ms summary"
        yield (
            f'repro_serve_latency_ms{{quantile="0.5"}} '
            f"{latency.percentile(0.5):.6f}"
        )
        yield (
            f'repro_serve_latency_ms{{quantile="0.99"}} '
            f"{latency.percentile(0.99):.6f}"
        )
        yield f"repro_serve_latency_ms_sum {latency.sum_ms:.6f}"
        yield f"repro_serve_latency_ms_count {latency.total}"
        yield "# TYPE repro_serve_latency_ms_bucket counter"
        cumulative = 0
        for bound, count in zip(latency.buckets_ms, latency.counts):
            cumulative += count
            label = "+Inf" if math.isinf(bound) else f"{bound:g}"
            yield f'repro_serve_latency_ms_bucket{{le="{label}"}} {cumulative}'

    def _provider_lines(self) -> Iterator[str]:
        """Provider-backed gauges: breaker state and cache hit rate."""
        if self._breaker_state is not None:
            state = self._breaker_state()
            value = BREAKER_STATE_VALUES.get(state, -1)
            yield "# HELP repro_serve_breaker_state 0=closed 1=half_open 2=open"
            yield "# TYPE repro_serve_breaker_state gauge"
            yield f"repro_serve_breaker_state {value}"
        hit_rate = self.cache_hit_rate()
        if hit_rate is not None:
            yield "# TYPE repro_serve_cache_hit_rate gauge"
            yield f"repro_serve_cache_hit_rate {hit_rate:.6f}"
