"""Serving telemetry: latency quantiles, queue depth, batch sizes, cache hits.

All state is instance-owned and updated from the server's single event
loop, so no locking is needed; a multi-worker deployment would give each
worker its own :class:`ServeMetrics` and aggregate at scrape time (the
histogram buckets and counters sum cleanly across instances).

Two complementary latency views:

* **cumulative bucket counts** over fixed log-spaced boundaries — cheap,
  mergeable, never lose history;
* **a sliding window** of recent observations — exact p50/p99 over the
  last ``window`` requests, which is what an operator watching a dashboard
  actually wants (a lifetime-cumulative p99 hides a fresh regression).

:meth:`ServeMetrics.render` emits Prometheus-style text for ``/metrics``;
:meth:`ServeMetrics.snapshot` returns the same numbers as JSON-able data
for tests and benchmarks.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Mapping

#: Upper bounds (milliseconds) of the cumulative latency buckets.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0, math.inf,
)

#: Numeric encoding of circuit-breaker states for the gauge exposition.
BREAKER_STATE_VALUES: dict[str, int] = {"closed": 0, "half_open": 1, "open": 2}


class LatencyHistogram:
    """Cumulative log-bucket histogram plus an exact sliding window."""

    def __init__(
        self,
        buckets_ms: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
        window: int = 2048,
    ) -> None:
        if not buckets_ms:
            raise ValueError("need at least one bucket boundary")
        if list(buckets_ms) != sorted(buckets_ms):
            raise ValueError("bucket boundaries must be ascending")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.buckets_ms = tuple(buckets_ms)
        self.counts = [0] * len(self.buckets_ms)
        self.total = 0
        self.sum_ms = 0.0
        self._window: deque[float] = deque(maxlen=window)

    def observe(self, value_ms: float) -> None:
        """Record one latency observation (milliseconds)."""
        value_ms = float(value_ms)
        self.total += 1
        self.sum_ms += value_ms
        self._window.append(value_ms)
        for index, bound in enumerate(self.buckets_ms):
            if value_ms <= bound:
                self.counts[index] += 1
                break

    def percentile(self, q: float) -> float:
        """Exact q-quantile (0..1) over the sliding window; 0.0 when empty.

        Nearest-rank on the sorted window — the estimator dashboards
        expect, and exact for the window it covers.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    @property
    def window_size(self) -> int:
        return len(self._window)

    def snapshot(self) -> dict:
        return {
            "count": self.total,
            "sum_ms": round(self.sum_ms, 6),
            "p50_ms": round(self.percentile(0.50), 6),
            "p99_ms": round(self.percentile(0.99), 6),
            "buckets": {
                ("+Inf" if math.isinf(bound) else f"{bound:g}"): count
                for bound, count in zip(self.buckets_ms, self.counts)
            },
        }


class ServeMetrics:
    """The selection server's metric registry."""

    def __init__(self) -> None:
        #: queue-wait + batch-execution time per request.
        self.request_latency = LatencyHistogram()
        #: per-flush batch sizes (distribution of the micro-batcher output).
        self.batch_sizes: dict[int, int] = {}
        self.batches_total = 0
        self.requests_total = 0
        self.errors_total = 0
        #: queue depth sampled at each enqueue (peak-ish view of pressure).
        self.queue_depth = 0
        self.queue_depth_peak = 0
        #: requests shed by admission control, keyed by reason
        #: (``queue_full``, ``rate_limit``).
        self.shed_total: dict[str, int] = {}
        #: requests rejected or abandoned because their deadline expired.
        self.deadline_exceeded_total = 0
        #: flush-loop restarts performed by the batcher watchdog.
        self.watchdog_restarts_total = 0
        #: client connections that vanished mid-request (reset/timeout/EOF).
        self.dropped_connections_total = 0
        #: circuit-breaker state transitions (any direction).
        self.breaker_transitions_total = 0
        self._cache_stats: Callable[[], Mapping[str, int]] | None = None
        self._breaker_state: Callable[[], str] | None = None

    # -- recording ------------------------------------------------------
    def observe_request(self, latency_ms: float) -> None:
        self.requests_total += 1
        self.request_latency.observe(latency_ms)

    def observe_error(self) -> None:
        self.errors_total += 1

    def observe_shed(self, reason: str = "queue_full") -> None:
        self.shed_total[reason] = self.shed_total.get(reason, 0) + 1

    def observe_deadline_exceeded(self) -> None:
        self.deadline_exceeded_total += 1

    def observe_watchdog_restart(self) -> None:
        self.watchdog_restarts_total += 1

    def observe_dropped_connection(self) -> None:
        self.dropped_connections_total += 1

    def observe_breaker_transition(self, old_state: str, new_state: str) -> None:
        del old_state, new_state  # the transition count is state-agnostic
        self.breaker_transitions_total += 1

    def observe_batch(self, size: int) -> None:
        self.batches_total += 1
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1

    def observe_queue_depth(self, depth: int) -> None:
        self.queue_depth = depth
        self.queue_depth_peak = max(self.queue_depth_peak, depth)

    def set_cache_stats_provider(
        self, provider: Callable[[], Mapping[str, int]]
    ) -> None:
        """Hook the registry's representation-cache counters in lazily."""
        self._cache_stats = provider

    def set_breaker_state_provider(self, provider: Callable[[], str]) -> None:
        """Hook the reload circuit breaker's state in lazily."""
        self._breaker_state = provider

    # -- reading --------------------------------------------------------
    def cache_hit_rate(self) -> float | None:
        """Representation-cache hit rate in [0, 1], or None when unwired."""
        if self._cache_stats is None:
            return None
        stats = self._cache_stats()
        lookups = int(stats.get("hits", 0)) + int(stats.get("misses", 0))
        if lookups == 0:
            return 0.0
        return int(stats.get("hits", 0)) / lookups

    def snapshot(self) -> dict:
        data = {
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "batches_total": self.batches_total,
            "batch_sizes": dict(sorted(self.batch_sizes.items())),
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "shed_total": dict(sorted(self.shed_total.items())),
            "deadline_exceeded_total": self.deadline_exceeded_total,
            "watchdog_restarts_total": self.watchdog_restarts_total,
            "dropped_connections_total": self.dropped_connections_total,
            "breaker_transitions_total": self.breaker_transitions_total,
            "latency": self.request_latency.snapshot(),
        }
        if self._breaker_state is not None:
            data["breaker_state"] = self._breaker_state()
        hit_rate = self.cache_hit_rate()
        if hit_rate is not None:
            data["cache_hit_rate"] = round(hit_rate, 6)
            assert self._cache_stats is not None
            data["cache"] = dict(self._cache_stats())
        return data

    def render(self) -> str:
        """Prometheus-style exposition text for ``/metrics``."""
        latency = self.request_latency
        lines = [
            "# TYPE repro_serve_requests_total counter",
            f"repro_serve_requests_total {self.requests_total}",
            "# TYPE repro_serve_errors_total counter",
            f"repro_serve_errors_total {self.errors_total}",
            "# TYPE repro_serve_batches_total counter",
            f"repro_serve_batches_total {self.batches_total}",
            "# TYPE repro_serve_queue_depth gauge",
            f"repro_serve_queue_depth {self.queue_depth}",
            "# TYPE repro_serve_queue_depth_peak gauge",
            f"repro_serve_queue_depth_peak {self.queue_depth_peak}",
            "# TYPE repro_serve_latency_ms summary",
            f'repro_serve_latency_ms{{quantile="0.5"}} {latency.percentile(0.5):.6f}',
            f'repro_serve_latency_ms{{quantile="0.99"}} {latency.percentile(0.99):.6f}',
            f"repro_serve_latency_ms_sum {latency.sum_ms:.6f}",
            f"repro_serve_latency_ms_count {latency.total}",
            "# TYPE repro_serve_latency_ms_bucket counter",
        ]
        cumulative = 0
        for bound, count in zip(latency.buckets_ms, latency.counts):
            cumulative += count
            label = "+Inf" if math.isinf(bound) else f"{bound:g}"
            lines.append(f'repro_serve_latency_ms_bucket{{le="{label}"}} {cumulative}')
        lines.append("# TYPE repro_serve_batch_size_total counter")
        for size, count in sorted(self.batch_sizes.items()):
            lines.append(f'repro_serve_batch_size_total{{size="{size}"}} {count}')
        lines.append("# TYPE repro_serve_shed_total counter")
        for reason in ("queue_full", "rate_limit"):
            count = self.shed_total.get(reason, 0)
            lines.append(f'repro_serve_shed_total{{reason="{reason}"}} {count}')
        for reason, count in sorted(self.shed_total.items()):
            if reason not in ("queue_full", "rate_limit"):
                lines.append(f'repro_serve_shed_total{{reason="{reason}"}} {count}')
        lines.extend([
            "# TYPE repro_serve_deadline_exceeded_total counter",
            f"repro_serve_deadline_exceeded_total {self.deadline_exceeded_total}",
            "# TYPE repro_serve_watchdog_restarts_total counter",
            f"repro_serve_watchdog_restarts_total {self.watchdog_restarts_total}",
            "# TYPE repro_serve_dropped_connections_total counter",
            f"repro_serve_dropped_connections_total {self.dropped_connections_total}",
            "# TYPE repro_serve_breaker_transitions_total counter",
            f"repro_serve_breaker_transitions_total {self.breaker_transitions_total}",
        ])
        if self._breaker_state is not None:
            state = self._breaker_state()
            value = BREAKER_STATE_VALUES.get(state, -1)
            lines.append("# HELP repro_serve_breaker_state 0=closed 1=half_open 2=open")
            lines.append("# TYPE repro_serve_breaker_state gauge")
            lines.append(f"repro_serve_breaker_state {value}")
        hit_rate = self.cache_hit_rate()
        if hit_rate is not None:
            lines.append("# TYPE repro_serve_cache_hit_rate gauge")
            lines.append(f"repro_serve_cache_hit_rate {hit_rate:.6f}")
        return "\n".join(lines) + "\n"
