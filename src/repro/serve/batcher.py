"""Async micro-batching request queue (stdlib ``asyncio`` only).

The batched engine turns B queued selection requests into one lockstep
inference; this module supplies the B.  Requests submitted concurrently
are gathered into batches that flush on whichever comes first:

* **size** — ``max_batch_size`` requests are waiting, or
* **time** — ``max_latency_ms`` elapsed since the batch opened (bounded
  queueing delay: a lone request never waits longer than the budget).

One worker coroutine owns the queue; the handler (the batched engine) runs
inline on the event loop — selection is a few milliseconds of NumPy, and
running it on the loop serialises model access by construction (no locks).
This queue is therefore *the* synchronization point of the serving path,
and is certified as such in the PAR601 parallel-safety walk
(``[tool.repolint.parallel]`` in ``pyproject.toml``, rationale in
``docs/ARCHITECTURE.md`` §8).

``clock`` and ``wait_for`` are injectable so tests can drive the
size/timeout/drain logic deterministically with a fake clock instead of
sleeping through real latency budgets.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

__all__ = ["BatcherClosed", "MicroBatcher"]


class BatcherClosed(RuntimeError):
    """Submit was called on a draining/stopped batcher."""


@dataclass
class _Pending:
    """One queued request: payload, completion future, enqueue timestamp."""

    payload: Any
    future: "asyncio.Future[Any]" = field(repr=False)
    enqueued_at: float


class _Sentinel:
    """Queue marker that tells the worker to flush and exit."""


_SHUTDOWN = _Sentinel()


class MicroBatcher:
    """Gather concurrent requests into batches for a synchronous handler.

    ``handler`` maps a list of payloads to an equal-length list of
    results; each :meth:`submit` resolves with the result at its payload's
    position.  A handler exception fails every request in the batch (the
    error is per-batch, not per-process — the worker keeps serving).
    """

    def __init__(
        self,
        handler: Callable[[list[Any]], list[Any]],
        *,
        max_batch_size: int = 64,
        max_latency_ms: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        wait_for: Callable[..., Awaitable[Any]] = asyncio.wait_for,
        metrics: Any = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_latency_ms < 0:
            raise ValueError(f"max_latency_ms must be >= 0, got {max_latency_ms}")
        self._handler = handler
        self.max_batch_size = max_batch_size
        self.max_latency_s = max_latency_ms / 1000.0
        self._clock = clock
        self._wait_for = wait_for
        self._metrics = metrics
        self._queue: "asyncio.Queue[_Pending | _Sentinel] | None" = None
        self._worker: "asyncio.Task[None] | None" = None
        self._closing = False

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Create the queue and start the worker on the running loop."""
        if self._worker is not None:
            raise RuntimeError("batcher is already started")
        self._closing = False
        self._queue = asyncio.Queue()
        self._worker = asyncio.create_task(self._run(self._queue))

    async def drain(self) -> None:
        """Graceful shutdown: reject new work, flush pending, stop.

        Every request submitted before the drain still completes (the
        shutdown marker sits behind them in the FIFO queue); submits after
        the drain raise :class:`BatcherClosed`.  Idempotent.
        """
        if self._worker is None or self._closing:
            return
        self._closing = True
        assert self._queue is not None
        self._queue.put_nowait(_SHUTDOWN)
        await self._worker
        self._worker = None

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    # -- request path ---------------------------------------------------
    async def submit(self, payload: Any) -> Any:
        """Enqueue one payload and wait for its batched result."""
        if self._closing:
            raise BatcherClosed("batcher is draining; request rejected")
        if self._queue is None or self._worker is None:
            raise RuntimeError("batcher is not started; call start() first")
        pending = _Pending(
            payload=payload,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=self._clock(),
        )
        self._queue.put_nowait(pending)
        if self._metrics is not None:
            self._metrics.observe_queue_depth(self._queue.qsize())
        return await pending.future

    # -- worker ---------------------------------------------------------
    async def _run(self, queue: "asyncio.Queue[_Pending | _Sentinel]") -> None:
        while True:
            head = await queue.get()
            if isinstance(head, _Sentinel):
                # FIFO: every request enqueued before the drain marker has
                # already been consumed, so there is nothing left to flush.
                return
            batch = [head]
            shutting_down = False
            deadline = self._clock() + self.max_latency_s
            while len(batch) < self.max_batch_size:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                try:
                    item = await self._wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if isinstance(item, _Sentinel):
                    shutting_down = True
                    break
                batch.append(item)
            self._flush(batch)
            if shutting_down:
                return

    def _flush(self, batch: list[_Pending]) -> None:
        """Run the handler on one gathered batch and resolve its futures."""
        if self._metrics is not None:
            self._metrics.observe_batch(len(batch))
        payloads = [pending.payload for pending in batch]
        try:
            results = self._handler(payloads)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"batch handler returned {len(results)} results for "
                    f"{len(batch)} payloads"
                )
        except Exception as exc:  # fail the batch, keep the worker alive
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
                if self._metrics is not None:
                    self._metrics.observe_error()
            return
        now = self._clock()
        for pending, result in zip(batch, results):
            if not pending.future.done():
                pending.future.set_result(result)
            if self._metrics is not None:
                self._metrics.observe_request((now - pending.enqueued_at) * 1000.0)
