"""Async micro-batching request queue (stdlib ``asyncio`` only).

The batched engine turns B queued selection requests into one lockstep
inference; this module supplies the B.  Requests submitted concurrently
are gathered into batches that flush on whichever comes first:

* **size** — ``max_batch_size`` requests are waiting, or
* **time** — ``max_latency_ms`` elapsed since the batch opened (bounded
  queueing delay: a lone request never waits longer than the budget).

One worker coroutine owns the queue; the handler (the batched engine) runs
inline on the event loop — selection is a few milliseconds of NumPy, and
running it on the loop serialises model access by construction (no locks).
This queue is therefore *the* synchronization point of the serving path,
and is certified as such in the PAR601 parallel-safety walk
(``[tool.repolint.parallel]`` in ``pyproject.toml``, rationale in
``docs/ARCHITECTURE.md`` §8).

Overload and failure behaviour is explicit rather than emergent:

* **Bounded admission** — with ``max_queue_depth`` set, :meth:`submit`
  sheds excess load with :class:`QueueFull` (carrying a retry-after
  estimate) instead of queueing unboundedly; the server maps it to a
  structured ``429`` + ``Retry-After``.
* **Deadlines** — a request may carry a
  :class:`~repro.io.resilience.Deadline`; expired requests are failed
  with :class:`~repro.io.resilience.DeadlineExceeded` *before* they
  consume a batch slot (at submit, at gather, and again at flush).
* **Watchdog** — with ``watchdog_timeout_ms`` set, a sidecar coroutine
  detects a crashed or stalled worker (no progress while work is
  outstanding), fails the stranded requests with :class:`BatcherStalled`,
  and restarts the flush loop so one poisoned batch cannot hang every
  future request.
* **Drain** — requests still queued when the worker exits are failed with
  :class:`ServiceUnavailable` instead of leaving their futures pending
  forever.

``clock``, ``wait_for`` and ``sleep`` are injectable so tests can drive
the size/timeout/drain/watchdog logic deterministically with a fake clock
instead of sleeping through real latency budgets.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro.errors import LifecycleError, ServeError
from repro.io.resilience import Deadline, DeadlineExceeded
from repro.obs.clock import monotonic
from repro.obs.log import get_logger

__all__ = [
    "BatcherClosed",
    "BatcherStalled",
    "MicroBatcher",
    "QueueFull",
    "ServiceUnavailable",
]

_LOG = get_logger("serve.batcher")


class BatcherClosed(ServeError):
    """Submit was called on a draining/stopped batcher."""


class ServiceUnavailable(BatcherClosed):
    """A queued request was abandoned because the batcher shut down."""


class BatcherStalled(ServeError):
    """The watchdog killed a stalled/crashed flush loop holding this request."""


class QueueFull(ServeError):
    """Admission control shed this request: the bounded queue is full.

    Built via :func:`queue_full_error` (a plain message-only exception plus
    attribute assignment keeps the PAR601 call-graph walk from conflating
    a custom ``__init__`` with unrelated constructors).
    """

    depth: int = 0
    capacity: int = 0
    retry_after_s: float = 0.0


def queue_full_error(depth: int, capacity: int, retry_after_s: float) -> QueueFull:
    """A :class:`QueueFull` carrying the shed context and a retry hint."""
    error = QueueFull(
        f"admission queue is full ({depth}/{capacity} waiting); "
        f"retry in ~{retry_after_s:.2f}s"
    )
    error.depth = depth
    error.capacity = capacity
    error.retry_after_s = retry_after_s
    return error


@dataclass
class _Pending:
    """One queued request: payload, completion future, enqueue timestamp."""

    payload: Any
    future: "asyncio.Future[Any]" = field(repr=False)
    enqueued_at: float
    deadline: Deadline | None = None


class _Sentinel:
    """Queue marker that tells the worker to flush and exit."""


_SHUTDOWN = _Sentinel()


class MicroBatcher:
    """Gather concurrent requests into batches for a synchronous handler.

    ``handler`` maps a list of payloads to an equal-length list of
    results; each :meth:`submit` resolves with the result at its payload's
    position.  A handler exception fails every request in the batch (the
    error is per-batch, not per-process — the worker keeps serving).
    """

    def __init__(
        self,
        handler: Callable[[list[Any]], list[Any]],
        *,
        max_batch_size: int = 64,
        max_latency_ms: float = 5.0,
        max_queue_depth: int | None = None,
        watchdog_timeout_ms: float | None = None,
        clock: Callable[[], float] = monotonic,
        wait_for: Callable[..., Awaitable[Any]] = asyncio.wait_for,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
        metrics: Any = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_latency_ms < 0:
            raise ValueError(f"max_latency_ms must be >= 0, got {max_latency_ms}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth}"
            )
        if watchdog_timeout_ms is not None and watchdog_timeout_ms <= 0:
            raise ValueError(
                f"watchdog_timeout_ms must be > 0 or None, got {watchdog_timeout_ms}"
            )
        self._handler = handler
        self.max_batch_size = max_batch_size
        self.max_latency_s = max_latency_ms / 1000.0
        self.max_queue_depth = max_queue_depth
        self.watchdog_timeout_s = (
            watchdog_timeout_ms / 1000.0 if watchdog_timeout_ms is not None else None
        )
        self._clock = clock
        self._wait_for = wait_for
        self._sleep = sleep
        self._metrics = metrics
        self._queue: "asyncio.Queue[_Pending | _Sentinel] | None" = None
        self._worker: "asyncio.Task[None] | None" = None
        self._watchdog_task: "asyncio.Task[None] | None" = None
        self._closing = False
        #: requests popped from the queue for the batch being gathered —
        #: exposed so the watchdog can fail them if the worker stalls.
        self._inflight: list[_Pending] = []
        self._last_beat = 0.0
        self._restarts = 0

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Create the queue and start the worker on the running loop."""
        if self._worker is not None:
            raise LifecycleError("batcher is already started")
        self._closing = False
        self._queue = asyncio.Queue()
        self._inflight = []
        self._last_beat = self._clock()
        self._worker = asyncio.create_task(self._run(self._queue))
        if self.watchdog_timeout_s is not None:
            self._watchdog_task = asyncio.create_task(self._watchdog())

    async def drain(self) -> None:
        """Graceful shutdown: reject new work, flush pending, stop.

        Every request submitted before the drain still completes (the
        shutdown marker sits behind them in the FIFO queue); submits after
        the drain raise :class:`BatcherClosed`.  Requests that somehow
        remain queued once the worker exits (the sentinel winning a race,
        or a worker that died) are failed with
        :class:`ServiceUnavailable` rather than left hanging.  Idempotent.
        """
        if self._worker is None or self._closing:
            return
        self._closing = True
        assert self._queue is not None
        self._queue.put_nowait(_SHUTDOWN)
        worker = self._worker
        try:
            await worker
        except asyncio.CancelledError:
            if not worker.cancelled():
                raise  # the drain itself was cancelled, not the worker
        except Exception:
            _LOG.exception("batcher worker died during drain")
        self._worker = None
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            try:
                await self._watchdog_task
            except asyncio.CancelledError:
                pass
            self._watchdog_task = None
        self._fail_outstanding(
            ServiceUnavailable("batcher drained before this request was flushed")
        )

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def running(self) -> bool:
        """True while the flush loop is alive (liveness for ``/healthz``)."""
        return self._worker is not None and not self._worker.done()

    @property
    def restarts(self) -> int:
        """How many times the watchdog restarted the flush loop."""
        return self._restarts

    # -- request path ---------------------------------------------------
    async def submit(self, payload: Any, deadline: Deadline | None = None) -> Any:
        """Enqueue one payload and wait for its batched result.

        Raises :class:`QueueFull` when admission control sheds the
        request, and :class:`~repro.io.resilience.DeadlineExceeded` when
        ``deadline`` has already expired — both *before* enqueueing.
        """
        if self._closing:
            raise BatcherClosed("batcher is draining; request rejected")
        if self._queue is None or self._worker is None:
            raise LifecycleError("batcher is not started; call start() first")
        if deadline is not None and deadline.expired:
            if self._metrics is not None:
                self._metrics.observe_deadline_exceeded()
            raise DeadlineExceeded(
                f"request deadline ({deadline.budget_s * 1000.0:.0f} ms) "
                f"expired before admission"
            )
        depth = self._queue.qsize()
        if self.max_queue_depth is not None and depth >= self.max_queue_depth:
            if self._metrics is not None:
                self._metrics.observe_shed("queue_full")
            raise queue_full_error(
                depth, self.max_queue_depth, self._retry_after_s(depth)
            )
        pending = _Pending(
            payload=payload,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=self._clock(),
            deadline=deadline,
        )
        self._queue.put_nowait(pending)
        if self._metrics is not None:
            self._metrics.observe_queue_depth(self._queue.qsize())
        return await pending.future

    def _retry_after_s(self, depth: int) -> float:
        """Estimated time for the current backlog to drain (429 hint)."""
        batches = max(1, math.ceil(depth / self.max_batch_size))
        return batches * max(self.max_latency_s, 0.001)

    # -- worker ---------------------------------------------------------
    def _beat(self) -> None:
        self._last_beat = self._clock()

    def _expire(self, pending: _Pending) -> bool:
        """True when ``pending`` must be dropped instead of batched.

        A request is dropped when its future is already settled (e.g. a
        server-side timeout cancelled it while queued) or its deadline has
        expired — the latter fails the future with
        :class:`~repro.io.resilience.DeadlineExceeded` so the waiter gets
        a typed answer instead of silently wasting a batch slot.
        """
        if pending.future.done():
            return True
        if pending.deadline is not None and pending.deadline.expired:
            pending.future.set_exception(
                DeadlineExceeded(
                    f"request deadline "
                    f"({pending.deadline.budget_s * 1000.0:.0f} ms) expired "
                    f"while queued"
                )
            )
            if self._metrics is not None:
                self._metrics.observe_deadline_exceeded()
            return True
        return False

    async def _run(self, queue: "asyncio.Queue[_Pending | _Sentinel]") -> None:
        while True:
            head = await queue.get()
            self._beat()
            if isinstance(head, _Sentinel):
                # FIFO: every request enqueued before the drain marker has
                # already been consumed, so there is nothing left to flush.
                return
            if self._expire(head):
                continue
            self._inflight = [head]
            shutting_down = False
            deadline = self._clock() + self.max_latency_s
            while len(self._inflight) < self.max_batch_size:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                try:
                    item = await self._wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                self._beat()
                if isinstance(item, _Sentinel):
                    shutting_down = True
                    break
                if not self._expire(item):
                    self._inflight.append(item)
            self._flush(self._inflight)
            self._inflight = []
            self._beat()
            # Re-observe after the flush drained the queue: the gauge must
            # fall back down once requests are consumed, not stay pinned at
            # the last enqueue-time depth.
            if self._metrics is not None:
                self._metrics.observe_queue_depth(queue.qsize())
            if shutting_down:
                return

    def _flush(self, batch: list[_Pending]) -> None:
        """Run the handler on one gathered batch and resolve its futures."""
        batch = [pending for pending in batch if not self._expire(pending)]
        if not batch:
            return
        if self._metrics is not None:
            self._metrics.observe_batch(len(batch))
        payloads = [pending.payload for pending in batch]
        try:
            results = self._handler(payloads)
            if len(results) != len(batch):
                raise ServeError(
                    f"batch handler returned {len(results)} results for "
                    f"{len(batch)} payloads"
                )
        except Exception as exc:  # fail the batch, keep the worker alive
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
                if self._metrics is not None:
                    self._metrics.observe_error()
            return
        now = self._clock()
        for pending, result in zip(batch, results):
            if not pending.future.done():
                pending.future.set_result(result)
            if self._metrics is not None:
                self._metrics.observe_request((now - pending.enqueued_at) * 1000.0)

    # -- watchdog -------------------------------------------------------
    async def _watchdog(self) -> None:
        """Detect a crashed or stalled flush loop and restart it.

        *Crashed*: the worker task completed while the batcher is still
        open (the flush loop never returns normally outside a drain).
        *Stalled*: work is outstanding (gathered requests or a non-empty
        queue) but the worker has made no progress for a full
        ``watchdog_timeout_ms``.  Either way the stranded in-flight
        requests are failed with :class:`BatcherStalled` and a fresh
        worker takes over the queue.
        """
        assert self.watchdog_timeout_s is not None
        interval = self.watchdog_timeout_s / 2.0
        while not self._closing:
            await self._sleep(interval)
            if self._closing or self._queue is None:
                return
            worker = self._worker
            if worker is None:
                return
            crashed = worker.done()
            outstanding = bool(self._inflight) or self._queue.qsize() > 0
            stalled = (
                not crashed
                and outstanding
                and self._clock() - self._last_beat > self.watchdog_timeout_s
            )
            if not crashed and not stalled:
                continue
            reason = "crashed" if crashed else "stalled"
            if crashed:
                error = worker.exception() if not worker.cancelled() else None
                _LOG.error("batcher worker crashed: %r; restarting", error)
            else:
                _LOG.error(
                    "batcher worker stalled for > %.3fs with work outstanding; "
                    "restarting",
                    self.watchdog_timeout_s,
                )
                worker.cancel()
                try:
                    await worker
                except asyncio.CancelledError:
                    pass
                except Exception:
                    _LOG.exception("stalled batcher worker died on cancel")
            failure = BatcherStalled(
                f"batch flush loop {reason}; request failed by the watchdog"
            )
            for pending in self._inflight:
                if not pending.future.done():
                    pending.future.set_exception(failure)
                if self._metrics is not None:
                    self._metrics.observe_error()
            self._inflight = []
            self._restarts += 1
            if self._metrics is not None:
                self._metrics.observe_watchdog_restart()
            self._beat()
            self._worker = asyncio.create_task(self._run(self._queue))

    # -- shutdown helpers ----------------------------------------------
    def _fail_outstanding(self, error: Exception) -> None:
        """Fail every request still sitting in the queue with ``error``."""
        if self._queue is None:
            return
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                if self._metrics is not None:
                    self._metrics.observe_queue_depth(0)
                return
            if isinstance(item, _Sentinel):
                continue
            if not item.future.done():
                item.future.set_exception(error)
                if self._metrics is not None:
                    self._metrics.observe_error()
