"""Versioned model registry: load, verify and hot-swap trained agents.

A serving process must (a) come up on the newest model artifact that is
actually trustworthy, (b) pick up newly published versions without a
restart, and (c) never crash — or silently serve garbage — because the
newest artifact is corrupt.  :class:`ModelRegistry` provides all three on
top of the existing artifact format: every version is a
:func:`repro.io.save_model` directory whose ``manifest.json`` carries
SHA-256 checksums written by the :mod:`repro.io.checkpoint` atomic-write
helpers, and :func:`repro.io.load_model` verifies those checksums before
any weight is deserialised.

**Layouts.**  The registry root is either

* a single model artifact (``config.json`` at the root) — one version,
  named after the directory; or
* a directory of version subdirectories, each a model artifact — versions
  are ordered by name (publish as ``v0001``, ``v0002``, … or any
  lexicographically increasing scheme), newest last.

**Corruption fallback.**  :meth:`load` walks versions newest-first and
serves the first one that passes verification; failures are recorded in
:attr:`skipped` (``(path, reason)`` pairs) and logged, mirroring
:meth:`repro.io.checkpoint.CheckpointManager.latest_valid`.

**Hot swap.**  :meth:`refresh` rescans the root; when a version newer than
the current one validates, the served model is swapped atomically: the
``(model, version)`` pair is published as one tuple under a short-held
lock, so a reader can never observe the new model with the old version
label (or vice versa).  In-flight batches keep the agent object they
started with.  A corrupt newer version is skipped and the current model
keeps serving.

**Thread safety.**  The server offloads :meth:`refresh` to an executor
thread so model-file I/O never blocks the event loop; every cross-context
field (the current pair, the skip history) is therefore guarded by the
swap lock — a :class:`repro.analysis.tsan.TrackedLock`, so chaos runs
with ``REPRO_TSAN=1`` verify the locking dynamically.  The lock is held
only for attribute rebinds and list snapshots, never across file I/O.
The representation cache is intentionally *not* locked: it is touched
only by the event-loop thread (repolint's ASYNC902 checks this).

**Representation cache.**  Selection requests arrive as raw task data
(features + labels); the |Pearson| task representation is the only
preprocessing, and repeat requests for the same task are common in
production (retries, A/B probes, shared dashboards).  A bounded LRU keyed
on a SHA-256 fingerprint of the task bytes makes those repeats skip the
recompute; hits and misses feed the ``/metrics`` cache-hit-rate gauge.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis import tsan
from repro.analysis.tsan import TrackedLock
from repro.data.stats import pearson_representation
from repro.errors import ServeError
from repro.obs.log import get_logger

if TYPE_CHECKING:
    from repro.core.pafeat import PAFeat

_LOG = get_logger("serve.registry")

#: Cap on the retained skip records (oldest evicted first).
MAX_SKIP_HISTORY = 50


class RegistryError(ServeError):
    """No servable model version could be loaded from the registry root."""


@dataclass(frozen=True)
class ModelVersion:
    """One successfully loaded, checksum-verified model version."""

    name: str
    path: Path
    n_features: int


def task_fingerprint(features: np.ndarray, labels: np.ndarray) -> str:
    """Content hash of a task's data — the representation-cache key.

    Covers values, dtypes and shapes of both arrays, so any change in the
    task produces a different key.
    """
    features = np.ascontiguousarray(features)
    labels = np.ascontiguousarray(labels)
    digest = hashlib.sha256()
    for array in (features, labels):
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


class ModelRegistry:
    """Versioned store of inference artifacts under one root directory."""

    def __init__(
        self, root: str | Path, representation_cache_size: int = 256
    ) -> None:
        if representation_cache_size < 1:
            raise ValueError(
                f"representation_cache_size must be >= 1, "
                f"got {representation_cache_size}"
            )
        self.root = Path(root)
        if not self.root.is_dir():
            raise FileNotFoundError(f"registry root {self.root} is not a directory")
        # Guards every field shared between the event loop and the
        # executor thread running refresh(); held for rebinds/snapshots
        # only, never across file I/O.
        self._swap_lock = TrackedLock("ModelRegistry.swap")
        # The served (model, version) pair, published atomically as one
        # tuple so readers never see a torn swap.
        self._current: "tuple[PAFeat, ModelVersion] | None" = None
        # Corrupt/unloadable versions seen by load()/refresh() — bounded
        # to MAX_SKIP_HISTORY so a long-lived server polling a broken
        # publisher cannot grow it without limit — plus the lifetime
        # count (never trimmed) whose delta feeds the circuit breaker.
        self._skips: list[tuple[Path, str]] = []
        self._skips_total = 0
        self._cache_capacity = representation_cache_size
        self._representations: OrderedDict[str, np.ndarray] = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0

    # -- discovery ------------------------------------------------------
    def candidate_versions(self) -> list[tuple[str, Path]]:
        """``(name, path)`` of every potential version, oldest → newest."""
        if (self.root / "config.json").is_file():
            return [(self.root.name or "model", self.root)]
        found = [
            (entry.name, entry)
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / "config.json").is_file()
        ]
        return sorted(found)

    # -- loading / hot swap --------------------------------------------
    def load(self) -> ModelVersion:
        """Load the newest version that verifies; raise when none does.

        Walks newest-first; a version whose manifest, checksums or weights
        fail validation is recorded in :attr:`skipped` and passed over.
        """
        candidates = self.candidate_versions()
        if not candidates:
            raise RegistryError(
                f"no model versions under {self.root} (expected a saved "
                f"model artifact or a directory of artifact subdirectories)"
            )
        for name, path in reversed(candidates):
            loaded = self._try_load(name, path)
            if loaded is not None:
                return loaded
        reasons = "; ".join(
            f"{path.name}: {reason}" for path, reason in self.recent_skips()
        )
        raise RegistryError(
            f"no valid model version under {self.root} ({reasons})"
        )

    def refresh(self) -> bool:
        """Hot-swap to a newer valid version when one exists.

        Returns True when the served model changed.  Corrupt newer
        versions are skipped (recorded in :attr:`skipped`); the current
        model keeps serving.  With no model loaded yet this behaves like
        :meth:`load` but returns the swap flag instead of raising.
        """
        with self._swap_lock:
            tsan.note(self, "_current")
            current = self._current[1].name if self._current is not None else None
        for name, path in reversed(self.candidate_versions()):
            if current is not None and name <= current:
                break
            if self._try_load(name, path) is not None:
                return True
        return False

    def _try_load(self, name: str, path: Path) -> ModelVersion | None:
        from repro.io.serialization import load_model

        try:
            model = load_model(path)
        except (ValueError, OSError, KeyError) as exc:
            _LOG.warning("skipping model version %s: %s", path, exc)
            with self._swap_lock:
                tsan.note(self, "_skips", write=True)
                tsan.note(self, "_skips_total", write=True)
                self._skips.append((path, str(exc)))
                self._skips_total += 1
                del self._skips[:-MAX_SKIP_HISTORY]
            return None
        assert model._n_features is not None
        version = ModelVersion(
            name=name, path=path, n_features=int(model._n_features)
        )
        with self._swap_lock:
            tsan.note(self, "_current", write=True)
            self._current = (model, version)
        return version

    @property
    def loaded(self) -> bool:
        """Whether a model version is currently being served."""
        with self._swap_lock:
            tsan.note(self, "_current")
            return self._current is not None

    @property
    def model(self) -> "PAFeat":
        """The currently served model; :meth:`load` must have succeeded."""
        with self._swap_lock:
            tsan.note(self, "_current")
            current = self._current
        if current is None:
            raise RegistryError("no model loaded; call load() first")
        return current[0]

    @property
    def version(self) -> ModelVersion:
        with self._swap_lock:
            tsan.note(self, "_current")
            current = self._current
        if current is None:
            raise RegistryError("no model loaded; call load() first")
        return current[1]

    def serving(self) -> "tuple[PAFeat, ModelVersion]":
        """One consistent ``(model, version)`` snapshot — the pair a
        response should be computed *and* labeled with."""
        with self._swap_lock:
            tsan.note(self, "_current")
            current = self._current
        if current is None:
            raise RegistryError("no model loaded; call load() first")
        return current

    # -- skip history ---------------------------------------------------
    @property
    def skipped(self) -> list[tuple[Path, str]]:
        """Snapshot of the recent skip records (kept for API compat)."""
        return self.recent_skips()

    @property
    def skips_total(self) -> int:
        """Lifetime count of skipped candidates."""
        return self.skip_count()

    def recent_skips(self) -> list[tuple[Path, str]]:
        """Copy of the bounded ``(path, reason)`` skip history."""
        with self._swap_lock:
            tsan.note(self, "_skips")
            return list(self._skips)

    def skip_count(self) -> int:
        """Lifetime skip count, read under the swap lock."""
        with self._swap_lock:
            tsan.note(self, "_skips_total")
            return self._skips_total

    # -- representation cache ------------------------------------------
    def representation(
        self, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """The task's |Pearson| representation, LRU-cached by fingerprint."""
        key = task_fingerprint(features, labels)
        cached = self._representations.get(key)
        if cached is not None:
            self._cache_hits += 1
            self._representations.move_to_end(key)
            return cached
        self._cache_misses += 1
        value = pearson_representation(features, labels)
        self._representations[key] = value
        while len(self._representations) > self._cache_capacity:
            self._representations.popitem(last=False)
        return value

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss counters for the ``/metrics`` cache-hit-rate gauge."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": len(self._representations),
            "capacity": self._cache_capacity,
        }
