"""Serving: batched greedy inference behind an async micro-batching server.

PA-FEAT's deployment story is train-once, answer-many: Algorithm 1's cost
is amortised across every future unseen task, and each answer is a single
greedy episode — milliseconds of Q-network forwards.  This package turns
that property into a service:

* :class:`~repro.serve.engine.BatchedGreedyEngine` — run B unseen tasks'
  greedy episodes in lockstep, one batched Q-forward per feature step
  (bit-exact with sequential :meth:`repro.core.pafeat.PAFeat.select`);
* :class:`~repro.serve.registry.ModelRegistry` — versioned, checksum-
  verified model loading with corruption fallback, hot swap and an LRU
  task-representation cache;
* :class:`~repro.serve.batcher.MicroBatcher` — an asyncio request queue
  that flushes on batch size or latency budget, with bounded-depth
  admission control, per-request deadlines, a self-healing flush-loop
  watchdog and graceful drain;
* :class:`~repro.serve.server.SelectionServer` — ``/select``,
  ``/healthz``, ``/metrics`` and ``/reload`` over stdlib asyncio, with
  structured overload behaviour (429 + ``Retry-After`` shedding, 504 on
  expired deadlines, a circuit breaker around model reloads) built on
  :mod:`repro.io.resilience`;
* :class:`~repro.serve.metrics.ServeMetrics` — latency p50/p99, queue
  depth, batch-size distribution, cache hit rate and the shed/deadline/
  breaker/watchdog resilience counters.

Run it: ``python -m repro serve --checkpoint-dir <model-or-versions-dir>``
(see ``examples/serve_client.py`` for a self-contained demo).
"""

from repro.serve.batcher import (
    BatcherClosed,
    BatcherStalled,
    MicroBatcher,
    QueueFull,
    ServiceUnavailable,
)
from repro.serve.engine import BatchedGreedyEngine
from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.registry import (
    ModelRegistry,
    ModelVersion,
    RegistryError,
    task_fingerprint,
)
from repro.serve.server import SelectionServer

__all__ = [
    "BatchedGreedyEngine",
    "BatcherClosed",
    "BatcherStalled",
    "LatencyHistogram",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "QueueFull",
    "RegistryError",
    "SelectionServer",
    "ServeMetrics",
    "ServiceUnavailable",
    "task_fingerprint",
]
