"""Async selection server: ``/select``, ``/healthz``, ``/metrics``.

A deliberately small HTTP/1.1 server over raw ``asyncio`` streams — the
runtime dependency budget is numpy-only, so there is no web framework to
lean on, and the protocol surface (three JSON endpoints, short-lived
connections) does not justify one.

Request path::

    client ──POST /select──▶ admission (rate limit, deadline)
                         ──▶ registry.representation (LRU)
                         ──▶ MicroBatcher.submit ──┐
                                                   ▼  flush on
                              BatchedGreedyEngine ◀┘  size/time
                                    │
    client ◀──{"subset": [...]}─────┘

Endpoints:

* ``POST /select`` — body ``{"features": [[...]], "labels": [...]}`` (raw
  task data; the representation is computed and LRU-cached) or
  ``{"representation": [...]}`` (precomputed |Pearson| vector), plus an
  optional ``"timeout_ms"`` — the client's latency budget, capped by the
  server's.  Response: the selected subset, the serving model version and
  the request latency.
* ``GET /healthz`` — liveness + the served model version, batcher
  liveness and reload-breaker state.
* ``GET /metrics`` — Prometheus-style text (latency p50/p99, queue depth,
  batch-size distribution, cache hit rate, shed/deadline/breaker/watchdog
  counters).
* ``POST /reload`` — rescan the registry root and hot-swap to a newer
  valid model version (no restart; corrupt candidates are skipped).

Overload behaviour is structured, not emergent
(:mod:`repro.io.resilience` wired end-to-end):

* a full admission queue or an exhausted rate-limit bucket sheds with
  ``429`` + ``Retry-After`` instead of queueing unboundedly;
* each request carries a :class:`~repro.io.resilience.Deadline`; expired
  requests get ``504`` without wasting a batch slot;
* ``/reload`` runs behind a :class:`~repro.io.resilience.CircuitBreaker`
  — repeated corrupt or failing loads trip it open (last-good model keeps
  serving), half-open probes recover it automatically;
* the batcher watchdog restarts a stalled flush loop and fails stranded
  requests with a typed ``503``;
* every socket read/write is bounded by ``io_timeout_s`` (the repolint
  RES801 rule enforces this for the whole serve layer).

Shutdown is graceful and reuses the training CLI's signal discipline
(:class:`repro.io.lifecycle.GracefulShutdown`): on SIGTERM/SIGINT the
listener stops accepting, the micro-batcher drains every queued request,
in-flight connections get a bounded window to finish writing, then the
process exits.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any, Callable, NamedTuple

import numpy as np

from repro.analysis import tsan
from repro.errors import LifecycleError, ServeError
from repro.io.lifecycle import GracefulShutdown
from repro.io.resilience import (
    BREAKER_CLOSED,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    Retry,
    TokenBucket,
)
from repro.serve.batcher import (
    BatcherClosed,
    BatcherStalled,
    MicroBatcher,
    QueueFull,
)
from repro.serve.engine import BatchedGreedyEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ModelRegistry, ModelVersion, RegistryError
from repro.obs.clock import monotonic
from repro.obs.log import get_logger

__all__ = ["SelectionServer"]

_LOG = get_logger("serve.server")

_MAX_BODY_BYTES = 8 << 20  # a request is one task's data; 8 MiB is generous
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Exceptions meaning "the client went away / the socket timed out", never
#: a server bug.  ``asyncio.TimeoutError`` is distinct from the builtin
#: ``TimeoutError`` on Python 3.10, so both are listed.
_DROPPED_CONNECTION_ERRORS = (
    asyncio.IncompleteReadError,
    ConnectionError,
    TimeoutError,
    asyncio.TimeoutError,
)


class _BadRequest(ServeError, ValueError):
    """Client-side request problem → HTTP 400."""


class _Response(NamedTuple):
    """Status, content type, body and extra headers for one reply."""

    status: int
    content_type: str
    body: bytes
    headers: tuple[tuple[str, str], ...] = ()


def _retry_after_header(seconds: float) -> tuple[str, str]:
    """``Retry-After`` wants integer seconds; round up, floor at 1."""
    return ("Retry-After", str(max(1, math.ceil(seconds))))


class SelectionServer:
    """Serve feature-selection requests over a micro-batched engine."""

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch_size: int = 64,
        max_latency_ms: float = 5.0,
        max_queue_depth: int = 256,
        request_timeout_ms: float | None = None,
        rate_limit_rps: float | None = None,
        rate_limit_burst: float | None = None,
        io_timeout_s: float = 10.0,
        breaker_failure_threshold: int = 3,
        breaker_reset_s: float = 30.0,
        watchdog_timeout_ms: float | None = 5000.0,
        load_retries: int = 3,
        metrics: ServeMetrics | None = None,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if request_timeout_ms is not None and request_timeout_ms < 0:
            raise ValueError(
                f"request_timeout_ms must be >= 0 or None, got {request_timeout_ms}"
            )
        if io_timeout_s <= 0:
            raise ValueError(f"io_timeout_s must be > 0, got {io_timeout_s}")
        if load_retries < 1:
            raise ValueError(f"load_retries must be >= 1, got {load_retries}")
        self.registry = registry
        self.host = host
        self.port = port
        self.max_batch_size = max_batch_size
        self.max_latency_ms = max_latency_ms
        self.max_queue_depth = max_queue_depth
        self.request_timeout_ms = request_timeout_ms
        self.io_timeout_s = io_timeout_s
        self.watchdog_timeout_ms = watchdog_timeout_ms
        self.load_retries = load_retries
        self.metrics = metrics or ServeMetrics()
        self._clock = clock
        # The (engine, version) pair requests are served with, published
        # as one tuple so a response can never mix the engine of one
        # model version with the label of another across a hot swap.
        # Loop-thread-only state: written in start()/_handle_reload(),
        # read in _select_batch()/_handle_healthz() — no lock needed (the
        # registry's cross-thread state is what the swap lock guards).
        self._serving: tuple[BatchedGreedyEngine, ModelVersion] | None = None
        self._batcher: MicroBatcher | None = None
        self._server: asyncio.AbstractServer | None = None
        self._connections: set["asyncio.Task[None]"] = set()
        self._bucket: TokenBucket | None = None
        if rate_limit_rps is not None:
            if rate_limit_rps <= 0:
                raise ValueError(
                    f"rate_limit_rps must be > 0 or None, got {rate_limit_rps}"
                )
            burst = rate_limit_burst if rate_limit_burst is not None else rate_limit_rps
            self._bucket = TokenBucket(burst, rate_limit_rps, clock=clock)
        self._reload_breaker = CircuitBreaker(
            failure_threshold=breaker_failure_threshold,
            reset_timeout_s=breaker_reset_s,
            clock=clock,
            on_state_change=self._on_breaker_transition,
        )
        self.metrics.set_breaker_state_provider(lambda: self._reload_breaker.state)

    def _on_breaker_transition(self, old_state: str, new_state: str) -> None:
        log = _LOG.warning if new_state != BREAKER_CLOSED else _LOG.info
        log("model-reload circuit breaker: %s -> %s", old_state, new_state)
        self.metrics.observe_breaker_transition(old_state, new_state)

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Load the model (with retries), start the batcher, bind the listener.

        Startup is the one sanctioned place the event loop may block on
        model-file I/O (nothing is being served yet); the path is on the
        ``[tool.repolint.concurrency]`` allow-blocking list.
        """
        if self._server is not None:
            raise LifecycleError("server is already started")
        tsan.register_loop()
        if not self.registry.loaded:
            retry = Retry(
                max_attempts=self.load_retries,
                base_delay_s=0.1,
                max_delay_s=1.0,
                seed=0,
                retry_on=(RegistryError, OSError, ValueError, KeyError),
                on_retry=lambda attempt, exc, delay: _LOG.warning(
                    "model load attempt %d failed (%s); retrying in %.2fs",
                    attempt, exc, delay,
                ),
            )
            retry.call(self.registry.load)
        model, version = self.registry.serving()
        self._serving = (
            BatchedGreedyEngine.from_model(
                model, max_batch_size=self.max_batch_size
            ),
            version,
        )
        self.metrics.set_cache_stats_provider(self.registry.cache_stats)
        self._batcher = MicroBatcher(
            self._select_batch,
            max_batch_size=self.max_batch_size,
            max_latency_ms=self.max_latency_ms,
            max_queue_depth=self.max_queue_depth,
            watchdog_timeout_ms=self.watchdog_timeout_ms,
            clock=self._clock,
            metrics=self.metrics,
        )
        await self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` to the real one."""
        if self._server is None or not self._server.sockets:
            raise LifecycleError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def stop(self) -> None:
        """Graceful drain: stop accepting, flush queued requests, close.

        After the batcher drain resolves every queued future, in-flight
        connection handlers get a bounded ``io_timeout_s`` window to write
        their responses before any stragglers are cancelled — a SIGTERM
        under concurrent load must not drop accepted requests.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            # Internal queue drain, not socket flow control: bounded by the
            # flush loop's own latency budget.
            await self._batcher.drain()  # repolint: disable=RES801
            self._batcher = None
        current = asyncio.current_task()
        lingering = {
            task
            for task in self._connections
            if task is not current and not task.done()
        }
        if lingering:
            await asyncio.wait(lingering, timeout=self.io_timeout_s)
            for task in lingering:
                if not task.done():
                    task.cancel()

    async def run(self, poll_interval_s: float = 0.1) -> None:
        """Serve until SIGINT/SIGTERM, then drain and return.

        Reuses the crash-safe training path's :class:`GracefulShutdown`:
        the first signal sets a flag, this loop notices it within
        ``poll_interval_s`` and winds the server down without dropping
        queued requests.
        """
        with GracefulShutdown(action="draining in-flight requests") as stop:
            await self.start()
            try:
                while not stop():
                    await asyncio.sleep(poll_interval_s)
            finally:
                await self.stop()

    # -- inference ------------------------------------------------------
    def _select_batch(
        self, payloads: list[np.ndarray]
    ) -> list[tuple[tuple[int, ...], ModelVersion]]:
        """The micro-batcher's handler: one lockstep engine pass.

        Reads the ``(engine, version)`` pair exactly once and tags every
        result with the version that computed it, so the response a
        request eventually receives can never be labeled with a model
        version that was hot-swapped in after its batch ran.
        """
        assert self._serving is not None
        engine, version = self._serving
        return [
            (subset, version)
            for subset in engine.select_representations(payloads)
        ]

    # -- HTTP plumbing --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            if task is not None:
                self._connections.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            response = await self._handle_request(reader)
        except (_BadRequest, json.JSONDecodeError) as exc:
            self.metrics.observe_error()
            response = _json_response(400, {"error": str(exc)})
        except _DROPPED_CONNECTION_ERRORS:
            self.metrics.observe_dropped_connection()
            _LOG.debug("client connection dropped mid-request", exc_info=True)
            writer.close()
            return
        except Exception as exc:  # never kill the accept loop on one request
            _LOG.exception("unhandled error while serving a request")
            self.metrics.observe_error()
            response = _json_response(500, {"error": str(exc)})
        status, content_type, body, extra_headers = response
        header_lines = "".join(
            f"{name}: {value}\r\n" for name, value in extra_headers
        )
        try:
            writer.write(
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{header_lines}"
                f"Connection: close\r\n\r\n".encode("ascii")
                + body
            )
            await asyncio.wait_for(writer.drain(), self.io_timeout_s)
        except _DROPPED_CONNECTION_ERRORS:
            self.metrics.observe_dropped_connection()
            _LOG.debug("client connection dropped mid-response", exc_info=True)
        finally:
            writer.close()

    async def _handle_request(self, reader: asyncio.StreamReader) -> _Response:
        raw_line = await asyncio.wait_for(reader.readline(), self.io_timeout_s)
        request_line = raw_line.decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), self.io_timeout_s)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > _MAX_BODY_BYTES:
            return _json_response(413, {"error": "request body too large"})
        raw = (
            await asyncio.wait_for(reader.readexactly(length), self.io_timeout_s)
            if length
            else b""
        )

        if path == "/healthz" and method == "GET":
            return self._handle_healthz()
        if path == "/metrics" and method == "GET":
            return _Response(
                200, "text/plain; version=0.0.4", self.metrics.render().encode()
            )
        if path == "/select" and method == "POST":
            return await self._handle_select(raw)
        if path == "/reload" and method == "POST":
            return await self._handle_reload()
        if path in ("/select", "/reload", "/healthz", "/metrics"):
            return _json_response(405, {"error": f"{method} not allowed on {path}"})
        return _json_response(404, {"error": f"unknown path {path}"})

    # -- endpoints ------------------------------------------------------
    def _handle_healthz(self) -> _Response:
        # Report the version requests are actually served with (the
        # snapshot _select_batch reads), not the registry's — during a
        # reload the two can briefly differ.
        serving = self._serving
        version = serving[1] if serving is not None else self.registry.version
        batcher_alive = self._batcher is not None and self._batcher.running
        breaker_state = self._reload_breaker.state
        if not batcher_alive:
            status_text = "unavailable"
        elif breaker_state != BREAKER_CLOSED:
            status_text = "degraded"
        else:
            status_text = "ok"
        return _json_response(
            200 if batcher_alive else 503,
            {
                "status": status_text,
                "model_version": version.name,
                "n_features": version.n_features,
                "batcher_running": batcher_alive,
                "breaker": breaker_state,
            },
        )

    async def _handle_reload(self) -> _Response:
        """Rescan the registry and hot-swap off the event loop.

        The rescan does model-file I/O (manifest reads, checksum passes,
        ``np.load``), so it runs in the default executor — requests keep
        flowing on the loop while it works; the registry's swap lock
        makes the executor-side publication safe.  The engine rebind back
        on the loop publishes one ``(engine, version)`` tuple, so batch
        flushes interleaved with the reload stay version-consistent.
        """
        if not self._reload_breaker.allow():
            return _json_response(
                503,
                {
                    "error": "model reload circuit is open; serving last-good model",
                    "breaker": self._reload_breaker.state,
                    "model_version": self.registry.version.name,
                },
                headers=(
                    _retry_after_header(self._reload_breaker.reset_timeout_s),
                ),
            )
        skips_before = self.registry.skip_count()
        loop = asyncio.get_running_loop()
        try:
            swapped = await loop.run_in_executor(None, self.registry.refresh)
        except Exception as exc:
            _LOG.exception("model reload failed")
            self._reload_breaker.record_failure()
            self.metrics.observe_error()
            return _json_response(
                500,
                {
                    "error": f"model reload failed: {exc}",
                    "breaker": self._reload_breaker.state,
                    "model_version": self.registry.version.name,
                },
            )
        if self.registry.skip_count() > skips_before:
            # A published candidate failed verification: a corruption
            # signal even when an older last-good version keeps serving.
            self._reload_breaker.record_failure()
        else:
            self._reload_breaker.record_success()
        if swapped:
            # One consistent snapshot, one atomic rebind: batches flushed
            # after this line run — and are labeled with — the new pair.
            model, version = self.registry.serving()
            self._serving = (
                BatchedGreedyEngine.from_model(
                    model, max_batch_size=self.max_batch_size
                ),
                version,
            )
        return _json_response(
            200,
            {
                "swapped": swapped,
                "model_version": self.registry.version.name,
                "breaker": self._reload_breaker.state,
                "skipped": [
                    {"path": str(path), "reason": reason}
                    for path, reason in self.registry.recent_skips()
                ],
            },
        )

    async def _handle_select(self, raw: bytes) -> _Response:
        start = self._clock()
        if self._bucket is not None and not self._bucket.try_acquire():
            self.metrics.observe_shed("rate_limit")
            return _json_response(
                429,
                {"error": "rate limit exceeded"},
                headers=(_retry_after_header(self._bucket.retry_after_s()),),
            )
        payload = json.loads(raw.decode("utf-8")) if raw else {}
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        deadline = self._request_deadline(payload)
        representation = self._parse_task(payload)
        assert self._batcher is not None
        try:
            if deadline is not None:
                # Hard server-side bound even if the request never reaches
                # a gather point (e.g. the flush loop is wedged): the
                # batcher's own expiry checks normally fire first.
                subset, version = await asyncio.wait_for(
                    self._batcher.submit(representation, deadline=deadline),
                    deadline.remaining() + 0.05,
                )
            else:
                subset, version = await self._batcher.submit(representation)
        except QueueFull as exc:
            return _json_response(
                429,
                {"error": str(exc)},
                headers=(_retry_after_header(exc.retry_after_s),),
            )
        except DeadlineExceeded as exc:
            return _json_response(504, {"error": str(exc)})
        except (TimeoutError, asyncio.TimeoutError):
            self.metrics.observe_deadline_exceeded()
            return _json_response(
                504,
                {"error": "request deadline expired awaiting a batch slot"},
            )
        except BatcherStalled as exc:
            return _json_response(503, {"error": str(exc)})
        except BatcherClosed:
            return _json_response(503, {"error": "server is draining"})
        latency_ms = (self._clock() - start) * 1000.0
        # `version` rode along with the subset from _select_batch: it is
        # the version whose engine computed this result, not whatever the
        # registry holds now — a reload during the await cannot mislabel
        # the response (the TOCTOU repolint's ASYNC904 exists to catch).
        return _json_response(
            200,
            {
                "subset": [int(i) for i in subset],
                "n_selected": len(subset),
                "n_features": version.n_features,
                "model_version": version.name,
                "latency_ms": round(latency_ms, 3),
            },
        )

    def _request_deadline(self, payload: dict) -> Deadline | None:
        """The request's latency budget: min(server cap, client ask)."""
        budget_ms = self.request_timeout_ms
        client_ms = payload.get("timeout_ms")
        if client_ms is not None:
            if not isinstance(client_ms, (int, float)) or client_ms <= 0:
                raise _BadRequest("'timeout_ms' must be a positive number")
            budget_ms = (
                float(client_ms)
                if budget_ms is None
                else min(budget_ms, float(client_ms))
            )
        if budget_ms is None:
            return None
        return Deadline.after_ms(budget_ms, clock=self._clock)

    def _parse_task(self, payload: dict) -> np.ndarray:
        """Representation from the request: precomputed, or raw task data."""
        if "representation" in payload:
            rep = np.asarray(payload["representation"], dtype=np.float64)
            if rep.ndim != 1:
                raise _BadRequest("'representation' must be a flat number list")
            return rep
        if "features" in payload and "labels" in payload:
            try:
                features = np.asarray(payload["features"], dtype=np.float64)
                labels = np.asarray(payload["labels"], dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise _BadRequest(f"non-numeric task data: {exc}") from exc
            if features.ndim != 2:
                raise _BadRequest("'features' must be a 2-D number matrix")
            if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
                raise _BadRequest("'labels' must align with the feature rows")
            return self.registry.representation(features, labels)
        raise _BadRequest(
            "request needs either 'representation' or 'features'+'labels'"
        )


def _json_response(
    status: int,
    payload: dict[str, Any],
    headers: tuple[tuple[str, str], ...] = (),
) -> _Response:
    return _Response(
        status, "application/json", json.dumps(payload).encode("utf-8"), headers
    )
