"""Async selection server: ``/select``, ``/healthz``, ``/metrics``.

A deliberately small HTTP/1.1 server over raw ``asyncio`` streams — the
runtime dependency budget is numpy-only, so there is no web framework to
lean on, and the protocol surface (three JSON endpoints, short-lived
connections) does not justify one.

Request path::

    client ──POST /select──▶ handler ──▶ registry.representation (LRU)
                                     ──▶ MicroBatcher.submit ──┐
                                                               ▼  flush on
                                          BatchedGreedyEngine ◀┘  size/time
                                                │
    client ◀──{"subset": [...]}─────────────────┘

Endpoints:

* ``POST /select`` — body ``{"features": [[...]], "labels": [...]}`` (raw
  task data; the representation is computed and LRU-cached) or
  ``{"representation": [...]}`` (precomputed |Pearson| vector).  Response:
  the selected subset, the serving model version and the request latency.
* ``GET /healthz`` — liveness + the served model version.
* ``GET /metrics`` — Prometheus-style text (latency p50/p99, queue depth,
  batch-size distribution, cache hit rate).
* ``POST /reload`` — rescan the registry root and hot-swap to a newer
  valid model version (no restart; corrupt candidates are skipped).

Shutdown is graceful and reuses the training CLI's signal discipline
(:class:`repro.io.lifecycle.GracefulShutdown`): on SIGTERM/SIGINT the
listener stops accepting, the micro-batcher drains every queued request,
then the process exits.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable

import numpy as np

from repro.io.lifecycle import GracefulShutdown
from repro.serve.batcher import BatcherClosed, MicroBatcher
from repro.serve.engine import BatchedGreedyEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ModelRegistry

__all__ = ["SelectionServer"]

_MAX_BODY_BYTES = 8 << 20  # a request is one task's data; 8 MiB is generous
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(ValueError):
    """Client-side request problem → HTTP 400."""


class SelectionServer:
    """Serve feature-selection requests over a micro-batched engine."""

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch_size: int = 64,
        max_latency_ms: float = 5.0,
        metrics: ServeMetrics | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.max_batch_size = max_batch_size
        self.max_latency_ms = max_latency_ms
        self.metrics = metrics or ServeMetrics()
        self._clock = clock
        self._engine: BatchedGreedyEngine | None = None
        self._batcher: MicroBatcher | None = None
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Load the model, start the batcher, bind the listener."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        if self.registry._model is None:
            self.registry.load()
        self._engine = BatchedGreedyEngine.from_model(
            self.registry.model, max_batch_size=self.max_batch_size
        )
        self.metrics.set_cache_stats_provider(self.registry.cache_stats)
        self._batcher = MicroBatcher(
            self._select_batch,
            max_batch_size=self.max_batch_size,
            max_latency_ms=self.max_latency_ms,
            clock=self._clock,
            metrics=self.metrics,
        )
        await self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` to the real one."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def stop(self) -> None:
        """Graceful drain: stop accepting, flush queued requests, close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            await self._batcher.drain()
            self._batcher = None

    async def run(self, poll_interval_s: float = 0.1) -> None:
        """Serve until SIGINT/SIGTERM, then drain and return.

        Reuses the crash-safe training path's :class:`GracefulShutdown`:
        the first signal sets a flag, this loop notices it within
        ``poll_interval_s`` and winds the server down without dropping
        queued requests.
        """
        with GracefulShutdown(action="draining in-flight requests") as stop:
            await self.start()
            try:
                while not stop():
                    await asyncio.sleep(poll_interval_s)
            finally:
                await self.stop()

    # -- inference ------------------------------------------------------
    def _select_batch(self, payloads: list[np.ndarray]) -> list[tuple[int, ...]]:
        """The micro-batcher's handler: one lockstep engine pass."""
        assert self._engine is not None
        return self._engine.select_representations(payloads)

    # -- HTTP plumbing --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, content_type, body = await self._handle_request(reader)
        except (_BadRequest, json.JSONDecodeError) as exc:
            self.metrics.observe_error()
            status, content_type, body = _json_response(400, {"error": str(exc)})
        except (asyncio.IncompleteReadError, ConnectionError, TimeoutError):
            writer.close()
            return
        except Exception as exc:  # never kill the accept loop on one request
            self.metrics.observe_error()
            status, content_type, body = _json_response(500, {"error": str(exc)})
        try:
            writer.write(
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii")
                + body
            )
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > _MAX_BODY_BYTES:
            return _json_response(413, {"error": "request body too large"})
        raw = await reader.readexactly(length) if length else b""

        if path == "/healthz" and method == "GET":
            return self._handle_healthz()
        if path == "/metrics" and method == "GET":
            return 200, "text/plain; version=0.0.4", self.metrics.render().encode()
        if path == "/select" and method == "POST":
            return await self._handle_select(raw)
        if path == "/reload" and method == "POST":
            return self._handle_reload()
        if path in ("/select", "/reload", "/healthz", "/metrics"):
            return _json_response(405, {"error": f"{method} not allowed on {path}"})
        return _json_response(404, {"error": f"unknown path {path}"})

    # -- endpoints ------------------------------------------------------
    def _handle_healthz(self) -> tuple[int, str, bytes]:
        version = self.registry.version
        return _json_response(
            200,
            {
                "status": "ok",
                "model_version": version.name,
                "n_features": version.n_features,
            },
        )

    def _handle_reload(self) -> tuple[int, str, bytes]:
        swapped = self.registry.refresh()
        if swapped:
            # Rebind the engine to the new agent; the single-threaded event
            # loop makes the swap atomic w.r.t. batch flushes.
            self._engine = BatchedGreedyEngine.from_model(
                self.registry.model, max_batch_size=self.max_batch_size
            )
        return _json_response(
            200,
            {
                "swapped": swapped,
                "model_version": self.registry.version.name,
                "skipped": [
                    {"path": str(path), "reason": reason}
                    for path, reason in self.registry.skipped
                ],
            },
        )

    async def _handle_select(self, raw: bytes) -> tuple[int, str, bytes]:
        start = self._clock()
        payload = json.loads(raw.decode("utf-8")) if raw else {}
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        representation = self._parse_task(payload)
        assert self._batcher is not None
        try:
            subset = await self._batcher.submit(representation)
        except BatcherClosed:
            return _json_response(503, {"error": "server is draining"})
        latency_ms = (self._clock() - start) * 1000.0
        return _json_response(
            200,
            {
                "subset": [int(i) for i in subset],
                "n_selected": len(subset),
                "n_features": self.registry.version.n_features,
                "model_version": self.registry.version.name,
                "latency_ms": round(latency_ms, 3),
            },
        )

    def _parse_task(self, payload: dict) -> np.ndarray:
        """Representation from the request: precomputed, or raw task data."""
        if "representation" in payload:
            rep = np.asarray(payload["representation"], dtype=np.float64)
            if rep.ndim != 1:
                raise _BadRequest("'representation' must be a flat number list")
            return rep
        if "features" in payload and "labels" in payload:
            try:
                features = np.asarray(payload["features"], dtype=np.float64)
                labels = np.asarray(payload["labels"], dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise _BadRequest(f"non-numeric task data: {exc}") from exc
            if features.ndim != 2:
                raise _BadRequest("'features' must be a 2-D number matrix")
            if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
                raise _BadRequest("'labels' must align with the feature rows")
            return self.registry.representation(features, labels)
        raise _BadRequest(
            "request needs either 'representation' or 'features'+'labels'"
        )


def _json_response(status: int, payload: dict[str, Any]) -> tuple[int, str, bytes]:
    return status, "application/json", json.dumps(payload).encode("utf-8")
