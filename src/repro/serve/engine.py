"""Batched greedy-inference engine: the serving wrapper over the kernel.

The numerical lockstep kernel lives in :mod:`repro.core.batch` (the layer
contract places ``serve`` above ``core``, so the math the facade also
needs sits below both).  This engine adds what serving needs around it:

* binding to a concrete trained agent + environment config +
  feature-correlation matrix (usually straight from a
  :class:`~repro.serve.registry.ModelRegistry` model via
  :meth:`BatchedGreedyEngine.from_model`);
* input validation against the agent's state dimension — a representation
  of the wrong feature count fails fast with a clear message instead of a
  shape error three layers down;
* chunking: arbitrarily large request batches are split into lockstep
  groups of at most ``max_batch_size`` episodes, keeping the
  ``(B, state_dim)`` activations cache-sized.

Results are bit-exact with sequential :meth:`repro.core.pafeat.PAFeat.select`
per task (see :mod:`repro.core.batch` for the exactness argument).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.batch import batched_greedy_subsets
from repro.core.config import EnvConfig
from repro.core.state import N_SCAN_SCALARS
from repro.io.resilience import Deadline, DeadlineExceeded

if TYPE_CHECKING:
    from repro.core.pafeat import PAFeat
    from repro.data.tasks import Task
    from repro.rl.agent import DuelingDQNAgent


class BatchedGreedyEngine:
    """Run many unseen tasks' greedy episodes per Q-network forward."""

    def __init__(
        self,
        agent: "DuelingDQNAgent",
        env_config: EnvConfig,
        feature_corr: np.ndarray | None = None,
        max_batch_size: int = 64,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self.agent = agent
        self.env_config = env_config
        self.feature_corr = feature_corr
        self.max_batch_size = max_batch_size
        # state_dim = 2 m + N_SCAN_SCALARS, so the agent pins the feature
        # count every request must match.
        n_features, remainder = divmod(agent.state_dim - N_SCAN_SCALARS, 2)
        if remainder or n_features < 1:
            raise ValueError(
                f"agent state dimension {agent.state_dim} does not encode a "
                f"feature-selection state"
            )
        self.n_features = n_features

    @classmethod
    def from_model(
        cls, model: "PAFeat", max_batch_size: int = 64
    ) -> "BatchedGreedyEngine":
        """Engine bound to a fitted/loaded model's inference context."""
        return cls(
            model.inference_agent(),
            model.config.env,
            feature_corr=model._feature_corr,
            max_batch_size=max_batch_size,
        )

    def select_representations(
        self,
        representations: Sequence[np.ndarray],
        deadline: Deadline | None = None,
    ) -> list[tuple[int, ...]]:
        """Greedy subsets for task-representation vectors, in input order.

        An optional :class:`~repro.io.resilience.Deadline` is checked
        between lockstep chunks, so an oversized request batch aborts with
        :class:`~repro.io.resilience.DeadlineExceeded` at the next chunk
        boundary instead of monopolising the event loop past its budget.
        """
        reps = [
            np.asarray(rep, dtype=np.float64).reshape(-1)
            for rep in representations
        ]
        for index, rep in enumerate(reps):
            if rep.shape[0] != self.n_features:
                raise ValueError(
                    f"representation {index} has {rep.shape[0]} features; "
                    f"this engine's agent serves {self.n_features}-feature tasks"
                )
        results: list[tuple[int, ...]] = []
        for start in range(0, len(reps), self.max_batch_size):
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"batched selection exceeded its deadline after "
                    f"{len(results)}/{len(reps)} tasks"
                )
            results.extend(
                batched_greedy_subsets(
                    self.agent,
                    reps[start : start + self.max_batch_size],
                    self.env_config,
                    feature_corr=self.feature_corr,
                )
            )
        return results

    def select_tasks(self, tasks: Iterable["Task"]) -> dict[str, tuple[int, ...]]:
        """Greedy subsets for :class:`~repro.data.tasks.Task` objects."""
        from repro.data.stats import pearson_representation

        ordered = list(tasks)
        subsets = self.select_representations(
            [pearson_representation(task.features, task.labels) for task in ordered]
        )
        return {task.name: subset for task, subset in zip(ordered, subsets)}
