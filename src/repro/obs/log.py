"""Structured logging for the runtime components (serve, rollout, io).

Every component logs through a :class:`StructuredLogger` obtained from
:func:`get_logger`.  The logger wraps a stdlib ``logging.Logger`` named
``repro.<component>`` — handlers, levels, propagation and pytest's
``caplog`` all keep working — and stamps each record with:

* ``component`` — the dotted component name (``serve.batcher``, ...);
* ``run_id`` — optional correlation id threaded from the entry point;
* ``fields`` — arbitrary structured key/values passed per call.

Default output is unchanged stdlib formatting (the fields ride along on
the record for any formatter that wants them); :func:`configure_json`
swaps in a JSON-lines formatter for log collectors.

Bare ``print(...)`` is the anti-pattern this replaces: it is invisible
to handlers, levels and collectors.  repolint rule OBS1101 bans it in
``src/repro`` outside the CLI boundary.
"""

from __future__ import annotations

import json
import logging
from typing import IO, Any

__all__ = ["JsonFormatter", "StructuredLogger", "configure_json", "get_logger"]


class StructuredLogger:
    """%-style logging with component/run-id context and keyword fields.

    ``logger.warning("retry %d failed", n, reason=str(exc))`` logs the
    formatted message through stdlib logging while attaching
    ``{"reason": ...}`` as structured data on the record.
    """

    def __init__(
        self,
        component: str,
        run_id: str | None = None,
        logger: logging.Logger | None = None,
    ) -> None:
        self.component = component
        self.run_id = run_id
        self._logger = logger or logging.getLogger(f"repro.{component}")

    def bind(self, run_id: str) -> "StructuredLogger":
        """A copy of this logger stamped with a correlation id."""
        return StructuredLogger(self.component, run_id=run_id, logger=self._logger)

    # -- level methods --------------------------------------------------
    def debug(self, msg: str, *args: object, **fields: Any) -> None:
        self._log(logging.DEBUG, msg, args, fields)

    def info(self, msg: str, *args: object, **fields: Any) -> None:
        self._log(logging.INFO, msg, args, fields)

    def warning(self, msg: str, *args: object, **fields: Any) -> None:
        self._log(logging.WARNING, msg, args, fields)

    def error(self, msg: str, *args: object, **fields: Any) -> None:
        self._log(logging.ERROR, msg, args, fields)

    def exception(self, msg: str, *args: object, **fields: Any) -> None:
        fields.setdefault("exc_info", True)
        self._log(logging.ERROR, msg, args, fields)

    def isEnabledFor(self, level: int) -> bool:
        return self._logger.isEnabledFor(level)

    # -- plumbing -------------------------------------------------------
    def _log(
        self,
        level: int,
        msg: str,
        args: tuple[object, ...],
        fields: dict[str, Any],
    ) -> None:
        if not self._logger.isEnabledFor(level):
            return
        exc_info = fields.pop("exc_info", None)
        extra = {
            "component": self.component,
            "run_id": self.run_id,
            "fields": fields,
        }
        self._logger.log(
            level, msg, *args, exc_info=exc_info, extra=extra, stacklevel=3
        )


def get_logger(component: str, run_id: str | None = None) -> StructuredLogger:
    """The component's structured logger (``repro.<component>`` underneath)."""
    return StructuredLogger(component, run_id=run_id)


class JsonFormatter(logging.Formatter):
    """One JSON object per record: level, component, run id, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        component = getattr(record, "component", None)
        if component is not None:
            payload["component"] = component
        run_id = getattr(record, "run_id", None)
        if run_id is not None:
            payload["run_id"] = run_id
        fields = getattr(record, "fields", None)
        if fields:
            payload["fields"] = fields
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure_json(
    stream: IO[str] | None = None, level: int = logging.INFO
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``repro`` logger tree.

    Returns the handler so callers (the CLI, tests) can detach it again
    with ``logging.getLogger("repro").removeHandler(handler)``.
    """
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter())
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(level)
    return handler
