"""Lightweight span/trace API emitting JSONL, deterministic by design.

A :class:`Tracer` writes one JSON object per finished span to a sink
(path or file-like).  Three properties matter more than feature count:

* **Injectable clock.**  All timing flows through the ``clock`` callable
  (default :func:`repro.obs.clock.monotonic`) — obs is the single
  sanctioned clock boundary, and tests drive traces with fake clocks.
* **Deterministic identity.**  Span ids are sequential integers minted
  under a lock; the trace id is the caller-supplied ``run_id``.  No
  randomness, no wall-clock ids — two runs of the same workload produce
  structurally identical traces (only durations differ), and tracing
  consumes zero RNG (the non-interference contract).
* **Near-zero cost when disabled.**  :data:`NULL_TRACER` hands out one
  shared no-op span; a disabled ``tracer.span(...)`` is an attribute
  check and a constant return, cheap enough to leave on hot paths.

Cross-process spans: workers cannot write to the coordinator's sink, so
they *measure* (two clock reads) and ship durations home inside
:class:`~repro.rollout.plan.EpisodeResult`; the coordinator replays them
into the trace with :meth:`Tracer.emit` in plan order, keeping the trace
as deterministic as the merge barrier itself.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Mapping

from repro.analysis import tsan
from repro.obs.clock import Clock, monotonic

__all__ = ["NULL_TRACER", "Span", "Tracer", "read_trace"]


class Span:
    """One in-flight span; a context manager that reports to its tracer."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "attrs", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: Mapping[str, Any],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = dict(attrs)
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = self.tracer.clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = self.tracer.clock()
        self.tracer._record(self, self._start, end - self._start)


class _NullSpan:
    """The shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    span_id = 0
    parent_id: int | None = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Writes finished spans as JSONL; safe to share across threads."""

    def __init__(
        self,
        sink: str | Path | IO[str] | None,
        run_id: str = "run",
        clock: Clock = monotonic,
    ) -> None:
        self.run_id = run_id
        self.clock = clock
        self.enabled = sink is not None
        self._lock = tsan.TrackedLock("obs.trace")
        self._next_id = 1
        self._owns_sink = False
        self._sink: IO[str] | None = None
        if isinstance(sink, (str, Path)):
            path = Path(sink)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = path.open("a", encoding="utf-8")
            self._owns_sink = True
        elif sink is not None:
            self._sink = sink
        # Offsets in the emitted records are relative to the tracer epoch,
        # so traces are small, diffable numbers rather than raw monotonic
        # readings whose origin is platform-defined.
        self._epoch = self.clock() if self.enabled else 0.0

    # -- span lifecycle -------------------------------------------------
    def span(
        self,
        name: str,
        parent: "Span | _NullSpan | int | None" = None,
        **attrs: Any,
    ) -> "Span | _NullSpan":
        """Open a span; use as ``with tracer.span("fill") as s: ...``."""
        if not self.enabled:
            return _NULL_SPAN
        parent_id = parent.span_id if isinstance(parent, (Span, _NullSpan)) else parent
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, span_id, parent_id or None, name, attrs)

    def emit(
        self,
        name: str,
        duration_s: float,
        parent: "Span | _NullSpan | int | None" = None,
        **attrs: Any,
    ) -> int:
        """Record a span measured elsewhere (e.g. in a rollout worker).

        The span has no start offset — only a duration — because the
        measuring process's clock is not comparable to this one's.
        Returns the minted span id (0 when disabled).
        """
        if not self.enabled:
            return 0
        parent_id = parent.span_id if isinstance(parent, (Span, _NullSpan)) else parent
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        record = {
            "trace": self.run_id,
            "span": span_id,
            "parent": parent_id or None,
            "name": name,
            "start_s": None,
            "duration_s": round(float(duration_s), 9),
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)
        return span_id

    def _record(self, span: Span, start: float, duration: float) -> None:
        if not self.enabled:
            return
        record = {
            "trace": self.run_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start_s": round(start - self._epoch, 9),
            "duration_s": round(duration, 9),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._write(record)

    def _write(self, record: dict[str, Any]) -> None:
        sink = self._sink
        if sink is None:
            return
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            tsan.note(self, "_sink", write=True)
            sink.write(line + "\n")

    def flush(self) -> None:
        if self._sink is not None:
            with self._lock:
                self._sink.flush()

    def close(self) -> None:
        if self._sink is not None and self._owns_sink:
            with self._lock:
                self._sink.close()
                self._sink = None
        self.enabled = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: The module-wide disabled tracer: hand this to components by default so
#: instrumentation points need no ``if tracer is not None`` forks.
NULL_TRACER = Tracer(None)


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL trace file back into a list of span records."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
