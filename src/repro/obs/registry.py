"""Thread-safe, label-aware metrics with Prometheus text exposition.

One :class:`MetricsRegistry` per process (or per server) owns every
:class:`Counter`, :class:`Gauge` and :class:`Histogram`; ``render()``
emits the whole registry as Prometheus text-format 0.0.4 so ``/metrics``
can serve a single unified page for the serve stack, the model registry
and anything else that registers.

Design points:

* **Label-aware series.**  A metric with ``labelnames=("reason",)`` holds
  one numeric series per observed label-value tuple; exposition escapes
  label values per the Prometheus spec (``\\`` → ``\\\\``, ``"`` → ``\\"``,
  newline → ``\\n``).
* **Real locks.**  All series maps mutate under a
  :class:`repro.analysis.tsan.TrackedLock`, so the runtime thread
  sanitizer sees the guard and cross-thread scrapes (the server reads
  from the event loop while reload work runs in executor threads) are
  provably serialized.
* **Collectors.**  ``register_collector`` accepts a callable returning
  extra exposition lines at scrape time — how provider-backed values
  (circuit-breaker state, cache hit rate) and the dual-view
  :class:`~repro.serve.metrics.LatencyHistogram` join the unified page
  without copying state on every observation.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Iterable, Mapping, Sequence

from repro.analysis import tsan

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
]

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds): micro to minutes, log-ish spaced.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, math.inf,
)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format spec."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if value == int(value) and math.isfinite(value):
        return str(int(value))
    return repr(value)


def _bucket_label(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else f"{bound:g}"


class _Metric:
    """Shared machinery: named, typed, label-aware series under one lock."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: tsan.TrackedLock,
    ) -> None:
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_PATTERN.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._series: dict[tuple[str, ...], float] = {}

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def value(self, **labels: object) -> float:
        """Current value of one series (0.0 if never touched)."""
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def series(self) -> dict[tuple[str, ...], float]:
        """Snapshot of every series, keyed by label-value tuple."""
        with self._lock:
            return dict(self._series)

    def touch(self, **labels: object) -> None:
        """Materialise a series at 0 so it renders before first increment."""
        key = self._key(labels)
        with self._lock:
            tsan.note(self, "_series", write=True)
            self._series.setdefault(key, 0.0)

    # -- exposition -----------------------------------------------------
    def _sample_line(self, key: tuple[str, ...], value: float) -> str:
        if not self.labelnames:
            return f"{self.name} {_format_value(value)}"
        labels = ",".join(
            f'{name}="{escape_label_value(text)}"'
            for name, text in zip(self.labelnames, key)
        )
        return f"{self.name}{{{labels}}} {_format_value(value)}"

    def render(self) -> list[str]:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        with self._lock:
            items = sorted(self._series.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(self._sample_line(key, value))
        return lines


class Counter(_Metric):
    """Monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        key = self._key(labels)
        with self._lock:
            tsan.note(self, "_series", write=True)
            self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(_Metric):
    """A value that can go up and down (queue depth, breaker state)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            tsan.note(self, "_series", write=True)
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            tsan.note(self, "_series", write=True)
            self._series[key] = self._series.get(key, 0.0) + amount

    def set_max(self, value: float, **labels: object) -> None:
        """Raise the gauge to ``value`` if higher (peak tracking)."""
        key = self._key(labels)
        with self._lock:
            tsan.note(self, "_series", write=True)
            if value > self._series.get(key, 0.0):
                self._series[key] = float(value)


class _HistogramSeries:
    __slots__ = ("counts", "total", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.total = 0
        self.sum = 0.0


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus ``le`` convention)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: tsan.TrackedLock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        if not buckets:
            raise ValueError("need at least one bucket boundary")
        if list(buckets) != sorted(buckets):
            raise ValueError("bucket boundaries must be ascending")
        bounds = tuple(float(b) for b in buckets)
        if not math.isinf(bounds[-1]):
            bounds = bounds + (math.inf,)
        self.buckets = bounds
        self._histograms: dict[tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            tsan.note(self, "_histograms", write=True)
            series = self._histograms.get(key)
            if series is None:
                series = self._histograms[key] = _HistogramSeries(
                    len(self.buckets)
                )
            series.total += 1
            series.sum += value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series.counts[index] += 1
                    break

    def count(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._histograms.get(key)
            return 0 if series is None else series.total

    def sum_value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._histograms.get(key)
            return 0.0 if series is None else series.sum

    def series(self) -> dict[tuple[str, ...], float]:
        """Per-label observation counts (the histogram ``_count`` view)."""
        with self._lock:
            return {
                key: float(series.total)
                for key, series in self._histograms.items()
            }

    def snapshot(self, **labels: object) -> dict[str, object]:
        key = self._key(labels)
        with self._lock:
            series = self._histograms.get(key)
            counts = [0] * len(self.buckets) if series is None else list(series.counts)
            total = 0 if series is None else series.total
            total_sum = 0.0 if series is None else series.sum
        return {
            "count": total,
            "sum": total_sum,
            "buckets": {
                _bucket_label(bound): count
                for bound, count in zip(self.buckets, counts)
            },
        }

    def render(self) -> list[str]:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        with self._lock:
            items = sorted(
                (key, list(series.counts), series.total, series.sum)
                for key, series in self._histograms.items()
            )
        for key, counts, total, total_sum in items:
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                label_parts = [
                    f'{name}="{escape_label_value(text)}"'
                    for name, text in zip(self.labelnames, key)
                ]
                label_parts.append(f'le="{_bucket_label(bound)}"')
                lines.append(
                    f"{self.name}_bucket{{{','.join(label_parts)}}} {cumulative}"
                )
            suffix = ""
            if key:
                labels = ",".join(
                    f'{name}="{escape_label_value(text)}"'
                    for name, text in zip(self.labelnames, key)
                )
                suffix = f"{{{labels}}}"
            lines.append(f"{self.name}_sum{suffix} {_format_value(total_sum)}")
            lines.append(f"{self.name}_count{suffix} {total}")
        return lines


class MetricsRegistry:
    """Owns metrics and collectors; renders one unified exposition page."""

    def __init__(self) -> None:
        self._lock = tsan.TrackedLock("obs.registry")
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[[], Iterable[str]]] = []

    def _get_or_create(
        self, kind: type, name: str, factory: Callable[[], _Metric]
    ) -> _Metric:
        with self._lock:
            tsan.note(self, "_metrics", write=True)
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind.__name__.lower()}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        metric = self._get_or_create(
            Counter,
            name,
            lambda: Counter(
                name, help_text, labelnames, tsan.TrackedLock(f"obs.{name}")
            ),
        )
        assert isinstance(metric, Counter)
        self._check_labels(metric, labelnames)
        return metric

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        metric = self._get_or_create(
            Gauge,
            name,
            lambda: Gauge(
                name, help_text, labelnames, tsan.TrackedLock(f"obs.{name}")
            ),
        )
        assert isinstance(metric, Gauge)
        self._check_labels(metric, labelnames)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram,
            name,
            lambda: Histogram(
                name,
                help_text,
                labelnames,
                tsan.TrackedLock(f"obs.{name}"),
                buckets=buckets,
            ),
        )
        assert isinstance(metric, Histogram)
        self._check_labels(metric, labelnames)
        return metric

    @staticmethod
    def _check_labels(metric: _Metric, labelnames: Sequence[str]) -> None:
        if tuple(labelnames) != metric.labelnames:
            raise ValueError(
                f"metric {metric.name!r} already registered with labels "
                f"{metric.labelnames}, not {tuple(labelnames)}"
            )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def register_collector(self, collector: Callable[[], Iterable[str]]) -> None:
        """Add a scrape-time source of extra exposition lines."""
        with self._lock:
            tsan.note(self, "_collectors", write=True)
            self._collectors.append(collector)

    def render(self) -> str:
        """The whole registry as Prometheus text format (trailing newline)."""
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        for collector in collectors:
            lines.extend(collector())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-able view of every registered metric (not collectors)."""
        with self._lock:
            metrics = list(self._metrics.values())
        data: dict[str, dict[str, object]] = {}
        for metric in metrics:
            series = metric.series()
            if metric.labelnames:
                values: object = {
                    ",".join(key): value for key, value in sorted(series.items())
                }
            else:
                values = series.get((), 0.0)
            data[metric.name] = {"kind": metric.kind, "value": values}
        return data
