"""Unified observability: metrics registry, trace spans, telemetry, logs.

The obs layer is the one place the repro runtime is *watched* from —
shared by training (:meth:`repro.core.pafeat.PAFeat.fit`), the parallel
rollout engine (:mod:`repro.rollout`) and the serving stack
(:mod:`repro.serve`):

* :mod:`repro.obs.registry` — thread-safe, label-aware ``Counter`` /
  ``Gauge`` / ``Histogram`` with Prometheus text exposition; one
  :class:`MetricsRegistry` backs the server's ``/metrics`` page.
* :mod:`repro.obs.trace` — deterministic span/trace API writing JSONL,
  with cross-process span merge for rollout workers.
* :mod:`repro.obs.telemetry` — the per-episode/per-iteration training
  event stream plus the ``repro obs summarize`` report renderer.
* :mod:`repro.obs.log` — structured (JSON-capable) logging with
  component and run-id context.
* :mod:`repro.obs.profile` — phase timers feeding the benchmark-facing
  phase histograms.
* :mod:`repro.obs.clock` — the single sanctioned monotonic-clock
  boundary (repolint OBS1102); everything above takes an injectable
  clock for deterministic tests.

The whole layer is near-zero-cost when disabled and non-interfering by
contract: enabling telemetry/tracing changes no RNG stream and no
trainer state (see ARCHITECTURE §11 and ``benchmarks/bench_obs.py``).
"""

from repro.obs.clock import Clock, monotonic
from repro.obs.log import (
    JsonFormatter,
    StructuredLogger,
    configure_json,
    get_logger,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
)
from repro.obs.telemetry import (
    TelemetryWriter,
    read_events,
    render_run_report,
    summarize_events,
)
from repro.obs.trace import NULL_TRACER, Span, Tracer, read_trace

__all__ = [
    "Clock",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "NULL_TRACER",
    "PhaseProfiler",
    "Span",
    "StructuredLogger",
    "TelemetryWriter",
    "Tracer",
    "configure_json",
    "escape_label_value",
    "get_logger",
    "monotonic",
    "read_events",
    "read_trace",
    "render_run_report",
    "summarize_events",
]
