"""Phase profiling: timer context managers feeding phase histograms.

The hot paths identified by BENCH_rollout's stage fractions (plan /
execute / merge, plus the trainer's update phase) are timed through a
:class:`PhaseProfiler`: cumulative per-phase totals always, and — when a
:class:`~repro.obs.registry.MetricsRegistry` is attached — a
``repro_phase_seconds`` histogram labelled by phase that the benchmarks
consume.  All clock reads go through the injectable obs clock, so the
profiler is deterministic under a fake clock and adds nothing but two
clock reads per timed section.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.analysis import tsan
from repro.obs.clock import Clock, monotonic
from repro.obs.registry import Histogram, MetricsRegistry

__all__ = ["PHASE_BUCKETS", "PhaseProfiler"]

#: Histogram buckets (seconds) sized for rollout/update phase durations.
PHASE_BUCKETS: tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)


class PhaseProfiler:
    """Accumulates named-phase wall time; optionally exports histograms."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        clock: Clock = monotonic,
        metric_name: str = "repro_phase_seconds",
    ) -> None:
        self.clock = clock
        self._lock = tsan.TrackedLock("obs.profile")
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._histogram: Histogram | None = None
        if registry is not None:
            self._histogram = registry.histogram(
                metric_name,
                "Wall seconds per instrumented phase.",
                labelnames=("phase",),
                buckets=PHASE_BUCKETS,
            )

    def observe(self, phase: str, seconds: float) -> None:
        """Record a phase duration measured by the caller."""
        with self._lock:
            tsan.note(self, "_totals", write=True)
            self._totals[phase] = self._totals.get(phase, 0.0) + seconds
            self._counts[phase] = self._counts.get(phase, 0) + 1
        if self._histogram is not None:
            self._histogram.observe(seconds, phase=phase)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a with-block as one observation of ``name``."""
        start = self.clock()
        try:
            yield
        finally:
            self.observe(name, self.clock() - start)

    def totals(self) -> dict[str, float]:
        """Cumulative seconds per phase."""
        with self._lock:
            return dict(self._totals)

    def counts(self) -> dict[str, int]:
        """Observations per phase."""
        with self._lock:
            return dict(self._counts)

    def fractions(self) -> dict[str, float]:
        """Each phase's share of the total instrumented time (sums to 1)."""
        with self._lock:
            total = sum(self._totals.values())
            if total <= 0.0:
                return {phase: 0.0 for phase in self._totals}
            return {
                phase: seconds / total
                for phase, seconds in self._totals.items()
            }
