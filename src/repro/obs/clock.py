"""The observability layer's sanctioned clock boundary.

Determinism discipline (repolint RNG104 and its OBS1102 monotonic twin)
bans ad-hoc clock reads inside the deterministic packages: a timestamp
that leaks into control flow breaks bit-exact replay.  Timing for metrics,
traces and profiles is still wanted, so this module is the *single*
sanctioned place such reads happen.  Every obs primitive takes a
``clock`` callable defaulting to :func:`monotonic`, which makes two
things true at once:

* production code reads time in exactly one module, easy to audit; and
* tests and benchmarks inject a fake clock and get fully deterministic
  traces/telemetry (the non-interference contract is testable).

Only monotonic time is exposed — wall-clock timestamps stay banned
everywhere outside the CLI/experiment boundary.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "monotonic"]

#: Signature of an injectable time source (seconds, monotonic).
Clock = Callable[[], float]


def monotonic() -> float:
    """Monotonic seconds — the one production clock read in ``repro``."""
    return time.monotonic()
