"""Training telemetry: JSONL event stream plus the run-report summarizer.

``PAFeat.fit(telemetry=...)`` (and ``repro train --telemetry-dir``) wires
a :class:`TelemetryWriter` into the trainer; the trainer then emits one
structured event per committed episode and per finished iteration —
task id, progress quantile, reward, epsilon, loss, ITS visit counts,
reward-cache hit/miss counters and phase fractions — to
``events.jsonl`` in the telemetry directory.  ``repro obs summarize``
renders a run report from that log with :func:`summarize_events` /
:func:`render_run_report`, so a finished (or crashed) run can be
inspected without rerunning anything.

Non-interference contract: the writer consumes no RNG, never feeds back
into training state, and all its timing flows through the injectable obs
clock — a run with telemetry enabled is bit-identical to one without
(asserted by ``benchmarks/bench_obs.py``'s parity gate).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterable, Mapping

from repro.analysis import tsan
from repro.obs.clock import Clock, monotonic

__all__ = [
    "TelemetryWriter",
    "read_events",
    "render_run_report",
    "summarize_events",
]

#: Default event-log filename inside a telemetry directory.
EVENTS_FILENAME = "events.jsonl"


class TelemetryWriter:
    """Appends structured events to a JSONL file, one object per line.

    Events carry a monotonically increasing ``seq`` and a ``t_s`` offset
    (seconds since the writer was created, via the injected clock) —
    deterministic ordering even when the clock is fake.
    """

    def __init__(
        self,
        directory: str | Path,
        run_id: str = "run",
        clock: Clock = monotonic,
        filename: str = EVENTS_FILENAME,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / filename
        self.run_id = run_id
        self.clock = clock
        self._lock = tsan.TrackedLock("obs.telemetry")
        self._sink: IO[str] | None = self.path.open("a", encoding="utf-8")
        self._seq = 0
        self._epoch = clock()

    def emit(self, event_type: str, **payload: Any) -> None:
        """Append one event; a no-op after :meth:`close`."""
        with self._lock:
            tsan.note(self, "_sink", write=True)
            sink = self._sink
            if sink is None:
                return
            record: dict[str, Any] = {
                "type": event_type,
                "run": self.run_id,
                "seq": self._seq,
                "t_s": round(self.clock() - self._epoch, 6),
            }
            for key, value in payload.items():
                if key not in record:
                    record[key] = value
            self._seq += 1
            sink.write(json.dumps(record, sort_keys=True) + "\n")

    def flush(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Load an event log; accepts the JSONL file or its directory."""
    target = Path(path)
    if target.is_dir():
        target = target / EVENTS_FILENAME
    events = []
    with target.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def summarize_events(events: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Aggregate an event stream into a JSON-able run summary."""
    run: dict[str, Any] = {}
    episodes: list[Mapping[str, Any]] = []
    iterations: list[Mapping[str, Any]] = []
    run_end: Mapping[str, Any] | None = None
    for event in events:
        kind = event.get("type")
        if kind == "run_start":
            run = {
                key: event[key]
                for key in ("run", "seed", "n_tasks", "iterations", "rollout_workers")
                if key in event
            }
        elif kind == "episode":
            episodes.append(event)
        elif kind == "iteration":
            iterations.append(event)
        elif kind == "run_end":
            run_end = event

    per_task: dict[int, dict[str, Any]] = {}
    for event in episodes:
        task = int(event.get("task", -1))
        bucket = per_task.setdefault(
            task, {"episodes": 0, "rewards": [], "steps": 0}
        )
        bucket["episodes"] += 1
        bucket["rewards"].append(float(event.get("reward", 0.0)))
        bucket["steps"] += int(event.get("steps", 0))
    tasks = {
        task: {
            "episodes": bucket["episodes"],
            "mean_reward": round(_mean(bucket["rewards"]), 6),
            "steps": bucket["steps"],
        }
        for task, bucket in sorted(per_task.items())
    }

    losses = [float(e["mean_loss"]) for e in iterations if "mean_loss" in e]
    epsilons = [float(e["epsilon"]) for e in episodes if "epsilon" in e]
    summary: dict[str, Any] = {
        "run": run,
        "counts": {
            "events": len(episodes) + len(iterations),
            "episodes": len(episodes),
            "iterations": len(iterations),
        },
        "tasks": tasks,
        "loss": {
            "first": round(losses[0], 6) if losses else None,
            "last": round(losses[-1], 6) if losses else None,
            "mean": round(_mean(losses), 6) if losses else None,
        },
        "epsilon": {
            "first": round(epsilons[0], 6) if epsilons else None,
            "last": round(epsilons[-1], 6) if epsilons else None,
        },
    }
    if iterations:
        last = iterations[-1]
        for key in ("cache", "its_visits", "phases"):
            if key in last:
                summary[key] = last[key]
    if run_end is not None:
        summary["run_end"] = {
            key: run_end[key]
            for key in ("iterations", "episodes", "best_score", "t_s")
            if key in run_end
        }
    return summary


def render_run_report(summary: Mapping[str, Any]) -> str:
    """Human-readable run report from :func:`summarize_events` output."""
    lines: list[str] = []
    run = summary.get("run") or {}
    title = run.get("run", "run")
    lines.append(f"telemetry report: {title}")
    if run:
        meta = ", ".join(
            f"{key}={run[key]}"
            for key in ("seed", "n_tasks", "iterations", "rollout_workers")
            if key in run
        )
        if meta:
            lines.append(f"  {meta}")
    counts = summary.get("counts") or {}
    lines.append(
        f"  iterations: {counts.get('iterations', 0)}   "
        f"episodes: {counts.get('episodes', 0)}"
    )
    loss = summary.get("loss") or {}
    if loss.get("first") is not None:
        lines.append(
            f"  loss: first={loss['first']} last={loss['last']} "
            f"mean={loss['mean']}"
        )
    epsilon = summary.get("epsilon") or {}
    if epsilon.get("first") is not None:
        lines.append(
            f"  epsilon: first={epsilon['first']} last={epsilon['last']}"
        )
    tasks = summary.get("tasks") or {}
    if tasks:
        lines.append("  per-task:")
        for task, stats in tasks.items():
            lines.append(
                f"    task {task}: {stats['episodes']} episodes, "
                f"mean reward {stats['mean_reward']}, {stats['steps']} steps"
            )
    cache = summary.get("cache")
    if cache:
        lines.append(
            f"  reward cache: hits={cache.get('hits', 0)} "
            f"misses={cache.get('misses', 0)} "
            f"hit_rate={cache.get('hit_rate', 0.0)}"
        )
    visits = summary.get("its_visits")
    if visits:
        rendered = ", ".join(f"{k}:{v}" for k, v in sorted(visits.items()))
        lines.append(f"  ITS visits: {rendered}")
    phases = summary.get("phases")
    if phases:
        rendered = ", ".join(
            f"{name}={round(float(value), 4)}"
            for name, value in sorted(phases.items())
        )
        lines.append(f"  phase fractions: {rendered}")
    run_end = summary.get("run_end")
    if run_end:
        extras = ", ".join(
            f"{key}={run_end[key]}"
            for key in ("iterations", "episodes", "best_score")
            if key in run_end
        )
        lines.append(f"  finished: {extras}")
    else:
        lines.append("  finished: no run_end event (crashed or still running)")
    return "\n".join(lines)
