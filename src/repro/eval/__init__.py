"""Evaluation substrate: metrics and downstream classifiers.

Downstream quality of a selected subset is measured by training a fresh
:class:`LinearSVM` on the projected features, exactly as the paper's
evaluation protocol prescribes.  The reward-model classifier lives in
:mod:`repro.nn.classifier` and the reward function itself in
:mod:`repro.rl.reward` — ``eval`` sits below both in the layer contract
(see ``[tool.repolint.layers]``), so it only provides the metric and SVM
primitives they build on.
"""

from repro.eval.metrics import (
    accuracy_score,
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.eval.svm import LinearSVM, evaluate_subset_with_svm

__all__ = [
    "LinearSVM",
    "accuracy_score",
    "confusion_counts",
    "evaluate_subset_with_svm",
    "f1_score",
    "precision_score",
    "recall_score",
    "roc_auc_score",
]
