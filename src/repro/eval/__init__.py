"""Evaluation substrate: metrics, classifiers and the RL reward function.

The reward (paper Eqn. 2) is the score of a classifier *pretrained on all
features* and evaluated on masked inputs — :class:`MaskedMLPClassifier`
plays that role.  Downstream quality of a selected subset is measured by
training a fresh :class:`LinearSVM` on the projected features, exactly as
the paper's evaluation protocol prescribes.
"""

from repro.eval.classifier import MaskedMLPClassifier
from repro.eval.metrics import (
    accuracy_score,
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.eval.reward import RewardFunction
from repro.eval.svm import LinearSVM, evaluate_subset_with_svm

__all__ = [
    "LinearSVM",
    "MaskedMLPClassifier",
    "RewardFunction",
    "accuracy_score",
    "confusion_counts",
    "evaluate_subset_with_svm",
    "f1_score",
    "precision_score",
    "recall_score",
    "roc_auc_score",
]
