"""Binary classification metrics implemented from first principles.

The paper reports Avg F1-score and Avg AUC over unseen tasks; the reward
function uses AUC.  All functions take 1-D arrays of true labels in {0, 1}
and either hard predictions (F1/precision/recall/accuracy) or continuous
scores (AUC).
"""

from __future__ import annotations

import numpy as np


def _validate_pair(y_true: np.ndarray, y_other: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).reshape(-1)
    y_other = np.asarray(y_other, dtype=np.float64).reshape(-1)
    if y_true.shape != y_other.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_other.shape}")
    if y_true.size == 0:
        raise ValueError("metrics are undefined on empty inputs")
    unique = set(np.unique(y_true).tolist())
    if not unique <= {0, 1}:
        raise ValueError(f"y_true must be binary in {{0, 1}}, got values {sorted(unique)}")
    return y_true.astype(np.int64), y_other


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[int, int, int, int]:
    """Return (tp, fp, fn, tn) for binary predictions."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    y_pred = (y_pred >= 0.5).astype(np.int64)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    return tp, fp, fn, tn


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TP / (TP + FP); 0 when nothing is predicted positive."""
    tp, fp, _, _ = confusion_counts(y_true, y_pred)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TP / (TP + FN); 0 when there are no positives."""
    tp, _, fn, _ = confusion_counts(y_true, y_pred)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall; 0 when both are 0."""
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct hard predictions."""
    tp, fp, fn, tn = confusion_counts(y_true, y_pred)
    return (tp + tn) / (tp + fp + fn + tn)


def roc_auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (tie-aware).

    AUC equals the probability that a random positive scores above a random
    negative, with ties counting one half.  Degenerate inputs (a single
    class) return 0.5 — the chance level — rather than raising, because the
    RL reward is called on arbitrary label splits during training.
    """
    y_true, y_score = _validate_pair(y_true, y_score)
    n_pos = int(np.sum(y_true == 1))
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(y_score, kind="mergesort")
    sorted_scores = y_score[order]
    ranks = np.empty(y_true.size, dtype=np.float64)
    i = 0
    while i < y_true.size:
        j = i
        while j + 1 < y_true.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0  # average rank, 1-based
        i = j + 1
    rank_sum_pos = float(np.sum(ranks[y_true == 1]))
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u_statistic / (n_pos * n_neg)
