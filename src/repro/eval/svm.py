"""Linear SVM trained by Pegasos-style stochastic subgradient descent.

Plays the role of LIBSVM in the paper's protocol: for each unseen task an
SVM is trained on the *projected* selected features and its F1/AUC on held-
out rows measures subset quality.  Pegasos (Shalev-Shwartz et al., 2011)
optimises the L2-regularised hinge loss with a 1/(λ t) step size, which is
deterministic given the RNG seed and fast enough to sit inside benchmark
sweeps.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from repro.errors import NotFittedError

from repro.eval.metrics import f1_score, roc_auc_score


class LinearSVM:
    """Binary linear SVM with hinge loss and L2 regularisation."""

    def __init__(
        self,
        lambda_reg: float = 1e-3,
        n_epochs: int = 20,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if lambda_reg <= 0.0:
            raise ValueError(f"lambda_reg must be positive, got {lambda_reg}")
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.lambda_reg = lambda_reg
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        """Train on features (n × d) and binary labels in {0, 1}."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels).reshape(-1)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"row mismatch: {features.shape[0]} rows vs {labels.shape[0]} labels"
            )
        if features.shape[1] == 0:
            # An empty subset carries no signal; predict the majority class.
            self.weights = np.zeros(0)
            self.bias = 1.0 if np.mean(labels) >= 0.5 else -1.0
            self._mean = np.zeros(0)
            self._std = np.ones(0)
            return self

        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0)
        self._std = np.where(self._std > 0, self._std, 1.0)
        x = (features - self._mean) / self._std
        y = np.where(labels == 1, 1.0, -1.0)

        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        w = np.zeros(d)
        b = 0.0
        t = 0
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                t += 1
                batch = order[start : start + self.batch_size]
                xb, yb = x[batch], y[batch]
                margins = yb * (xb @ w + b)
                violators = margins < 1.0
                eta = 1.0 / (self.lambda_reg * t)
                grad_w = self.lambda_reg * w
                grad_b = 0.0
                if np.any(violators):
                    grad_w = grad_w - (yb[violators, None] * xb[violators]).mean(axis=0)
                    grad_b = -float(yb[violators].mean())
                w = w - eta * grad_w
                b = b - eta * grad_b
                # Pegasos projection step keeps ||w|| <= 1/sqrt(lambda).
                norm = np.linalg.norm(w)
                limit = 1.0 / np.sqrt(self.lambda_reg)
                if norm > limit:
                    w *= limit / norm
        self.weights = w
        self.bias = b
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed margins; positive means class 1."""
        if self.weights is None or self._mean is None or self._std is None:
            raise NotFittedError("decision_function called before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if features.shape[1] != self.weights.shape[0]:
            raise ValueError(
                f"expected {self.weights.shape[0]} features, got {features.shape[1]}"
            )
        if self.weights.size == 0:
            return np.full(features.shape[0], self.bias)
        x = (features - self._mean) / self._std
        return x @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard {0, 1} predictions."""
        return (self.decision_function(features) >= 0.0).astype(np.int64)


def evaluate_subset_with_svm(
    subset: Sequence[int],
    train_features: np.ndarray,
    train_labels: np.ndarray,
    test_features: np.ndarray,
    test_labels: np.ndarray,
    seed: int = 0,
    kernel: str = "rbf",
) -> dict[str, float]:
    """Paper evaluation protocol: train an SVM on the projected subset.

    LIBSVM — the paper's evaluator — defaults to an RBF kernel, so
    ``kernel="rbf"`` (the default) scores with the non-linear
    :class:`~repro.eval.kernel.KernelRidgeClassifier`; ``kernel="linear"``
    uses the Pegasos :class:`LinearSVM` instead.  Returns ``{"f1": ...,
    "auc": ...}`` on the held-out rows.  An empty subset degrades to the
    majority-class predictor.
    """
    if kernel not in ("rbf", "linear"):
        raise ValueError(f"kernel must be 'rbf' or 'linear', got {kernel!r}")
    idx = np.asarray(sorted(set(int(i) for i in subset)), dtype=np.int64)
    train_x = np.asarray(train_features, dtype=np.float64)[:, idx]
    test_x = np.asarray(test_features, dtype=np.float64)[:, idx]
    if kernel == "rbf":
        from repro.eval.kernel import KernelRidgeClassifier

        model = KernelRidgeClassifier(seed=seed).fit(train_x, train_labels)
    else:
        model = LinearSVM(seed=seed).fit(train_x, train_labels)
    scores = model.decision_function(test_x)
    predictions = (scores >= 0.0).astype(np.int64)
    return {
        "f1": f1_score(test_labels, predictions),
        "auc": roc_auc_score(test_labels, scores),
    }
