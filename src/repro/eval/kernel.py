"""RBF-kernel classifier for downstream subset evaluation.

The paper evaluates selected subsets by training an SVM per unseen task
(Section IV-A3); LIBSVM's default is an RBF-kernel SVM, i.e. a *non-linear*
evaluator.  This module provides that role with a kernel ridge classifier:
closed-form, deterministic and — unlike hinge-loss SGD — free of tuning
interactions that would add noise to method comparisons.  DESIGN.md records
the substitution (LIBSVM RBF-SVM → RBF kernel ridge).
"""

from __future__ import annotations

import numpy as np
from repro.errors import NotFittedError

from repro.analysis.numerics import safe_exp


class KernelRidgeClassifier:
    """Binary classifier: RBF kernel ridge regression on ±1 targets.

    ``gamma=None`` uses the "scale" heuristic ``1 / (d * var(X))`` familiar
    from scikit-learn/LIBSVM.  Training rows are subsampled to ``max_rows``
    to bound the kernel solve on large datasets.
    """

    def __init__(
        self,
        ridge: float = 1.0,
        gamma: float | None = None,
        max_rows: int = 1000,
        seed: int = 0,
    ) -> None:
        if ridge <= 0.0:
            raise ValueError(f"ridge must be positive, got {ridge}")
        if gamma is not None and gamma <= 0.0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        if max_rows < 2:
            raise ValueError(f"max_rows must be >= 2, got {max_rows}")
        self.ridge = ridge
        self.gamma = gamma
        self.max_rows = max_rows
        self.seed = seed
        self._x_train: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._gamma_eff: float = 1.0
        self._bias: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KernelRidgeClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels).reshape(-1)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"row mismatch: {features.shape[0]} rows vs {labels.shape[0]} labels"
            )
        if features.shape[1] == 0:
            # Empty subset: majority-class constant predictor.
            self._x_train = np.zeros((1, 0))
            self._alpha = np.zeros(1)
            self._mean = np.zeros(0)
            self._std = np.ones(0)
            self._bias = 1.0 if np.mean(labels) >= 0.5 else -1.0
            return self

        n = features.shape[0]
        if n > self.max_rows:
            rng = np.random.default_rng(self.seed)
            rows = rng.choice(n, size=self.max_rows, replace=False)
            features, labels = features[rows], labels[rows]
            n = self.max_rows

        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0)
        self._std = np.where(self._std > 0, self._std, 1.0)
        x = (features - self._mean) / self._std
        y = np.where(labels == 1, 1.0, -1.0)
        self._bias = float(np.mean(y))

        d = x.shape[1]
        variance = float(np.var(x)) or 1.0
        self._gamma_eff = self.gamma if self.gamma is not None else 1.0 / (d * variance)
        kernel = self._rbf(x, x)
        self._alpha = np.linalg.solve(kernel + self.ridge * np.eye(n), y - self._bias)
        self._x_train = x
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Continuous scores; positive means class 1."""
        if self._x_train is None or self._alpha is None:
            raise NotFittedError("decision_function called before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if features.shape[1] != self._x_train.shape[1]:
            raise ValueError(
                f"expected {self._x_train.shape[1]} features, got {features.shape[1]}"
            )
        if self._x_train.shape[1] == 0:
            return np.full(features.shape[0], self._bias)
        x = (features - self._mean) / self._std
        return self._rbf(x, self._x_train) @ self._alpha + self._bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard {0, 1} predictions."""
        return (self.decision_function(features) >= 0.0).astype(np.int64)

    def _rbf(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq_a = np.sum(a**2, axis=1)[:, None]
        sq_b = np.sum(b**2, axis=1)[None, :]
        squared = np.maximum(sq_a + sq_b - 2.0 * (a @ b.T), 0.0)
        return safe_exp(-self._gamma_eff * squared)
