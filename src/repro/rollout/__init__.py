"""Parallel rollout engine — the Buffer Filling Phase across N workers.

PA-FEAT's speed argument (paper Section III-A) rests on *N parallel rollout
resources* filling the replay buffer concurrently.  This package realises
them as a process pool: the coordinator plans every episode serially
(consuming the trainer's RNG streams exactly as the serial loop would),
ships the plans to worker processes holding replica env/agent pairs with
broadcast read-only weights, and merges the returned trajectories back in
deterministic plan order.  The sync points documented by the PAR601
parallel-safety certificate (ARCHITECTURE §7.2) — the ITS visit counter,
the reward-cache lock, the E-Tree update barrier — are exercised for real
here, each backed by :mod:`repro.analysis.tsan` machinery.

See ARCHITECTURE §10 for the worker topology, RNG sharding scheme and the
determinism contract.
"""

from repro.rollout.engine import (
    ROLLOUT_WORKERS_ENV_VAR,
    ParallelRolloutEngine,
    resolve_worker_count,
)
from repro.rollout.plan import EpisodePlan, EpisodeResult, validate_result
from repro.rollout.worker import epsilon_greedy_action, run_planned_episode

__all__ = [
    "ROLLOUT_WORKERS_ENV_VAR",
    "EpisodePlan",
    "EpisodeResult",
    "ParallelRolloutEngine",
    "epsilon_greedy_action",
    "resolve_worker_count",
    "run_planned_episode",
    "validate_result",
]
