"""Episode plans and results — the rollout engine's wire format.

The coordinator *plans* the whole Buffer Filling Phase before any worker
runs: task sampling (ITS or uniform) and initial-state customisation (ITE)
execute serially on the coordinator, consuming the trainer's RNG streams in
exactly the order the serial loop would.  A plan pins down everything that
determines its episode — the task, the start state, the policy mode, the
epsilon base and (via the global episode index) the RNG shard from
:func:`repro.rl.seeding.rollout_shard` — so an episode's outcome is a pure
function of ``(plan, broadcast weights)``.  That purity is the engine's
determinism contract: results are identical for any worker count, any
scheduling order, and for local re-execution after a worker crash.

Results cross a process boundary, so they are validated before anything is
merged into trainer state (:func:`validate_result`): a poisoned or
truncated payload is discarded and its plan re-executed locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.state import EnvState
from repro.errors import RolloutError
from repro.rl.transition import Trajectory

__all__ = ["EpisodePlan", "EpisodeResult", "validate_result"]

#: Reward-cache delta type: ``((subset_key, score), ...)``.
RewardEntries = tuple[tuple[tuple[int, ...], float], ...]


@dataclass(frozen=True)
class EpisodePlan:
    """Everything that determines one planned rollout episode.

    ``index`` counts planned episodes globally across the run and keys the
    episode's RNG shard.  ``epsilon_base`` is the agent's action counter at
    the start of the phase: every episode in a phase explores from the same
    broadcast epsilon, advancing it locally per step — the natural
    semantics of N resources sampling simultaneously from one snapshot.
    """

    index: int
    task_id: int
    start: EnvState
    random_policy: bool
    epsilon_base: int
    #: When True the executor wall-times the episode (through the obs
    #: clock) and reports it in :attr:`EpisodeResult.elapsed_s` so the
    #: coordinator can merge per-worker timings into one trace in plan
    #: order.  Purely observational: it never changes the episode.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"plan index must be >= 0, got {self.index}")
        if self.epsilon_base < 0:
            raise ValueError(
                f"epsilon_base must be >= 0, got {self.epsilon_base}"
            )


@dataclass
class EpisodeResult:
    """One finished episode as returned by a worker (or local execution).

    ``policy_steps`` counts the steps that consulted the learned policy —
    zero for random-restart episodes — and is what advances the agent's
    action counter (hence the epsilon schedule) at the merge barrier.
    ``reward_entries`` is the worker-side reward-cache delta drained at the
    episode boundary, merged into the coordinator's cache so no subset is
    scored twice.
    """

    index: int
    task_id: int
    trajectory: Trajectory
    steps: int
    policy_steps: int
    reward_entries: RewardEntries = field(default=())
    #: Wall seconds the episode took on its executor (0.0 unless the plan
    #: requested tracing).  Observational only — the merge barrier feeds
    #: it to the coordinator's tracer, never into trainer state.
    elapsed_s: float = 0.0


def validate_result(
    plan: EpisodePlan, result: EpisodeResult, n_features: int
) -> None:
    """Reject a result that cannot have come from faithfully running ``plan``.

    Results cross a process boundary; this is the trust boundary check the
    fault-injection suite drives with poisoned payloads.  Raises
    :class:`~repro.errors.RolloutError` on the first inconsistency; the
    engine responds by re-executing the plan locally.
    """
    if result.index != plan.index or result.task_id != plan.task_id:
        raise RolloutError(
            f"result identity mismatch: plan (index={plan.index}, "
            f"task={plan.task_id}) vs result (index={result.index}, "
            f"task={result.task_id})"
        )
    trajectory = result.trajectory
    if not isinstance(trajectory, Trajectory):
        raise RolloutError(
            f"episode {plan.index}: payload is {type(trajectory).__name__}, "
            "not a Trajectory"
        )
    if trajectory.task_id != plan.task_id:
        raise RolloutError(
            f"episode {plan.index}: trajectory is for task "
            f"{trajectory.task_id}, planned task {plan.task_id}"
        )
    max_steps = max(0, n_features - plan.start.position)
    if result.steps != trajectory.length:
        raise RolloutError(
            f"episode {plan.index}: steps={result.steps} disagrees with "
            f"transitions={trajectory.length}"
        )
    if result.steps > max_steps:
        raise RolloutError(
            f"episode {plan.index}: {result.steps} steps from position "
            f"{plan.start.position} exceeds the {max_steps}-step horizon"
        )
    expected_policy = 0 if plan.random_policy else result.steps
    if result.policy_steps != expected_policy:
        raise RolloutError(
            f"episode {plan.index}: policy_steps={result.policy_steps}, "
            f"expected {expected_policy}"
        )
    for position, transition in enumerate(trajectory.transitions):
        # The env may end an episode early (feature budget), but only the
        # final transition may be terminal — a done flag anywhere else, or
        # a non-terminal tail, means the payload was truncated or spliced.
        if bool(transition.done) != (position == trajectory.length - 1):
            raise RolloutError(
                f"episode {plan.index} step {position}: done="
                f"{bool(transition.done)} breaks the terminal-tail shape"
            )
        if transition.action not in (0, 1):
            raise RolloutError(
                f"episode {plan.index} step {position}: invalid action "
                f"{transition.action!r}"
            )
        for name, value in (
            ("state", transition.state),
            ("next_state", transition.next_state),
        ):
            array = np.asarray(value, dtype=np.float64)
            if not np.all(np.isfinite(array)):
                raise RolloutError(
                    f"episode {plan.index} step {position}: non-finite "
                    f"{name}"
                )
        scalars = (transition.reward, transition.return_to_go)
        if not all(v is not None and np.isfinite(v) for v in scalars):
            raise RolloutError(
                f"episode {plan.index} step {position}: non-finite reward "
                "or return-to-go"
            )
    if not np.isfinite(trajectory.final_reward):
        raise RolloutError(
            f"episode {plan.index}: non-finite final reward"
        )
    for feature in trajectory.selected_features:
        if not 0 <= int(feature) < n_features:
            raise RolloutError(
                f"episode {plan.index}: selected feature {feature} out of "
                f"range for {n_features} features"
            )
    if not (np.isfinite(result.elapsed_s) and result.elapsed_s >= 0.0):
        raise RolloutError(
            f"episode {plan.index}: invalid elapsed_s {result.elapsed_s!r}"
        )
    for key, score in result.reward_entries:
        if not all(0 <= int(i) < n_features for i in key):
            raise RolloutError(
                f"episode {plan.index}: reward-cache key {key} out of range"
            )
        if not (np.isfinite(score) and 0.0 <= float(score) <= 1.0):
            raise RolloutError(
                f"episode {plan.index}: reward-cache score {score!r} "
                "outside [0, 1]"
            )
