"""The coordinator side: plan → dispatch → validate → merge.

:class:`ParallelRolloutEngine` runs one Buffer Filling Phase per
:meth:`fill` call in four strictly ordered stages:

1. **Plan** (serial): sample a task and an initial state for every episode
   through the trainer's own hooks, consuming the trainer/ITS/ITE RNG
   streams in exactly the serial loop's order.  Each plan gets a global
   episode index that keys its RNG shard.
2. **Dispatch**: broadcast ``(envs, agent, gamma, seed)`` to a fresh
   process pool (weights change every phase, so each phase gets its own
   broadcast) and submit contiguous plan chunks.
3. **Validate**: every returned payload crosses a process boundary and is
   checked against its plan; invalid or missing episodes are re-executed
   locally — bit-identical by the plan-determinism contract.
4. **Merge** (barrier, under ``TrackedLock("rollout.merge")``): commit
   trajectories in plan order — replay buffers, ITE/E-Tree recording,
   reward-cache deltas, then the agent's action counter — so the final
   trainer state is independent of worker count and scheduling.

Failure policy is graceful degradation: any pool-level failure (worker
crash, broken pool, unpicklable payload) flips the engine into degraded
mode, where plans keep being executed locally — training continues, just
serially — and the degradation reason is recorded for telemetry and
checkpoints.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.analysis import tsan
from repro.core.feat import FEATTrainer
from repro.errors import RolloutError
from repro.obs.clock import monotonic
from repro.obs.log import get_logger
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import NULL_TRACER, Tracer
from repro.rl.transition import Trajectory
# Module import (not `from repro.rollout import ...`, which would edge back
# through the package __init__ into a cycle).  Kept as a module reference so
# the fault-injection suite can monkeypatch worker functions before fork.
import repro.rollout.worker as worker_mod
from repro.rollout.plan import EpisodePlan, EpisodeResult, validate_result

__all__ = [
    "ROLLOUT_WORKERS_ENV_VAR",
    "ParallelRolloutEngine",
    "resolve_worker_count",
]

_LOG = get_logger("rollout.engine")

ROLLOUT_WORKERS_ENV_VAR = "REPRO_ROLLOUT_WORKERS"


def resolve_worker_count(requested: int | None) -> int:
    """The effective rollout worker count for a training run.

    Explicit argument first, then the ``REPRO_ROLLOUT_WORKERS`` environment
    variable (how the CI parity matrix arms parallel collection without
    touching call sites), else 1 — the serial path.
    """
    if requested is None:
        raw = os.environ.get(ROLLOUT_WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            requested = int(raw)
        except ValueError:
            raise ValueError(
                f"{ROLLOUT_WORKERS_ENV_VAR}={raw!r} is not an integer"
            ) from None
    if requested < 1:
        raise ValueError(f"rollout workers must be >= 1, got {requested}")
    return requested


class ParallelRolloutEngine:
    """Multi-worker executor for the Buffer Filling Phase.

    Satisfies the trainer's ``EpisodeCollector`` protocol.  With
    ``n_workers < 2`` — or after degradation — every plan is executed
    locally, which produces the same results as the pool by construction
    (plans, not workers, determine episodes).
    """

    def __init__(
        self,
        n_workers: int,
        seed: int,
        mp_context: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.seed = int(seed)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context
        self.degraded = False
        self.degrade_reason: str | None = None
        self.episodes_planned = 0
        # Transient by design: an engine is closed when its fit() ends, and
        # a restored engine is always a fresh, open one.
        self._closed = False  # repolint: disable=CKPT201
        self._merge_lock = tsan.TrackedLock("rollout.merge")
        #: Observability hooks, wired by ``PAFeat.fit`` when telemetry is
        #: on.  ``NULL_TRACER`` / ``None`` keep the hot path at a couple of
        #: attribute checks per phase — the disabled-cost contract
        #: ``benchmarks/bench_obs.py`` gates on.
        self.tracer: Tracer = NULL_TRACER
        self.profiler: PhaseProfiler | None = None
        self.stats: dict[str, float] = {
            "fills": 0,
            "episodes": 0,
            "pool_episodes": 0,
            "fallback_episodes": 0,
            "invalid_results": 0,
            "crashes": 0,
            "plan_seconds": 0.0,
            "execute_seconds": 0.0,
            "merge_seconds": 0.0,
        }

    @property
    def active(self) -> bool:
        """True while the engine still dispatches to a worker pool."""
        return not self._closed and not self.degraded and self.n_workers >= 2

    # ------------------------------------------------------------------
    # The one entry point trainers call
    # ------------------------------------------------------------------
    def fill(
        self, trainer: FEATTrainer, n_episodes: int
    ) -> dict[int, list[Trajectory]]:
        """Run one Buffer Filling Phase of ``n_episodes`` episodes."""
        if self._closed:
            raise RolloutError("fill() called on a closed rollout engine")
        if n_episodes < 1:
            raise ValueError(f"n_episodes must be >= 1, got {n_episodes}")
        with self.tracer.span(
            "rollout.fill", episodes=n_episodes, workers=self.n_workers
        ) as fill_span:
            plan_start = monotonic()
            plans = self._plan(trainer, n_episodes)
            execute_start = monotonic()
            results = self._execute(trainer, plans)
            merge_start = monotonic()
            collected = self._merge(trainer, plans, results, fill_span)
            merge_end = monotonic()
        plan_s = execute_start - plan_start
        execute_s = merge_start - execute_start
        merge_s = merge_end - merge_start
        self.stats["fills"] += 1
        self.stats["episodes"] += len(plans)
        self.stats["plan_seconds"] += plan_s
        self.stats["execute_seconds"] += execute_s
        self.stats["merge_seconds"] += merge_s
        # The same three readings feed the phase histograms and the stage
        # spans — one clock cost, every observability surface.
        if self.profiler is not None:
            self.profiler.observe("rollout.plan", plan_s)
            self.profiler.observe("rollout.execute", execute_s)
            self.profiler.observe("rollout.merge", merge_s)
        if self.tracer.enabled:
            self.tracer.emit("rollout.plan", plan_s, parent=fill_span)
            self.tracer.emit(
                "rollout.execute", execute_s, parent=fill_span,
                pooled=self.active,
            )
            self.tracer.emit("rollout.merge", merge_s, parent=fill_span)
        return collected

    # ------------------------------------------------------------------
    # Stage 1: plan
    # ------------------------------------------------------------------
    def _plan(
        self, trainer: FEATTrainer, n_episodes: int
    ) -> list[EpisodePlan]:
        epsilon_base = trainer.agent.action_count
        trace = self.tracer.enabled
        plans: list[EpisodePlan] = []
        for _ in range(n_episodes):
            task_id, start, random_policy = trainer.plan_episode()
            plans.append(
                EpisodePlan(
                    index=self.episodes_planned,
                    task_id=task_id,
                    start=start,
                    random_policy=random_policy,
                    epsilon_base=epsilon_base,
                    trace=trace,
                )
            )
            self.episodes_planned += 1
        return plans

    # ------------------------------------------------------------------
    # Stages 2+3: dispatch and validate (with local fallback)
    # ------------------------------------------------------------------
    def _run_local(
        self, trainer: FEATTrainer, plan: EpisodePlan
    ) -> EpisodeResult:
        return worker_mod.run_planned_episode(
            trainer.envs,
            trainer.agent,
            trainer.config.agent.gamma,
            plan,
            self.seed,
            trainer.reward_transform,
        )

    def _execute(
        self, trainer: FEATTrainer, plans: list[EpisodePlan]
    ) -> dict[int, EpisodeResult]:
        results: dict[int, EpisodeResult] = {}
        pooled: dict[int, EpisodeResult] = {}
        if self.active:
            pooled = self._execute_pool(trainer, plans)
        for plan in plans:
            result = pooled.get(plan.index)
            if result is not None:
                try:
                    validate_result(
                        plan, result, trainer.envs[plan.task_id].n_features
                    )
                except RolloutError as error:
                    self.stats["invalid_results"] += 1
                    _LOG.warning(
                        "discarding invalid rollout payload for episode "
                        "%d: %s",
                        plan.index,
                        error,
                    )
                else:
                    results[plan.index] = result
                    self.stats["pool_episodes"] += 1
                    continue
            if self.active or self.degraded:
                # Pool was (or should have been) responsible for this plan
                # but produced nothing usable — count the re-execution.
                self.stats["fallback_episodes"] += 1
            results[plan.index] = self._run_local(trainer, plan)
        return results

    def _execute_pool(
        self, trainer: FEATTrainer, plans: list[EpisodePlan]
    ) -> dict[int, EpisodeResult]:
        gathered: dict[int, EpisodeResult] = {}
        try:
            payload = pickle.dumps(
                (
                    trainer.envs,
                    trainer.agent,
                    trainer.config.agent.gamma,
                    self.seed,
                    trainer.reward_transform,
                )
            )
        except Exception as error:  # arbitrary hook callables may not pickle
            _LOG.warning("rollout broadcast payload not picklable: %s", error)
            self._degrade(f"broadcast payload not picklable: {error}")
            return gathered
        chunk_size = max(1, -(-len(plans) // self.n_workers))
        crashed: Exception | None = None
        try:
            context = multiprocessing.get_context(self.mp_context)
            with ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=context,
                initializer=worker_mod._init_worker,
                initargs=(payload,),
            ) as pool:
                futures = [
                    pool.submit(
                        worker_mod._execute_chunk,
                        tuple(plans[offset : offset + chunk_size]),
                    )
                    for offset in range(0, len(plans), chunk_size)
                ]
                for future in futures:
                    try:
                        for result in future.result():
                            gathered[int(result.index)] = result
                    except Exception as error:  # crash surfaces per-future
                        _LOG.warning(
                            "rollout worker chunk failed: %s", error
                        )
                        crashed = error
        except Exception as error:  # pool construction/teardown failure
            _LOG.warning("rollout worker pool failed: %s", error)
            crashed = error
        if crashed is not None:
            self.stats["crashes"] += 1
            self._degrade(f"worker crash mid-phase: {crashed}")
        return gathered

    def _degrade(self, reason: str) -> None:
        """Fall back to serial plan execution for the rest of the run."""
        if not self.degraded:
            self.degraded = True
            self.degrade_reason = reason
            _LOG.warning(
                "rollout engine degraded to serial execution: %s", reason
            )

    # ------------------------------------------------------------------
    # Stage 4: merge barrier
    # ------------------------------------------------------------------
    def _merge(
        self,
        trainer: FEATTrainer,
        plans: list[EpisodePlan],
        results: dict[int, EpisodeResult],
        fill_span: Any = None,
    ) -> dict[int, list[Trajectory]]:
        collected: dict[int, list[Trajectory]] = {}
        policy_steps = 0
        trace = self.tracer.enabled
        with self._merge_lock:
            tsan.note(trainer, "registry", write=True)
            for plan in plans:
                result = results[plan.index]
                if trace:
                    # Workers measure, the coordinator records: replaying
                    # the shipped durations here — inside the plan-order
                    # loop — merges every worker's episode timings into
                    # one deterministic trace.
                    self.tracer.emit(
                        "rollout.episode",
                        result.elapsed_s,
                        parent=fill_span,
                        episode=plan.index,
                        task=plan.task_id,
                        steps=result.steps,
                    )
                trainer.commit_episode(
                    plan.task_id, result.trajectory, plan.start
                )
                merge = getattr(
                    trainer.envs[plan.task_id].reward_fn, "merge_cache", None
                )
                if merge is not None and result.reward_entries:
                    merge(result.reward_entries)
                policy_steps += result.policy_steps
                collected.setdefault(plan.task_id, []).append(
                    result.trajectory
                )
            # One bulk advance of the epsilon schedule per phase — the
            # shared-counter twin of the per-episode epsilon_base.
            trainer.agent.action_count += policy_steps
        return collected

    # ------------------------------------------------------------------
    # Lifecycle and durable checkpointing
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse further fills.  Pools are per-phase, so nothing to join."""
        self._closed = True

    def capture_state(self) -> dict[str, Any]:
        """JSON-able snapshot; worker RNG shards are derived, not stored.

        Every episode's stream is ``rollout_shard(seed, index)``, so the
        global episode counter *is* the per-worker RNG state — resuming
        from ``episodes_planned`` reproduces exactly the shards an
        uninterrupted run would mint next.
        """
        return {
            "seed": self.seed,
            "n_workers": self.n_workers,
            "episodes_planned": self.episodes_planned,
            "degraded": self.degraded,
            "degrade_reason": self.degrade_reason,
        }

    def restore_state(self, meta: dict[str, Any]) -> None:
        """Restore a snapshot captured by :meth:`capture_state`.

        The worker count is deliberately *not* restored: it is a hardware
        choice, and plan determinism makes results identical across worker
        counts — a run checkpointed at 8 workers resumes bit-identically
        at 2.
        """
        captured_seed = int(meta["seed"])
        if captured_seed != self.seed:
            raise RolloutError(
                f"checkpoint rollout seed {captured_seed} does not match "
                f"engine seed {self.seed}"
            )
        self.episodes_planned = int(meta["episodes_planned"])
        self.degraded = bool(meta.get("degraded", False))
        reason = meta.get("degrade_reason")
        self.degrade_reason = None if reason is None else str(reason)
