"""Worker-process side of the parallel rollout engine.

Each pool worker is initialised once per Buffer Filling Phase with a
broadcast payload — replica environments, a read-only copy of the agent's
network weights, the discount factor and the run seed — and then executes
chunks of :class:`~repro.rollout.plan.EpisodePlan`.  Episode execution is
a faithful mirror of ``FEATTrainer.run_episode`` with two substitutions
that make it plan-determined rather than trainer-state-determined:

* randomness comes from the episode's own shard
  (:func:`repro.rl.seeding.rollout_shard` keyed on the plan's global
  index), never from the trainer's or agent's streams, and
* the epsilon schedule advances from the plan's ``epsilon_base`` locally
  within the episode, never from the shared agent counter.

The replica agent is only ever *read* (``q_values`` is the pure inference
path certified by PAR601); :func:`epsilon_greedy_action` reproduces
``DuelingDQNAgent.act`` exactly but with the RNG and action counter passed
in, so running an episode mutates no agent state.  This is also why the
engine can re-execute any plan locally against the live trainer objects
and obtain bit-identical results.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.core.env import FeatureSelectionEnv
from repro.errors import WorkerCrashError
from repro.obs.clock import monotonic
from repro.rl.agent import DuelingDQNAgent
from repro.rl.seeding import rollout_shard
from repro.rl.transition import Trajectory, Transition
from repro.rollout.plan import EpisodePlan, EpisodeResult

__all__ = ["epsilon_greedy_action", "run_planned_episode"]

RewardTransform = Callable[[int, float], float]


@dataclass
class WorkerContext:
    """The broadcast payload as held by one worker process."""

    envs: dict[int, FeatureSelectionEnv]
    agent: DuelingDQNAgent
    gamma: float
    seed: int
    reward_transform: RewardTransform | None


# Per-process slot for the broadcast payload.  Worker processes are
# single-threaded plan executors, so this is process-local state, not
# shared mutable state: each pool worker owns its own interpreter and the
# coordinator never reads it.  PAR602's "no module-level mutation" contract
# is waived for this file: a process-pool initializer has nowhere but the
# module to stash per-process state, and the state is per-worker by
# construction — exactly the sharding PAR602 exists to guarantee.
# repolint: disable-file=PAR602
_CONTEXT: WorkerContext | None = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: install the broadcast payload in this process."""
    global _CONTEXT
    envs, agent, gamma, seed, reward_transform = pickle.loads(payload)
    _CONTEXT = WorkerContext(
        envs=dict(envs),
        agent=agent,
        gamma=float(gamma),
        seed=int(seed),
        reward_transform=reward_transform,
    )


def epsilon_greedy_action(
    agent: DuelingDQNAgent,
    state: np.ndarray,
    rng: np.random.Generator,
    action_count: int,
) -> int:
    """``DuelingDQNAgent.act`` with the RNG and schedule position explicit.

    Byte-for-byte the same decision procedure — epsilon from the schedule
    at ``action_count``, uniform draw under epsilon, otherwise argmax with
    random tie-breaking — but free of side effects on the agent, so replica
    agents stay read-only and the draw order is owned by the episode shard.
    """
    epsilon = agent.epsilon_schedule(action_count)
    if rng.random() < epsilon:
        return int(rng.integers(agent.n_actions))
    q = agent.q_values(state)[0]
    best = np.flatnonzero(q == q.max())
    if len(best) == 1:
        return int(best[0])
    return int(rng.choice(best))


def run_planned_episode(
    envs: Mapping[int, FeatureSelectionEnv],
    agent: DuelingDQNAgent,
    gamma: float,
    plan: EpisodePlan,
    seed: int,
    reward_transform: RewardTransform | None = None,
) -> EpisodeResult:
    """Execute one planned episode; pure in everything but the env replica.

    Mirrors ``FEATTrainer.run_episode`` (including the discounted
    return-to-go computation) under the plan's own RNG shard and epsilon
    base.  The environment is reset to the planned start state first, so
    any prior episode's residue in the replica is irrelevant.
    """
    # Annotated so static call resolution binds env.step/reset_to to
    # FeatureSelectionEnv (the effect analysis can't see through the
    # Mapping element type).
    env: FeatureSelectionEnv = envs[plan.task_id]
    # Tracing wall-times the episode through the obs clock; the reading
    # rides back on the result for the coordinator's trace merge and is
    # the only observable difference a traced plan makes.
    started_at = monotonic() if plan.trace else 0.0
    rng = np.random.default_rng(rollout_shard(seed, plan.index))
    state = env.reset_to(plan.start)
    trajectory = Trajectory(task_id=plan.task_id)
    final_score = env.reward_fn(env.selected) if env.selected else 0.0
    steps: list[tuple[np.ndarray, int, float, np.ndarray, bool]] = []
    action_count = plan.epsilon_base
    while not env.done:
        if plan.random_policy:
            action = int(rng.integers(env.N_ACTIONS))
        else:
            action_count += 1
            action = epsilon_greedy_action(agent, state, rng, action_count)
        next_state, reward, done, info = env.step(action)
        if reward_transform is not None:
            reward = reward_transform(plan.task_id, reward)
        steps.append((state, action, reward, next_state, done))
        state = next_state
        final_score = info["score"]
    running_return = 0.0
    returns: list[float] = [0.0] * len(steps)
    for index in range(len(steps) - 1, -1, -1):
        running_return = steps[index][2] + gamma * running_return
        returns[index] = running_return
    for (step_state, action, reward, next_state, done), ret in zip(steps, returns):
        trajectory.append(
            Transition(
                state=step_state,
                action=action,
                reward=reward,
                next_state=next_state,
                done=done,
                return_to_go=ret,
            )
        )
    trajectory.selected_features = env.selected
    trajectory.final_reward = float(final_score)
    drain = getattr(env.reward_fn, "drain_fresh_entries", None)
    reward_entries = tuple(drain()) if drain is not None else ()
    return EpisodeResult(
        index=plan.index,
        task_id=plan.task_id,
        trajectory=trajectory,
        steps=len(steps),
        policy_steps=0 if plan.random_policy else len(steps),
        reward_entries=reward_entries,
        elapsed_s=(monotonic() - started_at) if plan.trace else 0.0,
    )


def _execute_chunk(plans: tuple[EpisodePlan, ...]) -> list[EpisodeResult]:
    """Run a contiguous chunk of plans against this worker's replicas."""
    context = _CONTEXT
    if context is None:
        raise WorkerCrashError("rollout worker used before initialisation")
    return [
        run_planned_episode(
            context.envs,
            context.agent,
            context.gamma,
            plan,
            context.seed,
            context.reward_transform,
        )
        for plan in plans
    ]
