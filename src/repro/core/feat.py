"""FEAT — the multi-task DRL framework (paper Algorithm 1).

One global Dueling-DQN agent interacts with per-seen-task environments:

1. *Buffer Filling Phase*: N rollout resources each pick a seen task (the
   ``task_sampler`` hook — uniform by default, ITS when enabled), obtain an
   initial state (the ``initial_state_provider`` hook — default start, or
   an ITE-customised state), roll an episode under epsilon-greedy and store
   the trajectory in the task's replay buffer.
2. *Parameter Updating Phase*: K rounds of minibatch Dueling-DQN updates,
   one batch per seen task per round.

Baselines from the paper that are "implemented under FEAT" plug into the
same hooks: PopArt swaps the agent, Go-Explore swaps the state provider and
uses a random restart policy, RR wraps the per-step reward.
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol

import numpy as np

from repro.core.config import PAFeatConfig
from repro.core.env import FeatureSelectionEnv
from repro.core.state import EnvState
from repro.obs.profile import PhaseProfiler
from repro.obs.telemetry import TelemetryWriter
from repro.obs.trace import NULL_TRACER, Tracer
from repro.rl.agent import DuelingDQNAgent
from repro.rl.replay import ReplayRegistry
from repro.rl.transition import Trajectory, Transition

# Hook signatures.
TaskSampler = Callable[[ReplayRegistry, np.random.Generator], int]
InitialStateProvider = Callable[[int], EnvState]
RewardTransform = Callable[[int, float], float]


class EpisodeCollector(Protocol):
    """Structural interface for a pluggable Buffer Filling Phase executor.

    The parallel rollout engine (:mod:`repro.rollout`) satisfies this; the
    protocol is structural precisely so this module needs no import edge —
    not even a deferred one — toward the engine package.
    """

    def fill(
        self, trainer: "FEATTrainer", n_episodes: int
    ) -> dict[int, list[Trajectory]]:
        """Collect ``n_episodes`` episodes into the trainer's buffers."""
        ...


class UniformTaskSampler:
    """Algorithm 1 line 5 default: choose a seen task uniformly."""

    def __init__(self, task_ids: list[int]) -> None:
        if not task_ids:
            raise ValueError("need at least one task id")
        self.task_ids = list(task_ids)

    def __call__(self, registry: ReplayRegistry, rng: np.random.Generator) -> int:
        del registry  # uniform sampling ignores progress
        return self.task_ids[int(rng.integers(len(self.task_ids)))]


@dataclass
class IterationStats:
    """Per-iteration training telemetry."""

    iteration: int
    episodes: int
    mean_loss: float
    rewards_per_task: dict[int, float] = field(default_factory=dict)
    task_probabilities: dict[int, float] = field(default_factory=dict)


class FEATTrainer:
    """Drives Algorithm 1 over a set of per-task environments."""

    def __init__(
        self,
        envs: Mapping[int, FeatureSelectionEnv],
        agent: DuelingDQNAgent,
        config: PAFeatConfig,
        rng: np.random.Generator,
        task_sampler: TaskSampler | None = None,
        initial_state_provider: InitialStateProvider | None = None,
        episode_end_hook: Callable[[int, Trajectory, EnvState], None] | None = None,
        reward_transform: RewardTransform | None = None,
        restart_policy: str = "learned",
        checkpoint_scorer: Callable[[dict[int, tuple[int, ...]]], float] | None = None,
    ) -> None:
        if not envs:
            raise ValueError("FEATTrainer needs at least one environment")
        if restart_policy not in ("learned", "random"):
            raise ValueError(
                f"restart_policy must be 'learned' or 'random', got {restart_policy!r}"
            )
        self.envs = dict(envs)
        self.agent = agent
        self.config = config
        self._rng = rng
        buffer_factory = None
        if config.agent.prioritized_replay:
            from repro.rl.prioritized import PrioritizedReplayBuffer

            buffer_factory = lambda capacity, window: PrioritizedReplayBuffer(
                capacity, trajectory_window=window
            )
        self.registry = ReplayRegistry(
            config.agent.replay_capacity,
            trajectory_window=config.its.trajectory_window,
            buffer_factory=buffer_factory,
        )
        self.task_sampler = task_sampler or UniformTaskSampler(sorted(self.envs))
        self.initial_state_provider = initial_state_provider
        self.episode_end_hook = episode_end_hook
        self.reward_transform = reward_transform
        self.restart_policy = restart_policy
        self.checkpoint_scorer = checkpoint_scorer
        self.history: list[IterationStats] = []
        # Best-snapshot tracking lives on the instance (not train() locals)
        # so it survives checkpoint/resume and spans multiple train() calls.
        self._best_score: float = -np.inf
        self._best_snapshot: dict[str, np.ndarray] | None = None
        # Optional parallel executor for the Buffer Filling Phase.  When
        # set, buffer_filling delegates to it; when None, the serial loop
        # below runs untouched.
        self.rollout_engine: EpisodeCollector | None = None
        # Observability hooks (wired by PAFeat.fit(telemetry=...)).  All
        # off by default; the telemetry stream is strictly observational —
        # it consumes no RNG and feeds nothing back into training state,
        # so enabling it leaves the run bit-identical (the parity gate in
        # benchmarks/bench_obs.py holds the contract).
        self.telemetry: TelemetryWriter | None = None
        self.tracer: Tracer = NULL_TRACER
        self.profiler: PhaseProfiler | None = None
        #: Optional per-episode enrichment hook: ``probe(task_id)`` returns
        #: extra event fields (e.g. the task's progress quantile from ITS).
        #: Must be read-only on trainer/scheduler state.
        self.telemetry_probe: Callable[[int], dict[str, Any]] | None = None

    # ------------------------------------------------------------------
    # Rollouts
    # ------------------------------------------------------------------
    def run_episode(
        self,
        task_id: int,
        start: EnvState | None = None,
        greedy: bool = False,
        random_policy: bool = False,
    ) -> Trajectory:
        """Roll one episode on ``task_id`` from ``start`` (default: reset).

        ``greedy`` disables exploration (used at inference); ``random_policy``
        picks uniform actions (used by the Go-Explore baseline and the
        w/o-PE ablation when restarting from customised states).
        """
        # Annotated so static call resolution binds env.step/reset to
        # FeatureSelectionEnv (the effect analysis can't see through the
        # Mapping element type).
        env: FeatureSelectionEnv = self.envs[task_id]
        state = env.reset() if start is None else env.reset_to(start)
        trajectory = Trajectory(task_id=task_id)
        final_score = env.reward_fn(env.selected) if env.selected else 0.0
        steps: list[tuple[np.ndarray, int, float, np.ndarray, bool]] = []
        while not env.done:
            if random_policy:
                action = int(self._rng.integers(env.N_ACTIONS))
            else:
                action = self.agent.act(state, greedy=greedy)
            next_state, reward, done, info = env.step(action)
            if self.reward_transform is not None:
                reward = self.reward_transform(task_id, reward)
            steps.append((state, action, reward, next_state, done))
            state = next_state
            final_score = info["score"]
        # Compute the discounted return-to-go R̂ for each step (Algorithm 1
        # lines 16-18 store it in the buffer alongside the transition).
        gamma = self.config.agent.gamma
        running_return = 0.0
        returns: list[float] = [0.0] * len(steps)
        for index in range(len(steps) - 1, -1, -1):
            running_return = steps[index][2] + gamma * running_return
            returns[index] = running_return
        for (step_state, action, reward, next_state, done), ret in zip(steps, returns):
            trajectory.append(
                Transition(
                    state=step_state,
                    action=action,
                    reward=reward,
                    next_state=next_state,
                    done=done,
                    return_to_go=ret,
                )
            )
        trajectory.selected_features = env.selected
        trajectory.final_reward = float(final_score)
        return trajectory

    def plan_episode(self) -> tuple[int, EnvState, bool]:
        """Sample one episode's ``(task, start, random_policy)`` triple.

        This is the only RNG-consuming part of episode set-up (task
        sampling and ITE state customisation), factored out so the rollout
        engine's planning stage draws from the very same streams in the
        very same order as the serial loop.
        """
        task_id = self.task_sampler(self.registry, self._rng)
        start = (
            self.initial_state_provider(task_id)
            if self.initial_state_provider is not None
            else EnvState(selected=(), position=0)
        )
        customised = start.position > 0 or bool(start.selected)
        random_policy = self.restart_policy == "random" and customised
        return task_id, start, random_policy

    def commit_episode(
        self, task_id: int, trajectory: Trajectory, start: EnvState
    ) -> None:
        """Fold one finished episode into trainer state (buffer + hooks).

        RNG-free, so serial collection and the rollout engine's merge
        barrier (which replays commits in plan order) produce identical
        state from identical trajectories.
        """
        self.registry.buffer(task_id).add_trajectory(trajectory)
        if self.episode_end_hook is not None:
            self.episode_end_hook(task_id, trajectory, start)
        if self.telemetry is not None:
            payload: dict[str, Any] = {
                "task": task_id,
                "reward": round(float(trajectory.final_reward), 6),
                "steps": trajectory.length,
                "n_selected": len(trajectory.selected_features),
                "epsilon": round(
                    float(self.agent.epsilon_schedule(self.agent.action_count)),
                    6,
                ),
            }
            if self.telemetry_probe is not None:
                payload.update(self.telemetry_probe(task_id))
            self.telemetry.emit("episode", **payload)

    def buffer_filling(self, n_episodes: int) -> dict[int, list[Trajectory]]:
        """Buffer Filling Phase (Algorithm 1): N resources → N episodes.

        This is the loop the parallel-safety certificate (PAR601) guards:
        every function reachable from here either touches no shared state
        or is a declared sync point.  With a :class:`EpisodeCollector`
        installed (``PAFeat.fit(rollout_workers=N)``) the N rollout
        resources *are* real worker processes; otherwise the serial loop
        below runs, one resource at a time.
        """
        if self.rollout_engine is not None:
            return self.rollout_engine.fill(self, n_episodes)
        collected: dict[int, list[Trajectory]] = {}
        for _ in range(n_episodes):
            task_id, start, random_policy = self.plan_episode()
            trajectory = self.run_episode(
                task_id, start=start, random_policy=random_policy
            )
            self.commit_episode(task_id, trajectory, start)
            collected.setdefault(task_id, []).append(trajectory)
        return collected

    def collect_episodes(self, n_episodes: int) -> dict[int, list[Trajectory]]:
        """Deprecated alias for :meth:`buffer_filling` (PR 3 rename)."""
        warnings.warn(
            "FEATTrainer.collect_episodes is deprecated; use "
            "buffer_filling instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.buffer_filling(n_episodes)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_iteration(self, iteration: int) -> IterationStats:
        """One outer iteration: fill buffers, then K update rounds."""
        profiler = self.profiler
        with self.tracer.span("train.iteration", iteration=iteration) as span:
            with self.tracer.span("train.fill", parent=span), (
                profiler.phase("train.fill") if profiler else nullcontext()
            ):
                collected = self.buffer_filling(
                    self.config.episodes_per_iteration
                )
            losses: list[float] = []
            with self.tracer.span("train.update", parent=span), (
                profiler.phase("train.update") if profiler else nullcontext()
            ):
                for _ in range(self.config.updates_per_iteration):
                    for task_id in self.registry.non_empty_task_ids():
                        buffer = self.registry.buffer(task_id)
                        batch = buffer.sample(
                            self.config.agent.batch_size, self._rng
                        )
                        losses.append(self.agent.update(batch, task_id=task_id))
                        if hasattr(buffer, "update_priorities"):
                            buffer.update_priorities(self.agent.td_errors(batch))
        stats = IterationStats(
            iteration=iteration,
            episodes=sum(len(v) for v in collected.values()),
            mean_loss=float(np.mean(losses)) if losses else 0.0,
            rewards_per_task={
                task_id: float(np.mean([t.final_reward for t in trajectories]))
                for task_id, trajectories in collected.items()
            },
        )
        self.history.append(stats)
        if self.telemetry is not None:
            self.telemetry.emit("iteration", **self._iteration_event(stats))
        return stats

    def _iteration_event(self, stats: IterationStats) -> dict[str, Any]:
        """The per-iteration telemetry payload (read-only aggregation)."""
        payload: dict[str, Any] = {
            "iteration": stats.iteration,
            "episodes": stats.episodes,
            "mean_loss": round(stats.mean_loss, 6),
            "rewards_per_task": {
                str(task): round(reward, 6)
                for task, reward in sorted(stats.rewards_per_task.items())
            },
        }
        cache = {"hits": 0, "misses": 0, "merged": 0, "entries": 0}
        seen_cache = False
        for env in self.envs.values():
            stats_fn = getattr(env.reward_fn, "stats", None)
            if stats_fn is None:
                continue
            seen_cache = True
            for key, value in stats_fn().items():
                cache[key] = cache.get(key, 0) + int(value)
        if seen_cache:
            lookups = cache["hits"] + cache["misses"]
            cache["hit_rate"] = (
                round(cache["hits"] / lookups, 6) if lookups else 0.0
            )
            payload["cache"] = cache
        # ITS allocation tallies, when the sampler is a scheduler's bound
        # method (the PAFeat wiring) or anything else exposing visits().
        owner = getattr(self.task_sampler, "__self__", None)
        visits_fn = getattr(owner, "visits", None)
        if visits_fn is not None:
            payload["its_visits"] = {
                str(task): int(count)
                for task, count in sorted(visits_fn().items())
            }
        if self.profiler is not None:
            fractions = self.profiler.fractions()
            if fractions:
                payload["phases"] = {
                    phase: round(fraction, 6)
                    for phase, fraction in sorted(fractions.items())
                }
        return payload

    def train(
        self,
        n_iterations: int | None = None,
        iteration_hook: Callable[[int], None] | None = None,
    ) -> list[IterationStats]:
        """Run the full Algorithm 1 loop with best-policy checkpointing.

        Every ``checkpoint_every`` iterations the greedy policy is scored on
        all seen tasks (cheap: rewards are cached); the best-scoring network
        snapshot is restored at the end.  DQN on small reward gaps can drift
        late in training — keeping the best seen-task policy removes that
        failure mode without touching the learning dynamics.

        The evaluation cadence is keyed on the *global* iteration counter
        (``len(self.history)``), so a run resumed from a checkpoint
        evaluates — and consumes RNG — at exactly the same iterations as an
        uninterrupted run.  ``iteration_hook`` is called with the global
        iteration number after each iteration (and after any best-policy
        evaluation); :meth:`repro.core.pafeat.PAFeat.fit` uses it to flush
        durable checkpoints and to honour stop requests, which it signals
        by raising (the best-policy restore is then skipped, preserving the
        mid-training state for the checkpoint).
        """
        total = n_iterations if n_iterations is not None else self.config.n_iterations
        if total < 1:
            raise ValueError(f"n_iterations must be >= 1, got {total}")
        start = len(self.history)
        checkpoint_every = max(1, self.config.checkpoint_every)
        stats_list = []
        for i in range(total):
            stats_list.append(self.train_iteration(start + i))
            global_iteration = start + i + 1
            if global_iteration % checkpoint_every == 0 or i == total - 1:
                score = self._checkpoint_score()
                if score > self._best_score:
                    self._best_score = score
                    self._best_snapshot = self.agent.save_policy()
            if iteration_hook is not None:
                iteration_hook(global_iteration)
        self.apply_best_snapshot()
        return stats_list

    def apply_best_snapshot(self) -> None:
        """Load the best-scoring policy seen so far into the agent (if any)."""
        if self._best_snapshot is not None:
            self.agent.load_policy(self._best_snapshot)

    # ------------------------------------------------------------------
    # Durable checkpointing (crash/resume)
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Complete training state as a ``(json_meta, arrays)`` payload.

        Covers everything :meth:`restore_state` needs to continue the run
        bit-identically: the agent's full learning state (networks, Adam
        moments, counters, RNG), every per-task replay buffer with its
        trajectory tail, the training-loop RNG stream, the iteration
        history and the best-snapshot-so-far.  Capture is passive — it
        draws no random numbers — so checkpointed and checkpoint-free runs
        follow identical RNG streams.
        """
        from dataclasses import asdict

        from repro.io.checkpoint import rng_state

        arrays: dict[str, np.ndarray] = {}
        agent_meta, agent_arrays = self.agent.capture_state()
        for name, value in agent_arrays.items():
            arrays[f"agent/{name}"] = value
        registry_meta, registry_arrays = self.registry.capture_state()
        for name, value in registry_arrays.items():
            arrays[f"replay/{name}"] = value
        if self._best_snapshot is not None:
            for name, value in self._best_snapshot.items():
                arrays[f"best/{name}"] = value
        meta = {
            "iteration": len(self.history),
            "history": [asdict(stats) for stats in self.history],
            "rng": rng_state(self._rng),
            "agent": agent_meta,
            "replay": registry_meta,
            "best_score": None if np.isneginf(self._best_score) else self._best_score,
            "has_best_snapshot": self._best_snapshot is not None,
        }
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        """Restore a snapshot captured by :meth:`capture_state`."""
        from repro.io.checkpoint import set_rng_state

        def sub(prefix: str) -> dict[str, np.ndarray]:
            return {
                name[len(prefix):]: value
                for name, value in arrays.items()
                if name.startswith(prefix)
            }

        self.agent.restore_state(meta["agent"], sub("agent/"))
        self.registry.restore_state(meta["replay"], sub("replay/"))
        set_rng_state(self._rng, meta["rng"])
        self.history = [
            IterationStats(
                iteration=int(stats["iteration"]),
                episodes=int(stats["episodes"]),
                mean_loss=float(stats["mean_loss"]),
                rewards_per_task={
                    int(k): float(v) for k, v in stats["rewards_per_task"].items()
                },
                task_probabilities={
                    int(k): float(v)
                    for k, v in stats.get("task_probabilities", {}).items()
                },
            )
            for stats in meta["history"]
        ]
        self._best_score = (
            -np.inf if meta.get("best_score") is None else float(meta["best_score"])
        )
        self._best_snapshot = sub("best/") if meta.get("has_best_snapshot") else None

    def _checkpoint_score(self) -> float:
        """Score the current greedy policy for best-snapshot selection."""
        subsets = {
            task_id: self.infer_subset(env) for task_id, env in self.envs.items()
        }
        if self.checkpoint_scorer is not None:
            return self.checkpoint_scorer(subsets)
        return self.greedy_seen_score(subsets)

    def greedy_seen_score(
        self, subsets: dict[int, tuple[int, ...]] | None = None
    ) -> float:
        """Mean shaped score of the greedy policy across all seen tasks."""
        if subsets is None:
            subsets = {
                task_id: self.infer_subset(env) for task_id, env in self.envs.items()
            }
        scores = []
        for task_id, env in self.envs.items():
            subset = subsets[task_id]
            raw = env.reward_fn(subset) if subset else 0.0
            penalty = env.config.size_penalty * len(subset) / env.n_features
            scores.append(raw - penalty)
        return float(np.mean(scores)) if scores else 0.0

    # ------------------------------------------------------------------
    # Inference (Algorithm 1 lines 22-24)
    # ------------------------------------------------------------------
    def infer_subset(self, env: FeatureSelectionEnv) -> tuple[int, ...]:
        """One greedy episode on an (unseen-task) environment → subset."""
        return greedy_subset(self.agent, env)


def greedy_subset(agent: DuelingDQNAgent, env: FeatureSelectionEnv) -> tuple[int, ...]:
    """Run one greedy episode of ``agent`` on ``env`` and return the subset.

    This is the whole of unseen-task inference (Algorithm 1 lines 22-24);
    it is a free function so persisted agents can select without a trainer.
    """
    state = env.reset()
    while not env.done:
        action = agent.act(state, greedy=True)
        state, _, _, _ = env.step(action)
    return env.selected
