"""Inter-Task Scheduler (paper Section III-C).

Two progress probes per seen task, computed from the recent trajectories in
its replay buffer:

* **Distance ratio** ζ (Eqn. 6): relative gap between the all-features
  classifier score ``P_all`` and the mean score of recent selected subsets.
  Large ζ → the policy is still far from the full-feature baseline → more
  potential for improvement.
* **Performance uncertainty** ξ (Eqn. 7): ``1 - mean_i |1/2 - p(i)|`` where
  ``p(i)`` is the fraction of recent subsets containing feature *i*.  When
  selection frequencies hover near 1/2 the policy is undecided → high ξ.

The output module (Eqn. 8) normalises each score across tasks, sums them
and softmaxes the result into sampling probabilities for the rollout
resources.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass

import numpy as np

from repro.analysis import tsan
from repro.analysis.contracts import check_probability_vector
from repro.analysis.numerics import normalized, stable_softmax
from repro.core.config import ITSConfig
from repro.rl.replay import ReplayRegistry
from repro.rl.transition import Trajectory

# Bound on the persisted probe-telemetry history (collect_progress calls).
PROGRESS_HISTORY_WINDOW = 256


@dataclass(frozen=True)
class TaskProgress:
    """Progress snapshot for one seen task at scheduling time."""

    task_id: int
    distance_ratio: float
    uncertainty: float
    n_trajectories: int


def distance_ratio(trajectories: list[Trajectory], all_features_score: float) -> float:
    """Eqn. 6: ``(P_all - P_avg) / P_all`` over the recent subsets.

    Trajectory ``final_reward`` is exactly ``P(F_i)`` — the pretrained
    classifier's score of the episode's final subset — so no re-evaluation
    is needed.  Clamped at 0: a policy already beating the all-features
    baseline has no remaining "distance".
    """
    if not trajectories:
        return 1.0
    if all_features_score <= 0.0:
        return 0.0
    average = float(np.mean([t.final_reward for t in trajectories]))
    return max(0.0, (all_features_score - average) / all_features_score)


def performance_uncertainty(trajectories: list[Trajectory], n_features: int) -> float:
    """Eqn. 7: instability of per-feature selection frequencies.

    Returns a value in [1/2, 1]: 1/2 when every feature is always or never
    selected (fully stable), 1 when every feature is selected exactly half
    the time (maximally unstable).
    """
    if n_features < 1:
        raise ValueError(f"n_features must be >= 1, got {n_features}")
    if not trajectories:
        return 1.0
    counts = np.zeros(n_features)
    for trajectory in trajectories:
        for feature in trajectory.selected_features:
            counts[feature] += 1.0
    frequencies = counts / len(trajectories)
    return float(1.0 - np.mean(np.abs(0.5 - frequencies)))


class InterTaskScheduler:
    """Allocates rollout probability mass across seen tasks (Eqn. 8)."""

    def __init__(
        self,
        task_ids: list[int],
        all_features_scores: dict[int, float],
        n_features: int,
        config: ITSConfig,
    ) -> None:
        if not task_ids:
            raise ValueError("scheduler needs at least one task")
        missing = [t for t in task_ids if t not in all_features_scores]
        if missing:
            raise ValueError(f"missing all-features baselines for tasks {missing}")
        self.task_ids = list(task_ids)
        self.all_features_scores = dict(all_features_scores)
        self.n_features = n_features
        self.config = config
        self.last_progress: list[TaskProgress] = []
        # Rolling telemetry of the distance-ratio / uncertainty probes —
        # persisted in checkpoints so a resumed run keeps its progress
        # picture across restarts (and dashboards keep their history).
        self.progress_history: deque[list[TaskProgress]] = deque(
            maxlen=PROGRESS_HISTORY_WINDOW
        )
        # Per-task rollout allocation tally — the "atomic ITS visit counter"
        # sync point from the PAR601 certificate (ARCHITECTURE §7.2).  The
        # coordinator plans every episode serially, but the counter is also
        # readable from telemetry threads, so updates go through a
        # TrackedLock and feed the runtime sanitizer.
        self.visit_counts: dict[int, int] = {t: 0 for t in self.task_ids}
        self._visit_lock = tsan.TrackedLock("its.visits")

    def collect_progress(self, registry: ReplayRegistry) -> list[TaskProgress]:
        """Information Collecting Phase (Eqn. 4) for every seen task."""
        progress = []
        for task_id in self.task_ids:
            trajectories = registry.buffer(task_id).recent_trajectories(
                self.config.trajectory_window
            )
            progress.append(
                TaskProgress(
                    task_id=task_id,
                    distance_ratio=distance_ratio(
                        trajectories, self.all_features_scores[task_id]
                    ),
                    uncertainty=performance_uncertainty(trajectories, self.n_features),
                    n_trajectories=len(trajectories),
                )
            )
        self.last_progress = progress
        self.progress_history.append(progress)
        return progress

    def probabilities(self, registry: ReplayRegistry) -> np.ndarray:
        """Probability Determination Phase (Eqn. 8): softmax of blended scores.

        Until every task has ``min_trajectories`` recorded episodes the
        allocation stays uniform — the probes are too noisy to act on.
        """
        progress = self.collect_progress(registry)
        n = len(progress)
        if any(p.n_trajectories < self.config.min_trajectories for p in progress):
            return np.full(n, 1.0 / n)
        zeta = np.array([p.distance_ratio for p in progress])
        xi = np.array([p.uncertainty for p in progress])
        blended = (normalized(zeta) + normalized(xi)) / self.config.temperature
        return check_probability_vector("its.probabilities", stable_softmax(blended), n)

    def sample_task(self, registry: ReplayRegistry, rng: np.random.Generator) -> int:
        """Draw one seen task according to the current allocation."""
        probabilities = self.probabilities(registry)
        index = rng.choice(len(self.task_ids), p=probabilities)
        task_id = self.task_ids[int(index)]
        self.record_visit(task_id)
        return task_id

    def record_visit(self, task_id: int) -> None:
        """Atomically count one planned rollout episode for ``task_id``."""
        with self._visit_lock:
            tsan.note(self, "visit_counts", write=True)
            self.visit_counts[task_id] = self.visit_counts.get(task_id, 0) + 1

    def visits(self) -> dict[int, int]:
        """A consistent copy of the per-task allocation tally."""
        with self._visit_lock:
            tsan.note(self, "visit_counts")
            return dict(self.visit_counts)

    # ------------------------------------------------------------------
    # Durable checkpointing
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """Snapshot the probe telemetry (JSON-able; the ITS holds no RNG)."""
        return {
            "last_progress": [asdict(p) for p in self.last_progress],
            "progress_history": [
                [asdict(p) for p in snapshot] for snapshot in self.progress_history
            ],
            "visit_counts": {str(t): int(n) for t, n in self.visits().items()},
        }

    def restore_state(self, meta: dict) -> None:
        """Restore telemetry captured by :meth:`capture_state`."""
        self.last_progress = [TaskProgress(**p) for p in meta.get("last_progress", [])]
        self.progress_history.clear()
        for snapshot in meta.get("progress_history", []):
            self.progress_history.append([TaskProgress(**p) for p in snapshot])
        with self._visit_lock:
            self.visit_counts = {t: 0 for t in self.task_ids}
            for key, count in meta.get("visit_counts", {}).items():
                self.visit_counts[int(key)] = int(count)
