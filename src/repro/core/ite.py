"""Intra-Task Explorer (paper Section III-D).

Maintains one :class:`~repro.core.etree.ETree` per seen task.  When invoked
at the start of an episode it returns a *customised initial state*: the
most exploration-worthy visited state per the UCT rule (Eqn. 9).  The agent
then explores onward from that state using its current learned policy —
the "policy exploitation" (PE) that distinguishes PA-FEAT from Go-Explore,
which restarts with a *random* policy.  The ``use_policy_exploitation``
switch exists precisely for that ablation (Table III, "ours w/o PE").
"""

from __future__ import annotations

import numpy as np

from repro.analysis import tsan
from repro.core.config import ITEConfig
from repro.core.etree import ETree
from repro.core.state import EnvState
from repro.rl.transition import Trajectory


class IntraTaskExplorer:
    """Per-task E-Trees plus the initial-state customisation strategy."""

    def __init__(self, n_features: int, config: ITEConfig, rng: np.random.Generator) -> None:
        self.n_features = n_features
        self.config = config
        self._rng = rng
        self._trees: dict[int, ETree] = {}
        self.invocations = 0
        self.customised_starts = 0
        # The "E-Tree update barrier" sync point from the PAR601 certificate
        # (ARCHITECTURE §7.2): the rollout engine folds finished episodes
        # back at the merge barrier, and every tree mutation goes through
        # this lock so concurrent recording is a sanitizer violation rather
        # than silent corruption.
        self._record_lock = tsan.TrackedLock("ite.record")

    def tree(self, task_id: int) -> ETree:
        """The E-Tree for a seen task, created lazily."""
        if task_id not in self._trees:
            self._trees[task_id] = ETree(
                self.n_features,
                exploration_constant=self.config.exploration_constant,
                size_penalty=self.config.size_penalty,
                max_nodes=self.config.max_tree_nodes,
            )
        return self._trees[task_id]

    def initial_state(self, task_id: int) -> EnvState:
        """Customised initial state for the next episode on ``task_id``.

        With probability ``invoke_probability`` (and once the tree has
        grown beyond the root) returns the UCT-selected valuable state;
        otherwise returns the default initial state, preserving coverage of
        shallow prefixes.
        """
        self.invocations += 1
        tree = self.tree(task_id)
        use_tree = (
            tree.n_nodes > 1
            and self._rng.random() < self.config.invoke_probability
        )
        if not use_tree:
            return EnvState(selected=(), position=0)
        self.customised_starts += 1
        return tree.select_state(self._rng)

    def record(self, task_id: int, trajectory: Trajectory, start: EnvState) -> None:
        """Fold a finished episode back into the task's E-Tree."""
        with self._record_lock:
            tsan.note(self, "_trees", write=True)
            self.tree(task_id).add_trajectory(trajectory, start=start)

    # ------------------------------------------------------------------
    # Durable checkpointing
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple[dict, dict[str, "np.ndarray"]]:
        """Snapshot per-task E-Trees, counters and the restart-RNG stream."""
        from repro.io.checkpoint import rng_state

        meta: dict = {
            "invocations": self.invocations,
            "customised_starts": self.customised_starts,
            "rng": rng_state(self._rng),
            "trees": {},
        }
        arrays: dict[str, np.ndarray] = {}
        for task_id, tree in self._trees.items():
            tree_meta, tree_arrays = tree.capture_state()
            meta["trees"][str(task_id)] = tree_meta
            for name, value in tree_arrays.items():
                arrays[f"tree/{task_id}/{name}"] = value
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict[str, "np.ndarray"]) -> None:
        """Restore a snapshot captured by :meth:`capture_state`."""
        from repro.io.checkpoint import set_rng_state

        self.invocations = int(meta["invocations"])
        self.customised_starts = int(meta["customised_starts"])
        set_rng_state(self._rng, meta["rng"])
        self._trees.clear()
        for key, tree_meta in meta.get("trees", {}).items():
            task_id = int(key)
            prefix = f"tree/{task_id}/"
            self.tree(task_id).restore_state(
                tree_meta,
                {
                    name[len(prefix):]: value
                    for name, value in arrays.items()
                    if name.startswith(prefix)
                },
            )

    @property
    def exploration_policy_is_learned(self) -> bool:
        """True when episodes from customised states follow the learned policy."""
        return self.config.use_policy_exploitation
