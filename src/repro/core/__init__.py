"""PA-FEAT core: the FEAT framework, Inter-Task Scheduler and Intra-Task Explorer.

Public entry point is :class:`repro.core.pafeat.PAFeat`::

    from repro import PAFeat, PAFeatConfig, load_mini_dataset

    suite = load_mini_dataset("yeast")
    train, test = suite.split_rows(0.7, np.random.default_rng(0))
    model = PAFeat(PAFeatConfig(n_iterations=150)).fit(train)
    subset = model.select(train.unseen_tasks[0])
"""

from repro.core.config import (
    AgentConfig,
    ClassifierConfig,
    EnvConfig,
    ITEConfig,
    ITSConfig,
    PAFeatConfig,
)
from repro.core.env import FeatureSelectionEnv
from repro.core.etree import ETree, ETreeNode
from repro.core.feat import FEATTrainer, UniformTaskSampler
from repro.core.ite import IntraTaskExplorer
from repro.core.its import InterTaskScheduler, TaskProgress
from repro.core.pafeat import PAFeat
from repro.core.state import EnvState, encode_state, state_dim

__all__ = [
    "AgentConfig",
    "ClassifierConfig",
    "ETree",
    "ETreeNode",
    "EnvConfig",
    "EnvState",
    "FEATTrainer",
    "FeatureSelectionEnv",
    "ITEConfig",
    "ITSConfig",
    "InterTaskScheduler",
    "IntraTaskExplorer",
    "PAFeat",
    "PAFeatConfig",
    "TaskProgress",
    "UniformTaskSampler",
    "encode_state",
    "state_dim",
]
