"""Configuration dataclasses for PA-FEAT.

Every knob of the reproduction is collected here as frozen dataclasses so
experiment specs are hashable, printable and comparable.  Defaults are
sized for the mini datasets used by tests; the experiment registry scales
them up for full runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EnvConfig:
    """Feature-selection MDP parameters.

    Attributes:
        max_feature_ratio: ``mfr`` of Algorithm 1 — the episode truncates
            once more than this fraction of features is selected.
        reward_mode: ``"performance"`` gives each step the current subset's
            classifier score (the paper's Eqn. 2); ``"delta"`` gives the
            increment over the previous step's score, which leaves episode
            return equal to the final score and speeds credit assignment.
        reward_metric: metric the pretrained classifier is scored with
            (the paper uses AUC).
        size_penalty: subtracted from the subset score as
            ``size_penalty * |F| / m`` before rewards are computed.  The
            paper's reward relies on its classifier penalising bloated
            subsets implicitly; our mask-augmented classifier is robust to
            extra features by construction, so the pressure towards lean
            subsets ("higher-performing with as few features as possible",
            Section III-D) is reintroduced explicitly.  Set to 0 for the
            unshaped Eqn. 2 reward.
    """

    max_feature_ratio: float = 0.6
    reward_mode: str = "delta"
    reward_metric: str = "auc"
    size_penalty: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 < self.max_feature_ratio <= 1.0:
            raise ValueError(
                f"max_feature_ratio must be in (0, 1], got {self.max_feature_ratio}"
            )
        if self.reward_mode not in ("performance", "delta"):
            raise ValueError(
                f"reward_mode must be 'performance' or 'delta', got {self.reward_mode!r}"
            )
        if self.reward_metric not in ("auc", "f1", "accuracy"):
            raise ValueError(
                f"reward_metric must be 'auc', 'f1' or 'accuracy', "
                f"got {self.reward_metric!r}"
            )
        if self.size_penalty < 0.0:
            raise ValueError(f"size_penalty must be >= 0, got {self.size_penalty}")


@dataclass(frozen=True)
class AgentConfig:
    """Dueling-DQN hyperparameters (paper Eqn. 1)."""

    hidden: tuple[int, ...] = (64,)
    gamma: float = 0.99
    lr: float = 5e-3
    batch_size: int = 32
    target_sync_every: int = 50
    epsilon_start: float = 1.0
    epsilon_end: float = 0.15
    epsilon_decay_steps: int = 3000
    grad_clip: float = 10.0
    replay_capacity: int = 20_000
    prioritized_replay: bool = False

    def __post_init__(self) -> None:
        if not self.hidden:
            raise ValueError("agent needs at least one hidden layer")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {self.gamma}")
        if not 0.0 <= self.epsilon_end <= self.epsilon_start <= 1.0:
            raise ValueError(
                f"need 0 <= epsilon_end <= epsilon_start <= 1, got "
                f"[{self.epsilon_end}, {self.epsilon_start}]"
            )


@dataclass(frozen=True)
class ITSConfig:
    """Inter-Task Scheduler parameters (paper Section III-C)."""

    trajectory_window: int = 16
    temperature: float = 1.0
    min_trajectories: int = 4

    def __post_init__(self) -> None:
        if self.trajectory_window < 1:
            raise ValueError(
                f"trajectory_window must be >= 1, got {self.trajectory_window}"
            )
        if self.temperature <= 0.0:
            raise ValueError(f"temperature must be positive, got {self.temperature}")
        if self.min_trajectories < 1:
            raise ValueError(
                f"min_trajectories must be >= 1, got {self.min_trajectories}"
            )


@dataclass(frozen=True)
class ITEConfig:
    """Intra-Task Explorer parameters (paper Section III-D, Eqn. 9)."""

    exploration_constant: float = 1.0
    size_penalty: float = 0.1
    invoke_probability: float = 0.5
    max_tree_nodes: int = 50_000
    use_policy_exploitation: bool = True

    def __post_init__(self) -> None:
        if self.exploration_constant <= 0.0:
            raise ValueError(
                f"exploration_constant must be positive, got {self.exploration_constant}"
            )
        if self.size_penalty < 0.0:
            raise ValueError(f"size_penalty must be >= 0, got {self.size_penalty}")
        if not 0.0 <= self.invoke_probability <= 1.0:
            raise ValueError(
                f"invoke_probability must be in [0, 1], got {self.invoke_probability}"
            )
        if self.max_tree_nodes < 1:
            raise ValueError(f"max_tree_nodes must be >= 1, got {self.max_tree_nodes}")


@dataclass(frozen=True)
class ClassifierConfig:
    """Pretrained masked-classifier (reward backend) parameters."""

    hidden: tuple[int, ...] = (32, 16)
    lr: float = 1e-2
    n_epochs: int = 25
    batch_size: int = 64
    mask_augment: float = 0.3

    def __post_init__(self) -> None:
        if not self.hidden:
            raise ValueError("classifier needs at least one hidden layer")
        if self.n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {self.n_epochs}")


@dataclass(frozen=True)
class PAFeatConfig:
    """Top-level PA-FEAT configuration.

    Attributes:
        n_iterations: outer training iterations (Algorithm 1's loop).
        episodes_per_iteration: rollout "resources" N per iteration.
        updates_per_iteration: Q-network minibatch updates K per iteration.
        use_its / use_ite: ablation switches for the two components.
        train_fraction: per-run row split used to fit reward classifiers.
        checkpoint_every: evaluate the greedy policy on all seen tasks every
            this many iterations and keep the best snapshot (restored after
            training).
        seed: master seed; all randomness derives from it.
    """

    n_iterations: int = 200
    episodes_per_iteration: int = 4
    updates_per_iteration: int = 4
    checkpoint_every: int = 10
    use_its: bool = True
    use_ite: bool = True
    train_fraction: float = 0.7
    seed: int = 0
    env: EnvConfig = field(default_factory=EnvConfig)
    agent: AgentConfig = field(default_factory=AgentConfig)
    its: ITSConfig = field(default_factory=ITSConfig)
    ite: ITEConfig = field(default_factory=ITEConfig)
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)

    def __post_init__(self) -> None:
        if self.n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {self.n_iterations}")
        if self.episodes_per_iteration < 1:
            raise ValueError(
                f"episodes_per_iteration must be >= 1, got {self.episodes_per_iteration}"
            )
        if self.updates_per_iteration < 0:
            raise ValueError(
                f"updates_per_iteration must be >= 0, got {self.updates_per_iteration}"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError(
                f"train_fraction must be in (0, 1), got {self.train_fraction}"
            )
