"""Experience-Tree (E-Tree) for the Intra-Task Explorer (paper Section III-D).

Because the action space is binary, every visited logical state corresponds
to a unique *action prefix* — so visited states organise naturally into a
binary prefix tree.  Each node stores visit counts and an accumulated value
(final-episode performance, discounted by a small subset-size penalty so
that "higher-performing with as few features as possible" trajectories rank
first).  UCT-style selection (Eqn. 9)::

    rho(F') = mu_hat(F') + sqrt(c_e * ln(T_F) / T_{F,F'})

descends from the root picking the child with the highest score until it
reaches a node with an unexplored branch or a leaf; that node's state is
returned as the customised initial state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis import tsan
from repro.core.state import EnvState
from repro.rl.transition import Trajectory


@dataclass
class ETreeNode:
    """One visited state: its prefix, visit count and value accumulator."""

    state: EnvState
    visits: int = 0
    value_sum: float = 0.0
    children: dict[int, "ETreeNode"] = field(default_factory=dict)

    @property
    def mean_value(self) -> float:
        return self.value_sum / self.visits if self.visits else 0.0

    def child(self, action: int) -> "ETreeNode | None":
        return self.children.get(action)

    def is_leaf(self) -> bool:
        return not self.children

    def uct_score(self, parent_visits: int, exploration_constant: float) -> float:
        """Eqn. 9: value estimate plus the UCT exploration bonus."""
        if self.visits == 0:
            return float("inf")
        bonus = math.sqrt(
            exploration_constant * math.log(max(parent_visits, 1)) / self.visits
        )
        return self.mean_value + bonus


class ETree:
    """Prefix tree over visited feature-selection states for one task."""

    def __init__(
        self,
        n_features: int,
        exploration_constant: float = 1.0,
        size_penalty: float = 0.1,
        max_nodes: int = 50_000,
    ) -> None:
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if exploration_constant <= 0.0:
            raise ValueError(
                f"exploration_constant must be positive, got {exploration_constant}"
            )
        if size_penalty < 0.0:
            raise ValueError(f"size_penalty must be >= 0, got {size_penalty}")
        if max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
        self.n_features = n_features
        self.exploration_constant = exploration_constant
        self.size_penalty = size_penalty
        self.max_nodes = max_nodes
        self.root = ETreeNode(EnvState(selected=(), position=0))
        self.n_nodes = 1

    def trajectory_value(self, trajectory: Trajectory) -> float:
        """Node credit for a trajectory: final score minus a size penalty."""
        size_fraction = len(trajectory.selected_features) / self.n_features
        return trajectory.final_reward - self.size_penalty * size_fraction

    def add_trajectory(self, trajectory: Trajectory, start: EnvState | None = None) -> None:
        """Extend the tree along a trajectory's action sequence.

        ``start`` is the state the episode was launched from (the default
        initial state, or an ITE-customised one); credit propagates to every
        node on the path, including nodes of the existing prefix.
        """
        # Mutation must happen under the caller's E-Tree barrier (the ITE
        # record lock) — the note lets the runtime sanitizer replay the
        # held-lock set and flag any unguarded concurrent update.
        tsan.note(self, "root", write=True)
        value = self.trajectory_value(trajectory)
        node = self._descend_to(start) if start is not None else self.root
        node.visits += 1
        node.value_sum += value
        for transition in trajectory.transitions:
            action = transition.action
            child = node.children.get(action)
            if child is None:
                if self.n_nodes >= self.max_nodes:
                    break
                selected = (
                    node.state.selected + (node.state.position,)
                    if action == 1
                    else node.state.selected
                )
                child = ETreeNode(
                    EnvState(selected=selected, position=node.state.position + 1)
                )
                node.children[action] = child
                self.n_nodes += 1
            child.visits += 1
            child.value_sum += value
            node = child

    def _descend_to(self, start: EnvState) -> ETreeNode:
        """Walk/extend the prefix path for ``start`` and return its node."""
        node = self.root
        selected = set(start.selected)
        for position in range(start.position):
            action = 1 if position in selected else 0
            child = node.children.get(action)
            if child is None:
                child = ETreeNode(
                    EnvState(
                        selected=node.state.selected + ((position,) if action else ()),
                        position=position + 1,
                    )
                )
                node.children[action] = child
                self.n_nodes += 1
            node = child
        return node

    def select_state(self, rng: np.random.Generator) -> EnvState:
        """Return the most exploration-worthy visited state (Eqn. 9).

        Descends by UCT until reaching a node that is a leaf or has an
        untried branch (a natural frontier for further exploration).
        Unvisited children score infinity, so frontiers are preferred.
        """
        node = self.root
        while not node.is_leaf():
            # A node whose scanned feature still has an untaken branch is a
            # frontier: exploring from here can reach genuinely new states.
            if len(node.children) < 2 and node.state.position < self.n_features:
                break
            # Actions are binary (take/skip the scanned feature), so the
            # UCT argmax is a direct comparison over at most two children —
            # no per-level dict/list construction on this hot descent loop.
            items = iter(node.children.items())
            action, child = next(items)
            best_score = child.uct_score(node.visits, self.exploration_constant)
            for other_action, other_child in items:
                other_score = other_child.uct_score(
                    node.visits, self.exploration_constant
                )
                if other_score > best_score:
                    action, best_score = other_action, other_score
                elif other_score == best_score:
                    # Tie: draw between the two, first-inserted first, which
                    # matches the previous dict-comprehension tie-breaking.
                    action = int(rng.choice((action, other_action)))
            node = node.children[action]
        return node.state

    # ------------------------------------------------------------------
    # Durable checkpointing
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Flatten the tree into parallel arrays (BFS order).

        Node states are not stored: a child's :class:`EnvState` is fully
        determined by its parent's state and the edge action, exactly as
        :meth:`add_trajectory` builds it.  BFS enumerates each node's
        children in insertion order, so :meth:`restore_state` reproduces
        the ``children`` dict ordering — which matters because UCT
        tie-breaking iterates that dict.
        """
        parents: list[int] = [-1]
        actions: list[int] = [-1]
        visits: list[int] = [self.root.visits]
        value_sums: list[float] = [self.root.value_sum]
        queue: list[tuple[int, ETreeNode]] = [(0, self.root)]
        cursor = 0
        while cursor < len(queue):
            index, node = queue[cursor]
            cursor += 1
            for action, child in node.children.items():
                child_index = len(parents)
                parents.append(index)
                actions.append(action)
                visits.append(child.visits)
                value_sums.append(child.value_sum)
                queue.append((child_index, child))
        arrays = {
            "parents": np.array(parents, dtype=np.int64),
            "actions": np.array(actions, dtype=np.int64),
            "visits": np.array(visits, dtype=np.int64),
            "value_sums": np.array(value_sums, dtype=np.float64),
        }
        return {"n_nodes": self.n_nodes}, arrays

    def restore_state(self, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        """Rebuild the tree from :meth:`capture_state` arrays."""
        parents = arrays["parents"]
        actions = arrays["actions"]
        visits = arrays["visits"]
        value_sums = arrays["value_sums"]
        self.root = ETreeNode(
            EnvState(selected=(), position=0),
            visits=int(visits[0]),
            value_sum=float(value_sums[0]),
        )
        nodes = [self.root]
        for i in range(1, len(parents)):
            parent = nodes[int(parents[i])]
            action = int(actions[i])
            selected = (
                parent.state.selected + (parent.state.position,)
                if action == 1
                else parent.state.selected
            )
            child = ETreeNode(
                EnvState(selected=selected, position=parent.state.position + 1),
                visits=int(visits[i]),
                value_sum=float(value_sums[i]),
            )
            parent.children[action] = child
            nodes.append(child)
        self.n_nodes = len(nodes)
        if self.n_nodes != int(meta.get("n_nodes", self.n_nodes)):
            raise ValueError(
                f"E-Tree snapshot inconsistent: {self.n_nodes} nodes decoded, "
                f"meta says {meta.get('n_nodes')}"
            )

    def best_terminal_subset(self) -> tuple[tuple[int, ...], float] | None:
        """Best-valued deepest path (diagnostics): (subset, mean value)."""
        best: tuple[tuple[int, ...], float] | None = None
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf() and node.visits:
                candidate = (node.state.selected, node.mean_value)
                if best is None or candidate[1] > best[1]:
                    best = candidate
            stack.extend(node.children.values())
        return best
