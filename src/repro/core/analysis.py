"""Diagnostics for trained PA-FEAT models.

Tools a practitioner reaches for once a selector is trained:

* :func:`explain_selection` — replay the greedy episode for a task and
  report, per scanned feature, the state the agent saw (correlation,
  percentile, redundancy, remaining budget) and the Q-gap behind its
  decision.
* :func:`policy_feature_scores` — a per-feature "importance" vector from
  the policy's point of view: the advantage of selecting each feature when
  it comes under the cursor.
* :func:`q_gap_statistics` — distribution of |Q(select) − Q(deselect)|
  along the greedy path; near-zero gaps flag undertrained or indifferent
  decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.env import FeatureSelectionEnv
from repro.core.pafeat import PAFeat
from repro.data.stats import pearson_representation
from repro.data.tasks import Task


@dataclass(frozen=True)
class Decision:
    """One step of a greedy selection episode, annotated."""

    position: int
    feature_name: str
    correlation: float
    percentile: float
    redundancy: float
    q_deselect: float
    q_select: float
    selected: bool

    @property
    def q_gap(self) -> float:
        """Q(select) − Q(deselect); positive means the agent wanted it."""
        return self.q_select - self.q_deselect


def _inference_env(model: PAFeat, task: Task) -> FeatureSelectionEnv:
    representation = pearson_representation(task.features, task.labels)
    return FeatureSelectionEnv(
        task.label_index,
        representation,
        None,
        model.config.env,
        feature_corr=model._feature_corr,
    )


def explain_selection(model: PAFeat, task: Task) -> list[Decision]:
    """Replay the greedy episode for ``task`` with per-step annotations."""
    agent = model.inference_agent()
    env = _inference_env(model, task)
    representation = env.task_representation
    state = env.reset()
    decisions: list[Decision] = []
    while not env.done:
        position = env.position
        q_values = agent.q_values(state)[0]
        action = int(np.argmax(q_values))
        redundancy = 0.0
        if env.feature_corr is not None and env.selected:
            redundancy = float(
                np.max(env.feature_corr[position, np.asarray(env.selected)])
            )
        decisions.append(
            Decision(
                position=position,
                feature_name=task.table.feature_names[position],
                correlation=float(representation[position]),
                percentile=float(np.mean(representation <= representation[position])),
                redundancy=redundancy,
                q_deselect=float(q_values[0]),
                q_select=float(q_values[1]),
                selected=action == 1,
            )
        )
        state, _, _, _ = env.step(action)
    return decisions


def policy_feature_scores(model: PAFeat, task: Task) -> np.ndarray:
    """Per-feature Q-gap along the greedy path (the policy's importances).

    Features past the episode's end (budget truncation) get ``nan``: the
    policy never judged them.
    """
    decisions = explain_selection(model, task)
    scores = np.full(task.n_features, np.nan)
    for decision in decisions:
        scores[decision.position] = decision.q_gap
    return scores


@dataclass(frozen=True)
class QGapStatistics:
    """Summary of decision confidence along a greedy episode."""

    mean_abs_gap: float
    min_abs_gap: float
    max_abs_gap: float
    n_decisions: int
    n_selected: int


def q_gap_statistics(model: PAFeat, task: Task) -> QGapStatistics:
    """Aggregate the |Q-gap| distribution of one greedy episode."""
    decisions = explain_selection(model, task)
    if not decisions:
        raise ValueError("episode produced no decisions")
    gaps = np.array([abs(d.q_gap) for d in decisions])
    return QGapStatistics(
        mean_abs_gap=float(gaps.mean()),
        min_abs_gap=float(gaps.min()),
        max_abs_gap=float(gaps.max()),
        n_decisions=len(decisions),
        n_selected=sum(d.selected for d in decisions),
    )


def render_explanation(decisions: list[Decision], max_rows: int = 20) -> str:
    """Human-readable table of a selection episode."""
    from repro.analysis.reporting import render_table

    rows = [
        [
            d.position,
            d.feature_name,
            d.correlation,
            d.percentile,
            d.redundancy,
            d.q_gap,
            "select" if d.selected else "skip",
        ]
        for d in decisions[:max_rows]
    ]
    table = render_table(
        ["pos", "feature", "|corr|", "pct", "redund", "q-gap", "action"],
        rows,
        title="greedy selection episode",
        precision=3,
    )
    if len(decisions) > max_rows:
        table += f"\n... {len(decisions) - max_rows} more steps"
    return table
