"""Batched greedy inference: B unseen-task episodes in lockstep.

Sequential fast selection (:func:`repro.core.feat.greedy_subset`) runs one
greedy episode per task, calling the Q-network once per feature step — so a
batch of B tasks over m features costs B·m single-row forward passes, and
the per-call Python overhead (validation, dispatch, layer loop) dominates
the arithmetic for PA-FEAT-sized networks.

The scan MDP makes a better schedule trivial: every episode starts at
position 0 and advances the cursor by exactly one feature per step, so B
episodes stay *position-synchronised* for their entire lifetime.  This
kernel exploits that: it maintains one ``(B, state_dim)`` state matrix
incrementally, and per feature step issues a single batched greedy forward
(:meth:`repro.rl.agent.DuelingDQNAgent.act_batch`) over the still-active
rows, masking out episodes that truncated early on the
``max_feature_ratio`` budget.  m forwards total, regardless of B.

Bit-exactness with the sequential path is by construction, not by luck.
Profiling shows per-row :func:`repro.core.state.encode_state` calls (not
the network) dominate a naive lockstep loop, so the kernel reproduces the
encoder's arithmetic with operations that are *bit-identical*, never
merely close (the per-scalar arguments live next to the code below).  The
three load-bearing facts:

* ``np.mean(x)`` for float64 ``x`` is ``np.add.reduce(x) / x.size`` — the
  same pairwise-summation ufunc loop minus wrapper overhead — and the
  per-row reduction of a C-contiguous 2-D ``add.reduce(..., axis=1)``
  applies that identical loop to each row;
* max and comparison-count scalars are order-independent *exactly* (not
  just approximately), so suffix maxima may be precomputed with
  ``maximum.accumulate`` and percentiles with a broadcast ``<=`` count;
* everything else (progress, cursor |corr|, budget fractions) is a copy
  or an identical scalar expression.

Action selection is ``argmax`` over the same Q rows the sequential
``act(greedy=True)`` computes — they agree whenever the row's argmax is
unique (:meth:`~repro.rl.agent.DuelingDQNAgent.act_batch` documents the
exact-tie caveat).  Termination (cursor past the end, or selected count
reaching ``floor(max_feature_ratio · m)``) mirrors
:class:`~repro.core.env.FeatureSelectionEnv` exactly, and the cold-policy
empty-subset fallback (the single most-correlated feature) is the same one
:meth:`repro.core.pafeat.PAFeat.select` applies.  A property test
(``tests/test_serve_engine.py``) pins batched == sequential across random
suites, seeds and feature counts straddling numpy's pairwise-summation
block size.

The serving layer (:mod:`repro.serve.engine`) wraps this kernel with
chunking, registries and metrics; it lives here in ``core`` because the
layer contract places serving above the facade, not below it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.analysis.contracts import check_state_batch
from repro.core.config import EnvConfig
from repro.core.state import N_SCAN_SCALARS, state_dim

if TYPE_CHECKING:
    from repro.rl.agent import DuelingDQNAgent

# Column offsets of the scan scalars inside the encoded state; must mirror
# the layout of :func:`repro.core.state.encode_state` (`[rep | mask | s0..s8]`).
_S_PROGRESS = 0  # position / m
_S_CURSOR = 1  # |corr| under the cursor
_S_FRAC_SELECTED = 2  # len(selected) / m
_S_MEAN_SELECTED = 3  # mean |corr| of the selected set
_S_MEAN_REMAINING = 4  # mean |corr| of rep[position:]
_S_MAX_REMAINING = 5  # max |corr| of rep[position:]
_S_BUDGET_LEFT = 6  # remaining budget fraction
_S_PERCENTILE = 7  # fraction of features with |corr| <= cursor's
_S_REDUNDANCY = 8  # max feature-feature |corr| cursor vs selected


def batched_greedy_subsets(
    agent: "DuelingDQNAgent",
    representations: Sequence[np.ndarray],
    config: EnvConfig,
    feature_corr: np.ndarray | None = None,
) -> list[tuple[int, ...]]:
    """Greedy subsets for a batch of task representations, in lockstep.

    ``representations`` holds one |Pearson| task-representation vector per
    task; all tasks must share one feature space (equal length m) because
    the state dimension — and therefore the Q-network — is a function of m.
    Returns one subset per task, in input order, bit-exact with running
    :meth:`repro.core.pafeat.PAFeat.select` per task (including the
    most-correlated-feature fallback when a cold policy deselects
    everything).
    """
    reps = [np.asarray(r, dtype=np.float64).reshape(-1) for r in representations]
    if not reps:
        return []
    n_features = reps[0].shape[0]
    if n_features < 1:
        raise ValueError("task representations need at least one feature")
    for index, rep in enumerate(reps):
        if rep.shape[0] != n_features:
            raise ValueError(
                f"representation {index} has {rep.shape[0]} features; the "
                f"batch is over a {n_features}-feature space"
            )
    if feature_corr is not None:
        feature_corr = np.asarray(feature_corr, dtype=np.float64)
        if feature_corr.shape != (n_features, n_features):
            raise ValueError(
                f"feature_corr must be ({n_features}, {n_features}), "
                f"got {feature_corr.shape}"
            )
    n_tasks = len(reps)
    m = n_features
    expected_dim = state_dim(m)
    budget = max(1, int(np.floor(config.max_feature_ratio * m)))

    reps_matrix = np.stack(reps)
    scal = 2 * m  # first scan-scalar column
    states = np.zeros((n_tasks, expected_dim))
    states[:, :m] = reps_matrix
    # Nothing is selected yet: fractions are 0 and the full budget remains,
    # exactly as encode_state computes for an empty selection.
    states[:, scal + _S_BUDGET_LEFT] = 1.0

    # Suffix maxima: max(rep[p:]) for every p at once.  Maximum is exactly
    # order-independent, so a reversed running maximum equals the per-suffix
    # np.max bit for bit.
    suffix_max = np.maximum.accumulate(reps_matrix[:, ::-1], axis=1)[:, ::-1]
    # Percentiles: mean(rep <= rep[p]) is (count of True) / m — the bool sum
    # is an exact small integer however it is accumulated, so a broadcast
    # comparison count divided by m reproduces the bool-array mean exactly
    # (including NaN entries, which compare False on both paths).
    percentile = np.empty((n_tasks, m))
    for i in range(n_tasks):
        counts = (reps_matrix[i][None, :] <= reps_matrix[i][:, None]).sum(axis=1)
        percentile[i] = counts / m

    selected: list[list[int]] = [[] for _ in reps]
    n_selected = np.zeros(n_tasks, dtype=np.int64)
    selected_mask = np.zeros((n_tasks, m), dtype=bool)
    # Every episode starts at position 0 with nothing selected, so the only
    # way to leave the lockstep is the budget truncation handled below.
    active = np.arange(n_tasks)
    for position in range(m):
        if active.size == 0:
            break
        # Per-step scalars.  Progress and budget denominators are Python
        # ints, matching encode_state's scalar expressions exactly.
        states[active, scal + _S_PROGRESS] = position / m
        states[active, scal + _S_CURSOR] = reps_matrix[active, position]
        states[active, scal + _S_MAX_REMAINING] = suffix_max[active, position]
        states[active, scal + _S_PERCENTILE] = percentile[active, position]
        # mean(rep[p:]) per row: add.reduce over the last axis runs the same
        # pairwise-summation loop np.mean runs on each row's suffix.
        remaining = reps_matrix[active, position:]
        states[active, scal + _S_MEAN_REMAINING] = np.add.reduce(
            remaining, axis=1
        ) / (m - position)
        if feature_corr is not None:
            has_selection = n_selected[active] > 0
            if np.any(has_selection):
                # max over the selected entries of the cursor's corr row:
                # -inf padding never wins against a real |corr| value, and
                # maximum is exactly order-independent.
                masked = np.where(
                    selected_mask[active], feature_corr[position][None, :], -np.inf
                )
                redundancy = np.maximum.reduce(masked, axis=1)
                rows = active[has_selection]
                states[rows, scal + _S_REDUNDANCY] = redundancy[has_selection]

        batch = states[active]  # fancy index => fresh copy per step
        check_state_batch("batch.greedy", batch, expected_dim)
        actions = agent.act_batch(batch)

        survivors = []
        for row, i in enumerate(active):
            if actions[row] == 1:
                selected[i].append(position)
                count = len(selected[i])
                n_selected[i] = count
                selected_mask[i, position] = True
                states[i, m + position] = 1.0
                states[i, scal + _S_FRAC_SELECTED] = count / m
                # mean over the selected |corr|s: the gather produces the
                # same contiguous array encode_state reduces with np.mean.
                chosen = reps_matrix[i][np.asarray(selected[i], dtype=np.int64)]
                states[i, scal + _S_MEAN_SELECTED] = np.add.reduce(chosen) / count
                states[i, scal + _S_BUDGET_LEFT] = max(
                    0.0, (budget - count) / budget
                )
            # Mirror FeatureSelectionEnv: done when the scan passes the last
            # feature or the selected count reaches the budget.
            if position + 1 < m and len(selected[i]) < budget:
                survivors.append(i)
        active = np.asarray(survivors, dtype=np.int64)

    results: list[tuple[int, ...]] = []
    for i, chosen_positions in enumerate(selected):
        subset = tuple(chosen_positions)
        if not subset:
            # Degenerate cold policies can deselect everything; degrade the
            # same way the sequential path does (PAFeat.select).
            subset = (int(np.argmax(reps[i])),)
        results.append(subset)
    return results
