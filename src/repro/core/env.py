"""Feature-selection MDP environment (paper Section II-B).

The agent scans features left to right; at each step the action selects
(1) or deselects (0) the feature under the cursor.  The episode ends when
the scan passes the last feature or when the selected fraction exceeds the
``max_feature_ratio`` budget (Algorithm 1 line 10).

Rewards come from the task's pretrained masked classifier.  Two modes:

* ``"performance"`` — the paper's literal Eqn. 2: each step receives the
  current subset's score.
* ``"delta"`` — each step receives the score *increment*; the undiscounted
  episode return then telescopes to the final subset's score, which keeps
  Q-values in [0, 1] and sharpens credit assignment.  This is the default.

``reset_to`` restores an arbitrary :class:`EnvState`, which is how the
Intra-Task Explorer restarts episodes from valuable visited states.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
from repro.errors import LifecycleError

from repro.analysis.contracts import check_state_batch
from repro.core.config import EnvConfig
from repro.core.state import EnvState, encode_state, state_dim
from repro.rl.reward import RewardFunction


def _zero_reward(subset: Iterable[int]) -> float:
    """Reward stub for inference-only environments."""
    del subset
    return 0.0


class FeatureSelectionEnv:
    """Sequential feature-scanning environment for one task."""

    N_ACTIONS = 2  # 0 = deselect, 1 = select

    def __init__(
        self,
        task_id: int,
        task_representation: np.ndarray,
        reward_fn: RewardFunction | None,
        config: EnvConfig,
        feature_corr: np.ndarray | None = None,
    ) -> None:
        self.task_id = task_id
        self.task_representation = np.asarray(
            task_representation, dtype=np.float64
        ).reshape(-1)
        self.n_features = self.task_representation.shape[0]
        if self.n_features < 1:
            raise ValueError("environment needs at least one feature")
        if feature_corr is not None:
            feature_corr = np.asarray(feature_corr, dtype=np.float64)
            if feature_corr.shape != (self.n_features, self.n_features):
                raise ValueError(
                    f"feature_corr must be ({self.n_features}, {self.n_features}), "
                    f"got {feature_corr.shape}"
                )
        self.feature_corr = feature_corr
        # ``reward_fn=None`` builds a reward-free environment: unseen-task
        # inference only reads states and never trains on the rewards.
        self.reward_fn = reward_fn if reward_fn is not None else _zero_reward
        self.config = config
        self.max_selectable = max(
            1, int(np.floor(config.max_feature_ratio * self.n_features))
        )
        self._selected: list[int] = []
        self._position = 0
        self._previous_score = 0.0
        self._done = True  # require reset() before step()

    @property
    def state_dim(self) -> int:
        return state_dim(self.n_features)

    @property
    def done(self) -> bool:
        return self._done

    @property
    def selected(self) -> tuple[int, ...]:
        return tuple(self._selected)

    @property
    def position(self) -> int:
        return self._position

    def logical_state(self) -> EnvState:
        """The current logical (restorable) state."""
        return EnvState(selected=tuple(self._selected), position=self._position)

    def reset(self) -> np.ndarray:
        """Start a fresh episode from the default initial state."""
        return self.reset_to(EnvState(selected=(), position=0))

    def reset_to(self, state: EnvState) -> np.ndarray:
        """Restore a previously visited logical state (used by ITE)."""
        if state.position > self.n_features:
            raise ValueError(
                f"position {state.position} exceeds feature count {self.n_features}"
            )
        if state.selected and max(state.selected) >= self.n_features:
            raise ValueError("selected indices exceed the feature count")
        self._selected = list(state.selected)
        self._position = state.position
        raw = self.reward_fn(self._selected) if self._selected else 0.0
        self._previous_score = self._shaped(raw)
        self._done = self._position >= self.n_features or self._over_budget()
        return self.encode()

    def encode(self) -> np.ndarray:
        """Encode the current logical state as the Q-network input."""
        encoded = encode_state(
            self.task_representation,
            self.logical_state(),
            self.n_features,
            max_feature_ratio=self.config.max_feature_ratio,
            feature_corr=self.feature_corr,
        )
        return check_state_batch("env.encode", encoded, self.state_dim)

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict]:
        """Apply select/deselect for the scanned feature and advance.

        Returns ``(next_state, reward, done, info)``; ``info`` carries the
        selected subset and the subset's raw classifier score.
        """
        if self._done:
            raise LifecycleError("step called on a finished episode; call reset()")
        if action not in (0, 1):
            raise ValueError(f"action must be 0 or 1, got {action}")
        if action == 1:
            self._selected.append(self._position)
        self._position += 1

        score = (
            self.reward_fn(self._selected) if self._selected else 0.0
        )
        shaped = self._shaped(score)
        if self.config.reward_mode == "delta":
            reward = shaped - self._previous_score
        else:
            reward = shaped
        self._previous_score = shaped

        self._done = self._position >= self.n_features or self._over_budget()
        info = {
            "selected": tuple(self._selected),
            "score": score,
            "position": self._position,
        }
        return self.encode(), float(reward), self._done, info

    def _shaped(self, score: float) -> float:
        """Subset score with the explicit lean-subset shaping applied."""
        penalty = self.config.size_penalty * len(self._selected) / self.n_features
        return score - penalty

    def _over_budget(self) -> bool:
        return len(self._selected) >= self.max_selectable
