"""PA-FEAT facade: the library's main entry point.

Wires together the pretrained reward classifiers, per-task environments,
the Dueling-DQN agent, the Inter-Task Scheduler and the Intra-Task Explorer
into the three-phase lifecycle of the paper:

* :meth:`PAFeat.fit` — generalise feature-selection knowledge across the
  seen tasks of a :class:`~repro.data.tasks.TaskSuite` (Algorithm 1).
* :meth:`PAFeat.select` — *fast* feature selection for an unseen task: one
  greedy episode, no training (Algorithm 1 lines 22-24).
* :meth:`PAFeat.further_train` — optional extra on-task training when the
  time budget allows (paper Section IV-D).

Ablation switches (``use_its``, ``use_ite``,
``ite.use_policy_exploitation``) reproduce the Table III variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np
from repro.errors import DataValidationError, NotFittedError

from repro.core.config import PAFeatConfig
from repro.core.env import FeatureSelectionEnv
from repro.core.feat import FEATTrainer, UniformTaskSampler
from repro.core.ite import IntraTaskExplorer
from repro.core.its import InterTaskScheduler
from repro.data.stats import feature_redundancy_matrix, pearson_representation
from repro.data.tasks import Task, TaskSuite
from repro.nn.classifier import MaskedMLPClassifier
from repro.obs.telemetry import TelemetryWriter
from repro.rl.reward import RewardFunction, build_task_reward

if TYPE_CHECKING:
    from repro.rl.agent import DuelingDQNAgent
    from repro.rollout.engine import ParallelRolloutEngine


@dataclass
class FurtherTrainRecord:
    """One checkpoint of the further-training curve (paper Fig. 9)."""

    iteration: int
    subset: tuple[int, ...]
    score: float


class PAFeat:
    """Progress-aware multi-task DRL feature selector."""

    def __init__(self, config: PAFeatConfig | None = None) -> None:
        self.config = config or PAFeatConfig()
        self._seed_sequence = np.random.SeedSequence(self.config.seed)
        self._rng = np.random.default_rng(self._seed_sequence.spawn(1)[0])
        self.trainer: FEATTrainer | None = None
        self.explorer: IntraTaskExplorer | None = None
        self.scheduler: InterTaskScheduler | None = None
        self.reward_fns: dict[int, RewardFunction] = {}
        self.classifiers: dict[int, MaskedMLPClassifier] = {}
        self._suite: TaskSuite | None = None
        self._n_features: int | None = None
        self._feature_corr: "np.ndarray | None" = None
        self._loaded_agent = None  # populated by repro.io.load_model
        self.rollout_engine: "ParallelRolloutEngine | None" = None

    # ------------------------------------------------------------------
    # Training on seen tasks
    # ------------------------------------------------------------------
    def fit(
        self,
        suite: TaskSuite,
        n_iterations: int | None = None,
        *,
        checkpoint_dir: "str | Path | None" = None,
        checkpoint_every: int | None = None,
        keep_last: int = 3,
        resume: bool = False,
        stop_check: "Callable[[], bool] | None" = None,
        rollout_workers: int | None = None,
        telemetry: "str | Path | TelemetryWriter | None" = None,
    ) -> "PAFeat":
        """Generalise knowledge from the suite's seen tasks (Algorithm 1).

        ``rollout_workers`` realises the paper's N parallel rollout
        resources: with ``N >= 2`` the Buffer Filling Phase runs across a
        process pool (:mod:`repro.rollout`, ARCHITECTURE §10), with results
        merged deterministically — identical for any worker count — and
        graceful degradation to serial collection on worker failure.  The
        default consults the ``REPRO_ROLLOUT_WORKERS`` environment
        variable, else stays serial (bit-exact with previous releases).

        Crash safety: with ``checkpoint_dir`` set, the complete training
        state (networks, optimizer, replay buffers, ITS/ITE statistics,
        RNG streams, best-snapshot-so-far) is flushed atomically every
        ``checkpoint_every`` iterations (default: the config's
        ``checkpoint_every``), keeping the last ``keep_last`` checkpoints.
        With ``resume=True`` the deterministic setup (reward-classifier
        pretraining, environments) is rebuilt from the same seed, then the
        latest *valid* checkpoint — corrupt ones are detected and skipped —
        is restored and training continues from its iteration; the resumed
        run reproduces the uninterrupted run's RNG streams exactly.

        ``stop_check`` is polled once per iteration (e.g. a SIGTERM flag);
        when it returns True a final checkpoint is flushed and
        :class:`~repro.io.checkpoint.TrainingInterrupted` is raised.

        ``telemetry`` enables the training telemetry stream (ARCHITECTURE
        §11): pass a directory and fit writes per-episode/per-iteration
        events to ``events.jsonl`` plus a span trace to ``trace.jsonl``
        there (``repro obs summarize <dir>`` renders the run report), or
        pass a :class:`~repro.obs.telemetry.TelemetryWriter` to share a
        sink the caller owns.  Telemetry is strictly observational: it
        consumes no RNG and the trained model is bit-identical with it on
        or off.
        """
        if not suite.seen_tasks:
            raise DataValidationError("suite has no seen tasks to learn from")
        self._suite = suite
        self._n_features = suite.n_features
        # All tasks share one feature space, so the feature-feature |Pearson|
        # matrix (the redundancy signal in the state encoding) is computed once.
        self._feature_corr = feature_redundancy_matrix(suite.table.features)
        config = self.config

        envs: dict[int, FeatureSelectionEnv] = {}
        all_features_scores: dict[int, float] = {}
        for task in suite.seen_tasks:
            reward_fn = self._build_reward(task)
            self.reward_fns[task.label_index] = reward_fn
            representation = pearson_representation(task.features, task.labels)
            envs[task.label_index] = FeatureSelectionEnv(
                task.label_index, representation, reward_fn, config.env,
                feature_corr=self._feature_corr,
            )
            all_features_scores[task.label_index] = reward_fn.all_features_score

        agent = self._build_agent(suite.n_features)
        task_ids = sorted(envs)

        task_sampler = UniformTaskSampler(task_ids)
        if config.use_its:
            self.scheduler = InterTaskScheduler(
                task_ids, all_features_scores, suite.n_features, config.its
            )
            task_sampler = self.scheduler.sample_task

        initial_state_provider = None
        episode_end_hook = None
        restart_policy = "learned"
        if config.use_ite:
            self.explorer = IntraTaskExplorer(
                suite.n_features,
                config.ite,
                np.random.default_rng(self._seed_sequence.spawn(1)[0]),
            )
            initial_state_provider = self.explorer.initial_state
            episode_end_hook = self.explorer.record
            if not config.ite.use_policy_exploitation:
                restart_policy = "random"

        trainer_kwargs = {
            "task_sampler": task_sampler,
            "initial_state_provider": initial_state_provider,
            "episode_end_hook": episode_end_hook,
            "restart_policy": restart_policy,
            "checkpoint_scorer": self._build_checkpoint_scorer(suite),
        }
        # Subclasses (the FEAT-based baselines) can override any hook.
        trainer_kwargs.update(self._extra_trainer_kwargs())
        self.trainer = FEATTrainer(
            envs,
            agent,
            config,
            np.random.default_rng(self._seed_sequence.spawn(1)[0]),
            **trainer_kwargs,
        )

        # Parallel rollout: built after the trainer, seeded straight from
        # config.seed (NOT from self._seed_sequence — consuming a spawn
        # here would shift every downstream stream and break the serial
        # bit-exactness contract).  Deferred import: core and rollout share
        # a layer rank, and this keeps the import graph acyclic.
        from repro.rollout.engine import resolve_worker_count

        workers = resolve_worker_count(rollout_workers)
        engine = None
        if workers > 1:
            from repro.rollout.engine import ParallelRolloutEngine

            engine = ParallelRolloutEngine(workers, seed=config.seed)
            self.trainer.rollout_engine = engine
        self.rollout_engine = engine

        total = n_iterations if n_iterations is not None else config.n_iterations

        # Observability wiring: an owned writer/tracer pair for a directory
        # argument, or the caller's writer as-is.  Wired after the trainer
        # and engine exist; torn down (and detached) in the finally block.
        writer: "TelemetryWriter | None" = None
        tracer = None
        owns_telemetry = False
        if telemetry is not None:
            from repro.obs.profile import PhaseProfiler
            from repro.obs.trace import Tracer

            run_id = f"fit-seed{config.seed}"
            if isinstance(telemetry, TelemetryWriter):
                writer = telemetry
            else:
                writer = TelemetryWriter(telemetry, run_id=run_id)
                tracer = Tracer(Path(telemetry) / "trace.jsonl", run_id=run_id)
                owns_telemetry = True
            profiler = PhaseProfiler()
            self.trainer.telemetry = writer
            self.trainer.profiler = profiler
            if tracer is not None:
                self.trainer.tracer = tracer
            if engine is not None:
                engine.profiler = profiler
                if tracer is not None:
                    engine.tracer = tracer
            if self.scheduler is not None:
                scheduler = self.scheduler

                def telemetry_probe(task_id: int) -> dict:
                    # Read-only: ranks the task's last ITS distance ratio
                    # among all seen tasks (the "progress quantile").
                    progress = scheduler.last_progress
                    if not progress:
                        return {}
                    mine = next(
                        (
                            p.distance_ratio
                            for p in progress
                            if p.task_id == task_id
                        ),
                        None,
                    )
                    if mine is None:
                        return {}
                    rank = sum(
                        1 for p in progress if p.distance_ratio <= mine
                    )
                    return {
                        "progress": round(float(mine), 6),
                        "progress_q": round(rank / len(progress), 6),
                    }

                self.trainer.telemetry_probe = telemetry_probe
            writer.emit(
                "run_start",
                seed=config.seed,
                n_tasks=len(envs),
                iterations=total,
                rollout_workers=workers,
            )

        manager = None
        if checkpoint_dir is not None:
            from repro.io.checkpoint import CheckpointManager

            manager = CheckpointManager(checkpoint_dir, keep_last=keep_last)
        start_iteration = 0
        if resume:
            if manager is None:
                raise ValueError("resume=True requires checkpoint_dir")
            loaded = manager.latest_valid()
            if loaded is not None:
                self._restore_training_state(loaded.meta, loaded.arrays)
                start_iteration = loaded.iteration

        iteration_hook = None
        if manager is not None or stop_check is not None:
            every = max(
                1,
                checkpoint_every
                if checkpoint_every is not None
                else config.checkpoint_every,
            )

            def iteration_hook(global_iteration: int) -> None:
                from repro.io.checkpoint import TrainingInterrupted

                stopping = stop_check is not None and stop_check()
                path = None
                if manager is not None and (
                    stopping or global_iteration % every == 0 or global_iteration >= total
                ):
                    meta, arrays = self._capture_training_state()
                    path = manager.save(global_iteration, meta, arrays)
                if stopping:
                    raise TrainingInterrupted(global_iteration, path)

        try:
            remaining = total - start_iteration
            if remaining > 0:
                self.trainer.train(remaining, iteration_hook=iteration_hook)
            else:
                # The checkpoint already covers the requested horizon; just
                # finalise as train() would (best-policy restore).
                self.trainer.apply_best_snapshot()
            if writer is not None:
                # Only a completed fit gets a run_end event — its absence
                # is how `repro obs summarize` flags a crashed or
                # interrupted run.
                best = self.trainer._best_score
                end: dict = {
                    "iterations": len(self.trainer.history),
                    "episodes": sum(s.episodes for s in self.trainer.history),
                }
                if np.isfinite(best):
                    end["best_score"] = round(float(best), 6)
                writer.emit("run_end", **end)
        finally:
            # Post-fit collection (further_train, manual buffer_filling)
            # reverts to the serial loop; the closed engine stays on the
            # model for stats/telemetry inspection.
            if engine is not None:
                engine.close()
                self.trainer.rollout_engine = None
            if writer is not None:
                from repro.obs.trace import NULL_TRACER

                # Detach the hooks so post-fit training helpers never
                # write to a sink the caller may have closed.
                self.trainer.telemetry = None
                self.trainer.tracer = NULL_TRACER
                self.trainer.profiler = None
                self.trainer.telemetry_probe = None
                if owns_telemetry:
                    writer.close()
                if tracer is not None:
                    tracer.close()
        return self

    # ------------------------------------------------------------------
    # Fast selection for unseen tasks
    # ------------------------------------------------------------------
    def select(self, task: Task) -> tuple[int, ...]:
        """Fast feature selection: one greedy episode on the unseen task.

        The task's label column (its training rows) is only used to build
        the Pearson task representation — no model training happens here,
        which is what makes the response "fast".
        """
        agent = self.inference_agent()
        representation = pearson_representation(task.features, task.labels)
        env = FeatureSelectionEnv(
            task.label_index, representation, None, self.config.env,
            feature_corr=self._feature_corr,
        )
        from repro.core.feat import greedy_subset

        subset = greedy_subset(agent, env)
        if not subset:
            # Degenerate cold policies can deselect everything; fall back to
            # the single most-correlated feature so downstream evaluation is
            # always defined.
            subset = (int(np.argmax(representation)),)
        return subset

    def select_all_unseen(
        self,
        suite: TaskSuite | None = None,
        *,
        batch_size: int | None = None,
    ) -> dict[str, tuple[int, ...]]:
        """Select subsets for every unseen task in the (fitted) suite.

        Runs the unseen tasks' greedy episodes in lockstep through the
        batched inference kernel (:mod:`repro.core.batch`): one Q-forward
        per feature step for the whole batch instead of one per task per
        step, with bit-exact parity to per-task :meth:`select`.
        ``batch_size`` caps how many episodes run per lockstep group
        (default: all at once); ``batch_size=1`` is the sequential
        fallback path.
        """
        agent = self.inference_agent()
        suite = suite if suite is not None else self._suite
        if suite is None:
            raise NotFittedError("no suite available; call fit() first")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        tasks = list(suite.unseen_tasks)
        if batch_size == 1:
            return {task.name: self.select(task) for task in tasks}
        from repro.core.batch import batched_greedy_subsets

        if not tasks:
            return {}
        chunk = len(tasks) if batch_size is None else batch_size
        results: dict[str, tuple[int, ...]] = {}
        for start in range(0, len(tasks), chunk):
            group = tasks[start : start + chunk]
            representations = [
                pearson_representation(task.features, task.labels) for task in group
            ]
            subsets = batched_greedy_subsets(
                agent, representations, self.config.env,
                feature_corr=self._feature_corr,
            )
            for task, subset in zip(group, subsets):
                results[task.name] = subset
        return results

    # ------------------------------------------------------------------
    # Optional on-task refinement (paper Section IV-D)
    # ------------------------------------------------------------------
    def further_train(
        self,
        task: Task,
        n_iterations: int,
        checkpoint_every: int = 10,
    ) -> list[FurtherTrainRecord]:
        """Continue training on one unseen task under a larger time budget.

        Builds a reward environment for the task (pretraining its masked
        classifier), then runs additional FEAT iterations *only* on this
        task, starting from the already-generalised Q-network.  Returns the
        greedy-subset score curve.
        """
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        trainer = self._require_fitted()
        reward_fn = self.reward_fns.get(task.label_index)
        if task.label_index not in trainer.envs:
            reward_fn = self._build_reward(task)
            self.reward_fns[task.label_index] = reward_fn
            representation = pearson_representation(task.features, task.labels)
            trainer.envs[task.label_index] = FeatureSelectionEnv(
                task.label_index, representation, reward_fn, self.config.env,
                feature_corr=self._feature_corr,
            )
        env = trainer.envs[task.label_index]

        records: list[FurtherTrainRecord] = []
        best_snapshot = trainer.agent.save_policy()
        # Seed "best so far" with the zero-shot result so refinement can
        # only improve on what fast selection already delivers.
        best_subset = trainer.infer_subset(env)
        if best_subset:
            zero_shot_score = env.reward_fn(best_subset)
            best_value = zero_shot_score - self.config.env.size_penalty * len(
                best_subset
            ) / max(1, env.n_features)
        else:
            best_value = -np.inf
        for iteration in range(n_iterations):
            trajectory = trainer.run_episode(task.label_index)
            trainer.registry.buffer(task.label_index).add_trajectory(trajectory)
            for _ in range(self.config.updates_per_iteration):
                batch = trainer.registry.buffer(task.label_index).sample(
                    self.config.agent.batch_size, self._rng
                )
                trainer.agent.update(batch, task_id=task.label_index)
            if (iteration + 1) % checkpoint_every == 0 or iteration == n_iterations - 1:
                subset = trainer.infer_subset(env)
                score = env.reward_fn(subset) if subset else 0.0
                # Anytime semantics: each checkpoint reports the best subset
                # found so far (shaped by the lean-subset penalty), and the
                # best-scoring policy snapshot is kept — a long refinement
                # run can therefore never end worse than it started.
                shaped = score - self.config.env.size_penalty * len(subset) / max(
                    1, env.n_features
                )
                if subset and shaped > best_value:
                    best_value = shaped
                    best_subset = subset
                    best_snapshot = trainer.agent.save_policy()
                report = best_subset or subset
                report_score = env.reward_fn(report) if report else 0.0
                records.append(
                    FurtherTrainRecord(
                        iteration=iteration + 1,
                        subset=report,
                        score=float(report_score),
                    )
                )
        trainer.agent.load_policy(best_snapshot)
        return records

    # ------------------------------------------------------------------
    # Durable checkpointing (crash/resume)
    # ------------------------------------------------------------------
    def _capture_training_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Full training state across trainer, explorer and scheduler."""
        from repro.io.checkpoint import rng_state

        trainer = self._require_fitted()
        arrays: dict[str, np.ndarray] = {}
        trainer_meta, trainer_arrays = trainer.capture_state()
        for name, value in trainer_arrays.items():
            arrays[f"trainer/{name}"] = value
        meta: dict = {
            "trainer": trainer_meta,
            "model_rng": rng_state(self._rng),
            "n_features": self._n_features,
        }
        if self.explorer is not None:
            explorer_meta, explorer_arrays = self.explorer.capture_state()
            meta["explorer"] = explorer_meta
            for name, value in explorer_arrays.items():
                arrays[f"explorer/{name}"] = value
        if self.scheduler is not None:
            meta["scheduler"] = self.scheduler.capture_state()
        if self.rollout_engine is not None:
            meta["rollout"] = self.rollout_engine.capture_state()
        return meta, arrays

    def _restore_training_state(
        self, meta: dict, arrays: dict[str, np.ndarray]
    ) -> None:
        """Restore a payload from :meth:`_capture_training_state`.

        Must be called after the deterministic :meth:`fit` setup has built
        the trainer/explorer/scheduler for the *same* suite and config; the
        restored state then overwrites their freshly initialised weights,
        buffers, statistics and RNG streams.
        """
        from repro.io.checkpoint import CheckpointError, set_rng_state

        trainer = self._require_fitted()
        if meta.get("n_features") != self._n_features:
            raise CheckpointError(
                f"checkpoint was taken on a {meta.get('n_features')}-feature "
                f"suite; this fit has {self._n_features} features"
            )

        def sub(prefix: str) -> dict[str, np.ndarray]:
            return {
                name[len(prefix):]: value
                for name, value in arrays.items()
                if name.startswith(prefix)
            }

        trainer.restore_state(meta["trainer"], sub("trainer/"))
        set_rng_state(self._rng, meta["model_rng"])
        if "explorer" in meta:
            if self.explorer is None:
                raise CheckpointError(
                    "checkpoint contains ITE state but use_ite is disabled"
                )
            self.explorer.restore_state(meta["explorer"], sub("explorer/"))
        if "scheduler" in meta:
            if self.scheduler is None:
                raise CheckpointError(
                    "checkpoint contains ITS state but use_its is disabled"
                )
            self.scheduler.restore_state(meta["scheduler"])
        # Rollout-engine state (the global episode counter that keys the
        # per-episode RNG shards) only matters when the resumed run also
        # collects in parallel; a serial resume ignores it by design.
        if "rollout" in meta and self.rollout_engine is not None:
            self.rollout_engine.restore_state(meta["rollout"])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _extra_trainer_kwargs(self) -> dict:
        """Hook for FEAT-based baseline subclasses to override trainer hooks."""
        return {}

    def _build_checkpoint_scorer(
        self, suite: TaskSuite
    ) -> Callable[[dict[int, tuple[int, ...]]], float]:
        """Best-snapshot criterion: held-out kernel F1 on seen tasks.

        The RL reward (masked-classifier AUC) is a proxy for the eventual
        evaluation (a kernel classifier trained on the projected subset).
        Model selection uses the evaluation family directly — on *seen*
        tasks only, via an internal train/validation row split — so the
        kept snapshot is the one whose greedy subsets actually generalise,
        not the one that pushed the proxy furthest.  Memoised per subset
        because the greedy policy changes slowly between checkpoints.
        """
        from repro.eval.kernel import KernelRidgeClassifier
        from repro.eval.metrics import f1_score

        rng = np.random.default_rng(self._seed_sequence.spawn(1)[0])
        splits: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for task in suite.seen_tasks:
            n = task.features.shape[0]
            permutation = rng.permutation(n)
            cut = max(1, int(0.75 * n))
            splits[task.label_index] = (permutation[:cut], permutation[cut:])
        tasks = {task.label_index: task for task in suite.seen_tasks}
        cache: dict[tuple[int, tuple[int, ...]], float] = {}

        def score_task(task_id: int, subset: tuple[int, ...]) -> float:
            key = (task_id, subset)
            if key in cache:
                return cache[key]
            task = tasks[task_id]
            fit_rows, val_rows = splits[task_id]
            idx = np.asarray(subset, dtype=np.int64)
            model = KernelRidgeClassifier(seed=0).fit(
                task.features[fit_rows][:, idx], task.labels[fit_rows]
            )
            predictions = model.predict(task.features[val_rows][:, idx])
            value = f1_score(task.labels[val_rows], predictions)
            cache[key] = value
            return value

        def scorer(subsets: dict[int, tuple[int, ...]]) -> float:
            # Ignore environments added after fit (e.g. by further_train):
            # model selection is defined over the original seen tasks.
            values = [
                score_task(task_id, subset) if subset else 0.0
                for task_id, subset in subsets.items()
                if task_id in tasks
            ]
            return float(np.mean(values)) if values else 0.0

        return scorer

    def _build_reward(self, task: Task) -> RewardFunction:
        """Pretrain the masked classifier for a task and wrap it (Eqn. 2).

        The classifier fits on a train portion of the task's rows; the
        reward scores subsets on the held-out remainder, keeping the
        landscape informative (see :func:`repro.rl.reward.build_task_reward`).
        """
        config = self.config.classifier
        seed = int(self._seed_sequence.spawn(1)[0].generate_state(1)[0])
        classifier = MaskedMLPClassifier(
            n_features=task.n_features,
            hidden=config.hidden,
            lr=config.lr,
            n_epochs=config.n_epochs,
            batch_size=config.batch_size,
            mask_augment=config.mask_augment,
            seed=seed,
        )
        self.classifiers[task.label_index] = classifier
        return build_task_reward(
            task.features,
            task.labels,
            classifier,
            metric=self.config.env.reward_metric,
            seed=seed,
        )

    def _build_agent(self, n_features: int) -> DuelingDQNAgent:
        from repro.core.state import state_dim
        from repro.rl.agent import DuelingDQNAgent
        from repro.rl.schedules import LinearDecay

        config = self.config.agent
        return DuelingDQNAgent(
            state_dim=state_dim(n_features),
            n_actions=FeatureSelectionEnv.N_ACTIONS,
            hidden=config.hidden,
            gamma=config.gamma,
            lr=config.lr,
            epsilon_schedule=LinearDecay(
                config.epsilon_start, config.epsilon_end, config.epsilon_decay_steps
            ),
            target_sync_every=config.target_sync_every,
            rng=np.random.default_rng(self._seed_sequence.spawn(1)[0]),
            grad_clip=config.grad_clip,
        )

    def _require_fitted(self) -> FEATTrainer:
        if self.trainer is None:
            raise NotFittedError("model is not fitted; call fit() first")
        return self.trainer

    def inference_agent(self) -> DuelingDQNAgent:
        """The agent answering unseen tasks: the trainer's, or a loaded one."""
        if self.trainer is not None:
            return self.trainer.agent
        if self._loaded_agent is not None:
            return self._loaded_agent
        raise NotFittedError("model is not fitted; call fit() or repro.io.load_model()")
