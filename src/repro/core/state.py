"""Environment state encoding.

The paper's state "marks the corresponding seen task, records the selected
features and the current scanning position" (Section II-B) and embeds the
task representation — the |Pearson| vector — directly into the state so one
Q-network serves all tasks.  The encoding used here is::

    [ task_repr (m) | selected mask (m) | scan scalars (7) ]

The scan scalars expose the decision-critical quantities directly instead
of a position one-hot:

* progress ``position / m``;
* |corr| of the feature under the cursor (0 at terminal);
* fraction of features selected so far;
* mean |corr| of the selected features;
* mean and max |corr| among the not-yet-scanned features (what is still
  available — lets the policy ration its budget);
* remaining budget fraction under ``max_feature_ratio``;
* percentile of the cursor feature's |corr| within this task's
  representation (absolute-corr thresholds do not transfer between tasks
  whose correlation scales differ; percentiles do);
* maximum |feature-feature corr| between the cursor feature and the
  already-selected set (the redundancy signal — lets the policy skip
  near-duplicates of features it already holds).

Sharing the select/deselect rule across scan positions (rather than giving
every position its own one-hot weights) is what lets a small MLP learn a
task-conditioned threshold policy from a few hundred episodes.  ``EnvState``
is the *logical* state (which features are selected, where the scan is)
used by the E-Tree to restore environments; ``encode_state`` maps it to the
network input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

N_SCAN_SCALARS = 9


@dataclass(frozen=True)
class EnvState:
    """Logical environment state: an action-prefix snapshot.

    ``selected`` holds the indices chosen so far; ``position`` is the index
    of the feature currently being scanned (``position == n_features`` means
    terminal).  Hashable so E-Tree nodes and tests can key on it.
    """

    selected: tuple[int, ...]
    position: int

    def __post_init__(self) -> None:
        ordered = tuple(sorted(set(self.selected)))
        object.__setattr__(self, "selected", ordered)
        if self.position < 0:
            raise ValueError(f"position must be >= 0, got {self.position}")
        if any(i < 0 for i in ordered):
            raise ValueError("selected feature indices must be >= 0")
        if ordered and ordered[-1] >= self.position:
            raise ValueError(
                f"selected features must precede the scan position "
                f"(max selected {ordered[-1]}, position {self.position})"
            )

    @property
    def n_selected(self) -> int:
        return len(self.selected)


def state_dim(n_features: int) -> int:
    """Dimension of the encoded state vector for ``n_features`` features."""
    if n_features < 1:
        raise ValueError(f"n_features must be >= 1, got {n_features}")
    return 2 * n_features + N_SCAN_SCALARS


def encode_state(
    task_representation: np.ndarray,
    state: EnvState,
    n_features: int,
    max_feature_ratio: float = 1.0,
    feature_corr: np.ndarray | None = None,
) -> np.ndarray:
    """Encode a logical state as the Q-network input vector.

    ``feature_corr`` is the optional m×m |Pearson| matrix between features;
    when provided, the redundancy scalar (max correlation of the cursor
    feature with the selected set) is populated, otherwise it stays 0.
    """
    task_representation = np.asarray(task_representation, dtype=np.float64).reshape(-1)
    if task_representation.shape[0] != n_features:
        raise ValueError(
            f"task representation has {task_representation.shape[0]} entries "
            f"for {n_features} features"
        )
    if state.position > n_features:
        raise ValueError(
            f"position {state.position} out of range for {n_features} features"
        )
    # The encoding must be a fresh array: it escapes into replay-buffer
    # transitions, so reusing a preallocated buffer would alias every
    # stored state to the latest step.
    encoded = np.zeros(state_dim(n_features))  # repolint: disable=HOT701
    encoded[:n_features] = task_representation
    selected_idx = np.asarray(state.selected, dtype=np.int64)
    if state.selected:
        encoded[n_features + selected_idx] = 1.0

    scalars = encoded[2 * n_features :]
    scalars[0] = state.position / n_features
    if state.position < n_features:
        scalars[1] = task_representation[state.position]
    scalars[2] = len(state.selected) / n_features
    if state.selected:
        scalars[3] = float(np.mean(task_representation[selected_idx]))
    remaining = task_representation[state.position :]
    if remaining.size:
        scalars[4] = float(np.mean(remaining))
        scalars[5] = float(np.max(remaining))
    budget = max(1, int(np.floor(max_feature_ratio * n_features)))
    scalars[6] = max(0.0, (budget - len(state.selected)) / budget)
    if state.position < n_features:
        cursor_corr = task_representation[state.position]
        scalars[7] = float(np.mean(task_representation <= cursor_corr))
        if feature_corr is not None and state.selected:
            scalars[8] = float(np.max(feature_corr[state.position, selected_idx]))
    return encoded
