"""Tasks and task suites over a shared feature space.

Definitions 1-4 of the paper: a *task* is (feature space, label space,
predictive function); *seen* tasks have observed label spaces, *unseen*
tasks share the feature space but their labels arrive later.  A
:class:`TaskSuite` bundles one :class:`~repro.data.table.StructuredTable`
with the seen/unseen partition of its label columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.table import StructuredTable
from repro.errors import BoundsError


@dataclass(frozen=True)
class Task:
    """One predictive task: a named label column over the shared features.

    ``ground_truth_features`` is only populated for synthetic data, where the
    generator knows which features actually drive the label; it is used by
    tests and diagnostics, never by selection algorithms.
    """

    name: str
    label_index: int
    table: StructuredTable = field(repr=False, compare=False)
    ground_truth_features: tuple[int, ...] | None = field(default=None, compare=False)

    @property
    def n_features(self) -> int:
        return self.table.n_features

    @property
    def labels(self) -> np.ndarray:
        return self.table.label_column(self.label_index)

    @property
    def features(self) -> np.ndarray:
        return self.table.features

    def positive_rate(self) -> float:
        """Fraction of positive labels — a cheap difficulty indicator."""
        labels = self.labels
        return float(np.mean(labels == 1)) if labels.size else 0.0


class TaskSuite:
    """A shared feature space with seen and unseen task partitions."""

    def __init__(
        self,
        name: str,
        table: StructuredTable,
        seen_label_indices: Sequence[int],
        unseen_label_indices: Sequence[int],
        ground_truth: dict[int, tuple[int, ...]] | None = None,
    ) -> None:
        self.name = name
        self.table = table
        seen = [int(i) for i in seen_label_indices]
        unseen = [int(i) for i in unseen_label_indices]
        overlap = set(seen) & set(unseen)
        if overlap:
            raise ValueError(f"label columns in both partitions: {sorted(overlap)}")
        all_indices = seen + unseen
        if len(set(all_indices)) != len(all_indices):
            raise ValueError("duplicate label indices within a partition")
        for index in all_indices:
            if not 0 <= index < table.n_labels:
                raise BoundsError(
                    f"label index {index} out of range [0, {table.n_labels})"
                )
        ground_truth = ground_truth or {}
        self.seen_tasks = [self._make_task(i, ground_truth) for i in seen]
        self.unseen_tasks = [self._make_task(i, ground_truth) for i in unseen]

    def _make_task(self, index: int, ground_truth: dict[int, tuple[int, ...]]) -> Task:
        return Task(
            name=self.table.label_names[index],
            label_index=index,
            table=self.table,
            ground_truth_features=ground_truth.get(index),
        )

    @property
    def n_features(self) -> int:
        return self.table.n_features

    @property
    def n_seen(self) -> int:
        return len(self.seen_tasks)

    @property
    def n_unseen(self) -> int:
        return len(self.unseen_tasks)

    def all_tasks(self) -> list[Task]:
        return [*self.seen_tasks, *self.unseen_tasks]

    def split_rows(
        self, train_fraction: float, rng: np.random.Generator
    ) -> tuple["TaskSuite", "TaskSuite"]:
        """Row-split into train/test suites with identical task partitions."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        n = self.table.n_rows
        permutation = rng.permutation(n)
        cut = max(1, min(n - 1, int(round(train_fraction * n))))
        train_rows, test_rows = permutation[:cut], permutation[cut:]
        ground_truth = {
            task.label_index: task.ground_truth_features
            for task in self.all_tasks()
            if task.ground_truth_features is not None
        }
        seen = [task.label_index for task in self.seen_tasks]
        unseen = [task.label_index for task in self.unseen_tasks]
        train = TaskSuite(
            f"{self.name}-train", self.table.select_rows(train_rows), seen, unseen,
            ground_truth=ground_truth,
        )
        test = TaskSuite(
            f"{self.name}-test", self.table.select_rows(test_rows), seen, unseen,
            ground_truth=ground_truth,
        )
        return train, test

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskSuite({self.name!r}, rows={self.table.n_rows}, "
            f"features={self.n_features}, seen={self.n_seen}, unseen={self.n_unseen})"
        )
