"""Planted-structure synthetic multi-label dataset generator.

The original evaluation uses Mulan/PhysioNet corpora that cannot be shipped
here, so we generate *twins*: datasets with the same shape whose labels are
driven by a known subset of features.  The construction mirrors what makes
feature selection on real multi-label data non-trivial:

* **informative features** — i.i.d. Gaussians that actually drive labels;
* **redundant features** — noisy linear combinations of informative ones
  (so selectors that ignore redundancy, like K-Best, are penalised);
* **noise features** — pure Gaussians carrying no signal;
* **task overlap** — tasks draw their informative sets from shared concept
  pools, so a policy trained on seen tasks transfers to unseen tasks;
* **task difficulty** — per-task label-flip noise varies, giving the
  Inter-Task Scheduler genuinely easy and hard tasks to balance.

Everything is driven by a single :class:`numpy.random.Generator` seed, so a
given :class:`SyntheticSpec` always produces bit-identical data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.numerics import stable_sigmoid
from repro.data.table import StructuredTable
from repro.data.tasks import TaskSuite


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic multi-label dataset.

    Attributes:
        name: dataset identifier.
        n_instances: number of rows.
        n_features: total feature count ``m``.
        n_seen: number of seen tasks (label columns used for training).
        n_unseen: number of unseen tasks (held-out label columns).
        informative_fraction: share of features that carry real signal.
        redundant_fraction: share of features that are noisy copies of
            informative ones.  The remainder is pure noise.
        task_informative: informative features each task depends on.
        n_concepts: number of shared concept pools tasks draw from;
            fewer pools → more overlap → easier transfer.
        noise_min / noise_max: per-task label flip probability range
            (uniformly assigned, so tasks span easy → hard).
        interaction_pairs: number of pairwise feature interactions added to
            each task's logit.  Interactions make the label depend
            non-linearly on its informative features — as real tabular
            targets do — which penalises purely linear/correlation-based
            selectors and rewards methods that learn subset quality from an
            actual evaluator.
        interaction_strength: weight scale of the interaction terms.
        seed: RNG seed; the dataset is a pure function of this spec.
    """

    name: str
    n_instances: int
    n_features: int
    n_seen: int
    n_unseen: int
    informative_fraction: float = 0.2
    redundant_fraction: float = 0.15
    task_informative: int = 5
    n_concepts: int = 3
    noise_min: float = 0.02
    noise_max: float = 0.25
    interaction_pairs: int = 2
    interaction_strength: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_instances < 2:
            raise ValueError(f"need at least 2 instances, got {self.n_instances}")
        if self.n_features < 2:
            raise ValueError(f"need at least 2 features, got {self.n_features}")
        if self.n_seen < 1 or self.n_unseen < 1:
            raise ValueError("need at least one seen and one unseen task")
        if not 0.0 < self.informative_fraction <= 1.0:
            raise ValueError(
                f"informative_fraction must be in (0, 1], got {self.informative_fraction}"
            )
        if not 0.0 <= self.redundant_fraction < 1.0:
            raise ValueError(
                f"redundant_fraction must be in [0, 1), got {self.redundant_fraction}"
            )
        if self.informative_fraction + self.redundant_fraction > 1.0:
            raise ValueError("informative + redundant fractions exceed 1")
        if self.task_informative < 1:
            raise ValueError(f"task_informative must be >= 1, got {self.task_informative}")
        if not 0.0 <= self.noise_min <= self.noise_max < 0.5:
            raise ValueError(
                f"noise range must satisfy 0 <= min <= max < 0.5, got "
                f"[{self.noise_min}, {self.noise_max}]"
            )
        if self.n_concepts < 1:
            raise ValueError(f"n_concepts must be >= 1, got {self.n_concepts}")
        if self.interaction_pairs < 0:
            raise ValueError(
                f"interaction_pairs must be >= 0, got {self.interaction_pairs}"
            )
        if self.interaction_strength < 0.0:
            raise ValueError(
                f"interaction_strength must be >= 0, got {self.interaction_strength}"
            )


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return stable_sigmoid(z)


def generate_suite(spec: SyntheticSpec) -> TaskSuite:
    """Materialise the dataset described by ``spec`` as a :class:`TaskSuite`."""
    rng = np.random.default_rng(spec.seed)
    n, m = spec.n_instances, spec.n_features
    n_informative = max(1, int(round(spec.informative_fraction * m)))
    n_redundant = min(int(round(spec.redundant_fraction * m)), m - n_informative)

    informative = rng.standard_normal((n, n_informative))

    # Redundant features: noisy mixtures of 1-3 informative columns each.
    redundant_columns = []
    for _ in range(n_redundant):
        k = int(rng.integers(1, min(3, n_informative) + 1))
        sources = rng.choice(n_informative, size=k, replace=False)
        weights = rng.normal(0.0, 1.0, size=k)
        column = informative[:, sources] @ weights
        column = column / (np.std(column) + 1e-9)
        column += 0.1 * rng.standard_normal(n)
        redundant_columns.append(column)
    redundant = (
        np.stack(redundant_columns, axis=1) if redundant_columns else np.empty((n, 0))
    )

    n_noise = m - n_informative - n_redundant
    noise = rng.standard_normal((n, n_noise))

    features = np.concatenate([informative, redundant, noise], axis=1)
    # Shuffle the columns so informative features are not trivially first.
    column_order = rng.permutation(m)
    features = features[:, column_order]
    # Recover where each informative feature landed after the shuffle.
    landed = np.empty(m, dtype=np.int64)
    landed[column_order] = np.arange(m)
    informative_positions = landed[:n_informative]

    # Concept pools: overlapping informative subsets shared between tasks so
    # seen-task knowledge transfers to unseen tasks drawing from the same pool.
    pool_size = max(spec.task_informative, n_informative // spec.n_concepts)
    concept_pools = []
    for _ in range(spec.n_concepts):
        size = min(pool_size + spec.task_informative, n_informative)
        pool = rng.choice(n_informative, size=size, replace=False)
        concept_pools.append(pool)

    n_tasks = spec.n_seen + spec.n_unseen
    labels = np.empty((n, n_tasks), dtype=np.int64)
    ground_truth: dict[int, tuple[int, ...]] = {}
    noise_levels = rng.uniform(spec.noise_min, spec.noise_max, size=n_tasks)

    for t in range(n_tasks):
        pool = concept_pools[t % spec.n_concepts]
        k = min(spec.task_informative, len(pool))
        chosen = rng.choice(pool, size=k, replace=False)
        weights = rng.normal(0.0, 1.5, size=k)
        # Guarantee each chosen feature has a non-negligible effect.
        weights += np.sign(weights + 1e-12) * 0.5
        logits = informative[:, chosen] @ weights
        # Non-linear structure: pairwise interactions among the task's own
        # informative features (weak marginal correlation, strong joint
        # effect — the regime where evaluator-driven selection pays off).
        if spec.interaction_pairs > 0 and k >= 2:
            for _ in range(spec.interaction_pairs):
                a, b = rng.choice(k, size=2, replace=False)
                sign = 1.0 if rng.random() < 0.5 else -1.0
                product = informative[:, chosen[a]] * informative[:, chosen[b]]
                logits = logits + sign * spec.interaction_strength * product
        logits = logits - np.median(logits)  # roughly balanced classes
        probs = _sigmoid(logits)
        drawn = (rng.random(n) < probs).astype(np.int64)
        flips = rng.random(n) < noise_levels[t]
        labels[:, t] = np.where(flips, 1 - drawn, drawn)
        ground_truth[t] = tuple(sorted(int(informative_positions[c]) for c in chosen))

    table = StructuredTable(
        features,
        labels,
        feature_names=[f"{spec.name}_f{i}" for i in range(m)],
        label_names=[f"{spec.name}_task{t}" for t in range(n_tasks)],
    )
    return TaskSuite(
        spec.name,
        table,
        seen_label_indices=list(range(spec.n_seen)),
        unseen_label_indices=list(range(spec.n_seen, n_tasks)),
        ground_truth=ground_truth,
    )
