"""Seeded train/test split utilities."""

from __future__ import annotations

import numpy as np


def train_test_split_indices(
    n: int, train_fraction: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Randomly partition ``range(n)`` into train and test index arrays.

    The paper (Section IV-A4) uses a random 70/30 row split per run; this is
    the primitive behind :meth:`repro.data.tasks.TaskSuite.split_rows`.
    Both partitions are guaranteed non-empty.
    """
    if n < 2:
        raise ValueError(f"need at least 2 rows to split, got {n}")
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    permutation = rng.permutation(n)
    cut = max(1, min(n - 1, int(round(train_fraction * n))))
    return permutation[:cut], permutation[cut:]


def stratified_split_indices(
    labels: np.ndarray, train_fraction: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Class-stratified split: each class contributes proportionally.

    Useful for very unbalanced tasks where a plain random split can leave a
    test partition without positives.
    """
    labels = np.asarray(labels).reshape(-1)
    if labels.size < 2:
        raise ValueError(f"need at least 2 rows to split, got {labels.size}")
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for value in np.unique(labels):
        members = np.flatnonzero(labels == value)
        members = rng.permutation(members)
        cut = int(round(train_fraction * members.size))
        cut = max(0, min(members.size, cut))
        train_parts.append(members[:cut])
        test_parts.append(members[cut:])
    train = np.concatenate(train_parts) if train_parts else np.empty(0, dtype=np.int64)
    test = np.concatenate(test_parts) if test_parts else np.empty(0, dtype=np.int64)
    # Guarantee both sides are non-empty even under extreme fractions.
    if train.size == 0:
        train, test = test[:1], test[1:]
    if test.size == 0:
        train, test = train[:-1], train[-1:]
    return rng.permutation(train), rng.permutation(test)
