"""A relational table of determinant and dependent attributes.

The paper (Section II-A) formulates structured data as one relational table
``T`` with ``m`` determinant attributes (features) and ``k`` dependent
attributes (prediction targets).  :class:`StructuredTable` is that object:
a dense float feature block plus a binary label block, with named columns,
row/column projection and the *masking* operation used by the reward
function (unselected feature values replaced by zero or the column mean).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import BoundsError


class StructuredTable:
    """In-memory relational table with m features and k label columns."""

    def __init__(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        feature_names: Sequence[str] | None = None,
        label_names: Sequence[str] | None = None,
    ) -> None:
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if labels.ndim == 1:
            labels = labels[:, None]
        if labels.ndim != 2:
            raise ValueError(f"labels must be 1-D or 2-D, got shape {labels.shape}")
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"row mismatch: {features.shape[0]} feature rows vs "
                f"{labels.shape[0]} label rows"
            )
        if not np.all(np.isfinite(features)):
            bad = int(np.sum(~np.isfinite(features)))
            raise ValueError(
                f"features contain {bad} non-finite values; impute or drop "
                f"them before building a StructuredTable"
            )
        self.features = features
        self.labels = labels.astype(np.int64)
        self.feature_names = list(
            feature_names
            if feature_names is not None
            else (f"f{i}" for i in range(features.shape[1]))
        )
        self.label_names = list(
            label_names
            if label_names is not None
            else (f"y{i}" for i in range(labels.shape[1]))
        )
        if len(self.feature_names) != features.shape[1]:
            raise ValueError(
                f"{len(self.feature_names)} feature names for "
                f"{features.shape[1]} feature columns"
            )
        if len(self.label_names) != self.labels.shape[1]:
            raise ValueError(
                f"{len(self.label_names)} label names for "
                f"{self.labels.shape[1]} label columns"
            )

    @property
    def n_rows(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def n_labels(self) -> int:
        return self.labels.shape[1]

    def label_column(self, name_or_index: str | int) -> np.ndarray:
        """Return one dependent attribute as a 1-D int array."""
        index = self._label_index(name_or_index)
        return self.labels[:, index]

    def _label_index(self, name_or_index: str | int) -> int:
        if isinstance(name_or_index, str):
            try:
                return self.label_names.index(name_or_index)
            except ValueError:
                raise KeyError(f"no label column named {name_or_index!r}") from None
        index = int(name_or_index)
        if not 0 <= index < self.n_labels:
            raise BoundsError(f"label index {index} out of range [0, {self.n_labels})")
        return index

    def select_rows(self, indices: np.ndarray | Sequence[int]) -> "StructuredTable":
        """Project onto a subset of rows (copying)."""
        idx = np.asarray(indices, dtype=np.int64)
        return StructuredTable(
            self.features[idx],
            self.labels[idx],
            feature_names=self.feature_names,
            label_names=self.label_names,
        )

    def project_features(self, subset: Iterable[int]) -> np.ndarray:
        """Project the feature block onto a feature-index subset."""
        idx = self._validated_subset(subset)
        return self.features[:, idx]

    def masked_features(
        self, subset: Iterable[int], fill: str = "zero"
    ) -> np.ndarray:
        """Return a full-width feature block with unselected columns masked.

        This is the ``X^{F'}`` of the paper's reward (Eqn. 2): the classifier
        is pretrained on all ``m`` features, so subsets are presented as the
        full vector with deselected entries replaced by ``fill`` — ``"zero"``
        or the per-column ``"mean"``.
        """
        idx = self._validated_subset(subset)
        mask = np.zeros(self.n_features, dtype=bool)
        mask[idx] = True
        masked = self.features.copy()
        if fill == "zero":
            masked[:, ~mask] = 0.0
        elif fill == "mean":
            column_means = self.features.mean(axis=0)
            masked[:, ~mask] = column_means[~mask]
        else:
            raise ValueError(f"fill must be 'zero' or 'mean', got {fill!r}")
        return masked

    def _validated_subset(self, subset: Iterable[int]) -> np.ndarray:
        idx = np.asarray(sorted(set(int(i) for i in subset)), dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_features):
            raise BoundsError(
                f"feature indices must lie in [0, {self.n_features}), got "
                f"[{idx.min()}, {idx.max()}]"
            )
        return idx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StructuredTable(rows={self.n_rows}, features={self.n_features}, "
            f"labels={self.n_labels})"
        )
