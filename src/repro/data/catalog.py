"""Synthetic twins of the paper's eight evaluation datasets (Table I).

Each entry matches the published #instances, #features, #seen tasks and
#unseen tasks.  ``load_mini_dataset`` returns a scaled-down variant (capped
rows/features, same seen/unseen structure) for unit tests and benchmarks
where full-size training would dominate wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.data.synthetic import SyntheticSpec, generate_suite
from repro.data.tasks import TaskSuite


@dataclass(frozen=True)
class DatasetSpec:
    """Catalog row: paper characteristics plus the generator parameters."""

    name: str
    n_instances: int
    n_features: int
    n_seen: int
    n_unseen: int
    task_informative: int
    n_concepts: int
    seed: int

    def to_synthetic(self) -> SyntheticSpec:
        return SyntheticSpec(
            name=self.name,
            n_instances=self.n_instances,
            n_features=self.n_features,
            n_seen=self.n_seen,
            n_unseen=self.n_unseen,
            task_informative=self.task_informative,
            n_concepts=self.n_concepts,
            seed=self.seed,
        )


# Table I of the paper, with per-dataset generator knobs: the number of
# informative features per task scales with the feature count and the number
# of concept pools scales with how many tasks the dataset carries.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("emotions", 593, 72, 4, 2, task_informative=6, n_concepts=2, seed=101),
        DatasetSpec("water-quality", 1060, 16, 7, 7, task_informative=4, n_concepts=3, seed=102),
        DatasetSpec("yeast", 2417, 103, 7, 7, task_informative=8, n_concepts=3, seed=103),
        DatasetSpec("physionet2012", 12000, 41, 12, 17, task_informative=6, n_concepts=4, seed=104),
        DatasetSpec("computers", 12440, 159, 7, 11, task_informative=10, n_concepts=3, seed=105),
        DatasetSpec("mediamill", 43910, 120, 7, 9, task_informative=9, n_concepts=3, seed=106),
        DatasetSpec("business", 5192, 520, 7, 5, task_informative=12, n_concepts=3, seed=107),
        DatasetSpec("entertainment", 4208, 1020, 7, 5, task_informative=14, n_concepts=3, seed=108),
    ]
}


def dataset_names() -> list[str]:
    """Names of the eight paper datasets, in Table I order."""
    return list(DATASETS)


def load_dataset(name: str) -> TaskSuite:
    """Generate the full-size synthetic twin of a paper dataset."""
    spec = _spec(name)
    return generate_suite(spec.to_synthetic())


def load_mini_dataset(
    name: str, max_rows: int = 500, max_features: int = 48
) -> TaskSuite:
    """Generate a scaled-down twin preserving the seen/unseen structure.

    Rows and features are capped (keeping the original counts when already
    below the caps) so tests and benchmarks finish in seconds while still
    exercising the same code paths as the full dataset.
    """
    if max_rows < 2 or max_features < 2:
        raise ValueError("caps must allow at least 2 rows and 2 features")
    spec = _spec(name)
    synthetic = spec.to_synthetic()
    scaled = replace(
        synthetic,
        name=f"{spec.name}-mini",
        n_instances=min(spec.n_instances, max_rows),
        n_features=min(spec.n_features, max_features),
        task_informative=min(spec.task_informative, max(1, max_features // 4)),
    )
    return generate_suite(scaled)


def _spec(name: str) -> DatasetSpec:
    try:
        return DATASETS[name]
    except KeyError:
        valid = ", ".join(dataset_names())
        raise KeyError(f"unknown dataset {name!r}; expected one of: {valid}") from None
