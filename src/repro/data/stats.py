"""Statistical descriptors used as task representations and filter scores.

The paper embeds each task into the RL state as the vector of absolute
Pearson correlation coefficients between every feature and the task's label
column (Section III-B).  K-Best ranks features by mutual information with
the label.  Both are implemented here from first principles.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.numerics import safe_div, safe_xlogy


def pearson_representation(features: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-feature |Pearson correlation| with the label vector.

    Returns a vector in [0, 1] of length ``m``.  Constant features (or a
    constant label vector) get a correlation of 0 rather than NaN.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if features.shape[0] != labels.shape[0]:
        raise ValueError(
            f"row mismatch: {features.shape[0]} feature rows vs {labels.shape[0]} labels"
        )
    if features.shape[0] < 2:
        return np.zeros(features.shape[1])
    x_centered = features - features.mean(axis=0)
    y_centered = labels - labels.mean()
    x_std = np.sqrt(np.sum(x_centered**2, axis=0))
    y_std = np.sqrt(np.sum(y_centered**2))
    denominator = x_std * y_std
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.where(denominator > 0, x_centered.T @ y_centered / denominator, 0.0)
    return np.abs(np.clip(corr, -1.0, 1.0))


def mutual_information_scores(
    features: np.ndarray, labels: np.ndarray, n_bins: int = 8
) -> np.ndarray:
    """Estimate I(feature; label) per feature via equal-frequency binning.

    Continuous features are discretised into ``n_bins`` quantile bins, then
    the plug-in mutual-information estimate is computed against the discrete
    label.  Scores are non-negative; larger means more relevant.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels).reshape(-1)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if features.shape[0] != labels.shape[0]:
        raise ValueError(
            f"row mismatch: {features.shape[0]} feature rows vs {labels.shape[0]} labels"
        )
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    n, m = features.shape
    if n == 0:
        return np.zeros(m)
    label_values, label_codes = np.unique(labels, return_inverse=True)
    n_classes = len(label_values)
    if n_classes < 2:
        return np.zeros(m)
    label_probs = np.bincount(label_codes, minlength=n_classes) / n

    scores = np.empty(m)
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    for j in range(m):
        column = features[:, j]
        edges = np.unique(np.quantile(column, quantiles))
        codes = np.searchsorted(edges, column, side="right")
        n_feature_bins = int(codes.max()) + 1
        joint = np.zeros((n_feature_bins, n_classes))
        np.add.at(joint, (codes, label_codes), 1.0)
        joint /= n
        feature_probs = joint.sum(axis=1)
        outer = feature_probs[:, None] * label_probs[None, :]
        # joint > 0 implies outer > 0 (both marginals are positive there),
        # so the masked x·log(y) evaluates only well-defined entries.
        terms = safe_xlogy(joint, safe_div(joint, outer, fill=1.0))
        scores[j] = max(0.0, float(terms.sum()))
    return scores


def feature_redundancy_matrix(features: np.ndarray) -> np.ndarray:
    """Pairwise |Pearson correlation| between features (m × m).

    Used by the multi-label baselines' redundancy terms.  Constant features
    correlate 0 with everything (and themselves).
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    n, m = features.shape
    if n < 2:
        return np.zeros((m, m))
    centered = features - features.mean(axis=0)
    std = np.sqrt(np.sum(centered**2, axis=0))
    denominator = std[:, None] * std[None, :]
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.where(denominator > 0, centered.T @ centered / denominator, 0.0)
    return np.abs(np.clip(corr, -1.0, 1.0))
