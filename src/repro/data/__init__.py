"""Structured-data substrate: tables, tasks, synthetic datasets.

The paper evaluates on eight multi-label datasets (Mulan + PhysioNet 2012).
Those corpora are not redistributable here, so :mod:`repro.data.catalog`
provides seeded synthetic *twins* that match each dataset's shape (Table I of
the paper: #instances, #features, #seen tasks, #unseen tasks) and plant a
known relevant/redundant/noise feature structure so that feature-selection
quality is measurable against ground truth.
"""

from repro.data.catalog import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
    load_mini_dataset,
)
from repro.data.splits import train_test_split_indices
from repro.data.stats import mutual_information_scores, pearson_representation
from repro.data.synthetic import SyntheticSpec, generate_suite
from repro.data.table import StructuredTable
from repro.data.tasks import Task, TaskSuite

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "StructuredTable",
    "SyntheticSpec",
    "Task",
    "TaskSuite",
    "dataset_names",
    "generate_suite",
    "load_dataset",
    "load_mini_dataset",
    "mutual_information_scores",
    "pearson_representation",
    "train_test_split_indices",
]
