"""Mulan/Weka ARFF loader for real multi-label datasets.

The paper's corpora (Emotions, Yeast, Mediamill, ...) are distributed by
Mulan as ARFF files whose last ``n_labels`` attributes are the binary label
columns.  This loader turns such a file into a
:class:`~repro.data.tasks.TaskSuite`, so the reproduction runs on the real
data wherever it is available — the synthetic twins in
:mod:`repro.data.catalog` exist only because the corpora cannot be
redistributed here.

Supported subset of ARFF: ``@relation``, ``@attribute <name> <type>`` with
numeric (``numeric``/``real``/``integer``) and nominal (``{a,b,...}``)
types, dense ``@data`` rows, ``%`` comments, and ``?`` missing values
(imputed with the column mean).  Sparse ARFF rows (``{i v, ...}``) are also
handled, since the larger Mulan sets ship sparse.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
from repro.errors import DataValidationError

from repro.data.table import StructuredTable
from repro.data.tasks import TaskSuite


class ArffError(DataValidationError):
    """Raised when an ARFF file cannot be parsed."""


def _parse_attribute(line: str) -> tuple[str, list[str] | None]:
    """Return (name, nominal values or None for numeric)."""
    body = line.split(None, 1)[1].strip()
    if body.startswith("'"):
        end = body.index("'", 1)
        name = body[1:end]
        type_part = body[end + 1 :].strip()
    else:
        parts = body.split(None, 1)
        if len(parts) != 2:
            raise ArffError(f"malformed @attribute line: {line!r}")
        name, type_part = parts
    type_part = type_part.strip()
    if type_part.startswith("{"):
        if not type_part.endswith("}"):
            raise ArffError(f"unterminated nominal specification: {line!r}")
        values = [v.strip().strip("'\"") for v in type_part[1:-1].split(",")]
        return name, values
    if type_part.lower() in ("numeric", "real", "integer"):
        return name, None
    raise ArffError(f"unsupported attribute type {type_part!r} for {name!r}")


def _decode_cell(raw: str, nominal: list[str] | None) -> float:
    raw = raw.strip().strip("'\"")
    if raw == "?":
        return np.nan
    if nominal is None:
        return float(raw)
    try:
        return float(nominal.index(raw))
    except ValueError:
        raise ArffError(f"value {raw!r} not in nominal domain {nominal}") from None


def parse_arff(path: str | Path) -> tuple[list[str], np.ndarray]:
    """Parse an ARFF file into (attribute names, dense value matrix).

    Missing values come back as NaN; nominal values as their domain index.
    """
    names: list[str] = []
    nominals: list[list[str] | None] = []
    rows: list[np.ndarray] = []
    in_data = False
    with open(path) as handle:
        for raw_line in handle:
            line = raw_line.strip()
            if not line or line.startswith("%"):
                continue
            lowered = line.lower()
            if not in_data:
                if lowered.startswith("@relation"):
                    continue
                if lowered.startswith("@attribute"):
                    name, nominal = _parse_attribute(line)
                    names.append(name)
                    nominals.append(nominal)
                    continue
                if lowered.startswith("@data"):
                    if not names:
                        raise ArffError("@data before any @attribute")
                    in_data = True
                    continue
                raise ArffError(f"unexpected header line: {line!r}")
            rows.append(_parse_data_row(line, names, nominals))
    if not in_data:
        raise ArffError("no @data section found")
    if not rows:
        raise ArffError("no data rows found")
    return names, np.vstack(rows)


def _parse_data_row(
    line: str, names: list[str], nominals: list[list[str] | None]
) -> np.ndarray:
    n = len(names)
    if line.startswith("{"):
        # Sparse row: {index value, index value, ...}; absent entries are 0.
        if not line.endswith("}"):
            raise ArffError(f"unterminated sparse row: {line!r}")
        row = np.zeros(n)
        body = line[1:-1].strip()
        if body:
            for pair in body.split(","):
                index_str, value_str = pair.strip().split(None, 1)
                index = int(index_str)
                if not 0 <= index < n:
                    raise ArffError(f"sparse index {index} out of range")
                row[index] = _decode_cell(value_str, nominals[index])
        return row
    cells = line.split(",")
    if len(cells) != n:
        raise ArffError(
            f"row has {len(cells)} values for {n} attributes: {line!r}"
        )
    return np.array(
        [_decode_cell(cell, nominal) for cell, nominal in zip(cells, nominals)]
    )


def load_arff_suite(
    path: str | Path,
    n_labels: int,
    n_seen: int,
    name: str | None = None,
    labels_first: bool = False,
) -> TaskSuite:
    """Load a Mulan-style ARFF file as a :class:`TaskSuite`.

    Args:
        path: the ARFF file.
        n_labels: how many attributes are label columns (Mulan convention:
            the *last* ``n_labels``; pass ``labels_first=True`` for datasets
            that put them first).
        n_seen: how many label columns become seen tasks; the remainder are
            unseen.  Matches the paper's Table I partitions.
        name: suite name (defaults to the file stem).
        labels_first: label columns lead rather than trail.

    Missing feature values are imputed with their column mean.
    """
    if n_labels < 2:
        raise ValueError(f"need at least 2 label columns, got {n_labels}")
    if not 1 <= n_seen < n_labels:
        raise ValueError(
            f"n_seen must be in [1, {n_labels - 1}], got {n_seen}"
        )
    attribute_names, values = parse_arff(path)
    if values.shape[1] <= n_labels:
        raise ValueError(
            f"file has {values.shape[1]} attributes; cannot reserve "
            f"{n_labels} for labels"
        )
    if labels_first:
        label_block, feature_block = values[:, :n_labels], values[:, n_labels:]
        label_names = attribute_names[:n_labels]
        feature_names = attribute_names[n_labels:]
    else:
        feature_block, label_block = values[:, :-n_labels], values[:, -n_labels:]
        feature_names = attribute_names[:-n_labels]
        label_names = attribute_names[-n_labels:]

    # Impute missing feature values with the column mean (0 if all missing).
    column_means = np.nanmean(
        np.where(np.isfinite(feature_block), feature_block, np.nan), axis=0
    )
    column_means = np.where(np.isfinite(column_means), column_means, 0.0)
    feature_block = np.where(
        np.isfinite(feature_block), feature_block, column_means[None, :]
    )

    if np.any(~np.isfinite(label_block)):
        raise ArffError("label columns contain missing values")
    labels = label_block.astype(np.int64)
    if not set(np.unique(labels)) <= {0, 1}:
        raise ArffError("label columns must be binary (0/1)")

    table = StructuredTable(
        feature_block, labels, feature_names=feature_names, label_names=label_names
    )
    return TaskSuite(
        name or Path(path).stem,
        table,
        seen_label_indices=list(range(n_seen)),
        unseen_label_indices=list(range(n_seen, n_labels)),
    )
