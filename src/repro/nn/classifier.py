"""Pretrained masked-input classifier backing the RL reward (paper Eqn. 2).

Training an evaluator from scratch for every candidate subset would make the
reward prohibitively slow, so the paper pretrains one classifier per task on
*all* features and, at reward time, feeds it the full feature vector with
deselected entries masked to zero.  :class:`MaskedMLPClassifier` implements
exactly that: a small MLP trained with BCE loss on all features, randomly
*feature-dropout-augmented* during training so it stays calibrated when
columns are zeroed at evaluation time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from repro.errors import BoundsError, NotFittedError

from repro.eval.metrics import accuracy_score, f1_score, roc_auc_score
from repro.nn.losses import BCELoss
from repro.nn.network import MLP
from repro.nn.optim import Adam


class MaskedMLPClassifier:
    """Binary MLP classifier scoring masked feature subsets.

    Args:
        n_features: width of the full feature vector ``m``.
        hidden: hidden-layer widths of the MLP.
        lr: Adam learning rate.
        n_epochs: training epochs over the full dataset.
        batch_size: minibatch size.
        mask_augment: probability that a feature column is zeroed in each
            training minibatch.  This simulates evaluation-time masking so
            the classifier's scores remain meaningful for partial subsets —
            without it, a net trained only on complete vectors collapses
            when most inputs are zero.
        seed: RNG seed for initialization, shuffling and augmentation.
    """

    def __init__(
        self,
        n_features: int,
        hidden: Sequence[int] = (32, 16),
        lr: float = 1e-2,
        n_epochs: int = 30,
        batch_size: int = 64,
        mask_augment: float = 0.3,
        seed: int = 0,
    ) -> None:
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if not 0.0 <= mask_augment < 1.0:
            raise ValueError(f"mask_augment must be in [0, 1), got {mask_augment}")
        self.n_features = n_features
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.mask_augment = mask_augment
        self._rng = np.random.default_rng(seed)
        self._net = MLP(
            [n_features, *hidden, 1],
            self._rng,
            activation="relu",
            output_activation="sigmoid",
        )
        self._optimizer = Adam(self._net.parameters(), lr=lr)
        self._loss = BCELoss()
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._fitted = False

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MaskedMLPClassifier":
        """Pretrain on all features with random mask augmentation."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        if features.ndim != 2 or features.shape[1] != self.n_features:
            raise ValueError(
                f"expected features of shape (n, {self.n_features}), got {features.shape}"
            )
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"row mismatch: {features.shape[0]} rows vs {labels.shape[0]} labels"
            )
        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0)
        self._std = np.where(self._std > 0, self._std, 1.0)
        x = (features - self._mean) / self._std
        n = x.shape[0]
        for _ in range(self.n_epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                xb = x[batch]
                if self.mask_augment > 0.0:
                    drop = self._rng.random(self.n_features) < self.mask_augment
                    if drop.all():
                        drop[self._rng.integers(self.n_features)] = False
                    xb = xb.copy()
                    xb[:, drop] = 0.0
                probs = self._net.forward(xb, training=True)
                self._loss.forward(probs, labels[batch])
                self._optimizer.zero_grad()
                self._net.backward(self._loss.backward())
                self._optimizer.step()
        self._fitted = True
        return self

    def predict_proba(
        self, features: np.ndarray, subset: Sequence[int] | None = None
    ) -> np.ndarray:
        """P(y=1) for each row; if ``subset`` is given, mask the rest to zero.

        Masking happens in *standardised* space (zero = the column mean),
        matching how the augmentation trained the network.
        """
        if not self._fitted or self._mean is None or self._std is None:
            raise NotFittedError("predict_proba called before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.n_features:
            raise ValueError(
                f"expected features of shape (n, {self.n_features}), got {features.shape}"
            )
        x = (features - self._mean) / self._std
        if subset is not None:
            idx = np.asarray(sorted(set(int(i) for i in subset)), dtype=np.int64)
            if idx.size and (idx.min() < 0 or idx.max() >= self.n_features):
                raise BoundsError(
                    f"subset indices must lie in [0, {self.n_features})"
                )
            mask = np.zeros(self.n_features, dtype=bool)
            mask[idx] = True
            x = x.copy()
            x[:, ~mask] = 0.0
        return self._net.infer(x).reshape(-1)

    def score(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        subset: Sequence[int] | None = None,
        metric: str = "auc",
    ) -> float:
        """Evaluate the pretrained net on a (possibly masked) feature view."""
        probs = self.predict_proba(features, subset=subset)
        labels = np.asarray(labels).reshape(-1)
        if metric == "auc":
            return roc_auc_score(labels, probs)
        if metric == "f1":
            return f1_score(labels, (probs >= 0.5).astype(np.int64))
        if metric == "accuracy":
            return accuracy_score(labels, (probs >= 0.5).astype(np.int64))
        raise ValueError(f"metric must be 'auc', 'f1' or 'accuracy', got {metric!r}")
