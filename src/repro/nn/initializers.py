"""Weight initialization schemes for dense layers.

All initializers take an explicit :class:`numpy.random.Generator` so that
every network in the reproduction is seeded deterministically; there is no
global RNG state anywhere in the library.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

#: Signature shared by every initializer: ``(fan_in, fan_out, rng) -> weights``.
Initializer = Callable[[int, int, np.random.Generator], np.ndarray]


def he_init(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialization, suited to ReLU activations.

    Draws from ``N(0, sqrt(2 / fan_in))`` which preserves activation variance
    through rectified layers.
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def xavier_init(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot-uniform initialization, suited to tanh/sigmoid layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros_init(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (used for biases)."""
    del rng  # deterministic; accepted for interface uniformity
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    return np.zeros((fan_in, fan_out))


INITIALIZERS: dict[str, Initializer] = {
    "he": he_init,
    "xavier": xavier_init,
    "zeros": zeros_init,
}


def get_initializer(name: str) -> Initializer:
    """Look up an initializer by name, raising with the valid options."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        valid = ", ".join(sorted(INITIALIZERS))
        raise ValueError(f"unknown initializer {name!r}; expected one of: {valid}") from None
