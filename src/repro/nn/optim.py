"""Optimizers operating on :class:`~repro.nn.layers.Parameter` lists."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer requires at least one parameter")
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def capture_state(self) -> tuple[dict, dict[str, "np.ndarray"]]:
        """Snapshot optimizer state as ``(json_meta, arrays)`` for checkpoints."""
        return {}, {}

    def restore_state(self, meta: dict, arrays: dict[str, "np.ndarray"]) -> None:
        """Restore a snapshot from :meth:`capture_state`."""

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Globally rescale gradients to at most ``max_norm``; returns the norm."""
        if max_norm <= 0.0:
            raise ValueError(f"max_norm must be positive, got {max_norm}")
        total = np.sqrt(sum(float(np.sum(p.grad**2)) for p in self.parameters))
        if total > max_norm:
            scale = max_norm / (total + 1e-12)
            for parameter in self.parameters:
                parameter.grad *= scale
        return total


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def capture_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        arrays = {f"velocity/{i}": v.copy() for i, v in enumerate(self._velocity)}
        return {"n_parameters": len(self.parameters)}, arrays

    def restore_state(self, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        _check_parameter_count(meta, self.parameters)
        for i, velocity in enumerate(self._velocity):
            velocity[...] = arrays[f"velocity/{i}"]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity -= self.lr * parameter.grad
                parameter.value += velocity
            else:
                parameter.value -= self.lr * parameter.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def capture_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        arrays: dict[str, np.ndarray] = {}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            arrays[f"m/{i}"] = m.copy()
            arrays[f"v/{i}"] = v.copy()
        meta = {"step_count": self._step_count, "n_parameters": len(self.parameters)}
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        _check_parameter_count(meta, self.parameters)
        self._step_count = int(meta["step_count"])
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            m[...] = arrays[f"m/{i}"]
            v[...] = arrays[f"v/{i}"]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _check_parameter_count(meta: dict, parameters: Sequence[Parameter]) -> None:
    captured = meta.get("n_parameters")
    if captured != len(parameters):
        raise ValueError(
            f"optimizer snapshot covers {captured} parameters, "
            f"this optimizer has {len(parameters)}"
        )
