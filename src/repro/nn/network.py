"""MLP builder and state-dict (de)serialization helpers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Dropout, Layer, Linear, ReLU, Sequential, Sigmoid, Tanh

_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid}


class MLP(Sequential):
    """Multi-layer perceptron: Linear → activation (→ Dropout) per hidden layer.

    ``sizes`` gives the full layer widths, e.g. ``[in, 64, 64, out]``.  The
    output layer is linear (no activation) unless ``output_activation`` is
    given.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        activation: str = "relu",
        output_activation: str | None = None,
        dropout: float = 0.0,
        name: str = "mlp",
    ) -> None:
        if len(sizes) < 2:
            raise ValueError(f"MLP needs at least [in, out] sizes, got {list(sizes)}")
        if activation not in _ACTIVATIONS:
            valid = ", ".join(sorted(_ACTIVATIONS))
            raise ValueError(f"unknown activation {activation!r}; expected one of: {valid}")
        weight_init = "he" if activation == "relu" else "xavier"
        layers: list[Layer] = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            is_output = i == len(sizes) - 2
            layers.append(
                Linear(fan_in, fan_out, rng, weight_init=weight_init, name=f"{name}.{i}")
            )
            if not is_output:
                layers.append(_ACTIVATIONS[activation]())
                if dropout > 0.0:
                    layers.append(Dropout(dropout, rng))
            elif output_activation is not None:
                layers.append(_ACTIVATIONS[output_activation]())
        super().__init__(layers)
        self.sizes = list(sizes)

    @property
    def in_features(self) -> int:
        return self.sizes[0]

    @property
    def out_features(self) -> int:
        return self.sizes[-1]


def state_dict(layer: Layer) -> dict[str, np.ndarray]:
    """Snapshot all parameters of ``layer`` as ``{name: copy-of-value}``."""
    snapshot: dict[str, np.ndarray] = {}
    for parameter in layer.parameters():
        if parameter.name in snapshot:
            raise ValueError(f"duplicate parameter name {parameter.name!r}")
        snapshot[parameter.name] = parameter.value.copy()
    return snapshot


def load_state_dict(layer: Layer, snapshot: dict[str, np.ndarray]) -> None:
    """Load parameter values in place; shapes and names must match exactly."""
    parameters = {p.name: p for p in layer.parameters()}
    if set(parameters) != set(snapshot):
        missing = set(parameters) - set(snapshot)
        extra = set(snapshot) - set(parameters)
        raise ValueError(f"state dict mismatch: missing={missing}, extra={extra}")
    for name, parameter in parameters.items():
        value = np.asarray(snapshot[name], dtype=np.float64)
        if value.shape != parameter.value.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: "
                f"{value.shape} vs {parameter.value.shape}"
            )
        parameter.value[...] = value
