"""Dueling value/advantage network head (Wang et al., 2016; paper Eqn. 1c/3).

The Q-value decomposes as::

    Q(s, a) = V(s) + (A(s, a) - mean_a' A(s, a'))

``f^E`` in the paper broadcasts the scalar V across actions; ``f^N`` zero-
centres the advantage vector.  Both streams share a trunk MLP and gradients
flow through both heads back into the trunk.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Layer, Linear, Parameter, ReLU, Sequential
from repro.nn.network import MLP


class DuelingHead(Layer):
    """Splits a trunk representation into V(s) and zero-centred A(s, ·)."""

    def __init__(self, in_features: int, n_actions: int, rng: np.random.Generator) -> None:
        if n_actions < 2:
            raise ValueError(f"dueling head needs at least 2 actions, got {n_actions}")
        self.value_head = Linear(in_features, 1, rng, name="dueling.value")
        self.advantage_head = Linear(in_features, n_actions, rng, name="dueling.advantage")
        self.n_actions = n_actions

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        value = self.value_head.forward(x, training=training)
        advantage = self.advantage_head.forward(x, training=training)
        centred = advantage - advantage.mean(axis=1, keepdims=True)
        return value + centred

    def infer(self, x: np.ndarray) -> np.ndarray:
        value = self.value_head.infer(x)
        advantage = self.advantage_head.infer(x)
        centred = advantage - advantage.mean(axis=1, keepdims=True)
        return value + centred

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.atleast_2d(grad_output)
        # dQ/dV broadcasts: each action's gradient contributes to the scalar V.
        grad_value = grad_output.sum(axis=1, keepdims=True)
        # Zero-centring A means dQ/dA = grad - mean(grad) per row.
        grad_advantage = grad_output - grad_output.mean(axis=1, keepdims=True)
        grad_in = self.value_head.backward(grad_value)
        grad_in = grad_in + self.advantage_head.backward(grad_advantage)
        return grad_in

    def parameters(self) -> list[Parameter]:
        return self.value_head.parameters() + self.advantage_head.parameters()


class DuelingNetwork(Sequential):
    """Trunk MLP followed by a :class:`DuelingHead`.

    ``hidden`` lists the trunk's hidden widths; the final hidden width feeds
    both the value and advantage streams.
    """

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        hidden: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        if not hidden:
            raise ValueError("DuelingNetwork requires at least one hidden layer")
        trunk = MLP([state_dim, *hidden], rng, activation="relu", name="trunk")
        # MLP with sizes [in, h1, ..., hk] ends in a Linear; append the
        # activation for the last trunk layer before the dueling split.
        layers: list[Layer] = [*trunk.layers, ReLU(), DuelingHead(hidden[-1], n_actions, rng)]
        super().__init__(layers)
        self.state_dim = state_dim
        self.n_actions = n_actions
        self.hidden = list(hidden)
