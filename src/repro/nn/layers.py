"""Core layers with explicit forward/backward passes.

Each :class:`Layer` caches whatever it needs during ``forward`` and consumes
it during ``backward``.  Gradients accumulate on :class:`Parameter` objects;
optimizers read ``parameter.grad`` and write ``parameter.value`` in place so
layers and optimizers stay decoupled.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np
from repro.errors import LifecycleError

from repro.analysis.numerics import stable_sigmoid
from repro.nn.initializers import get_initializer


class Parameter:
    """A trainable tensor together with its accumulated gradient."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray) -> None:
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name!r}, shape={self.value.shape})"


class Layer:
    """Base class for differentiable layers.

    Subclasses implement :meth:`forward` and :meth:`backward`; parametric
    layers also override :meth:`parameters`.
    """

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Pure inference pass: no activation caching, no RNG, no writes.

        ``forward(training=False)`` still *contains* cache-write statements
        (behind the ``training`` guard), so a static effect analysis must
        treat it as mutating.  ``infer`` is the statically-read-only path the
        rollout uses: the PAR601 parallel-safety certificate relies on every
        network evaluation reachable from ``Agent.act`` going through here.
        Deliberately not defaulting to ``forward`` — a subclass without a
        pure path must say so.
        """
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` (dL/d output) to dL/d input."""
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        return []

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Linear(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        weight_init: str = "he",
        bias: bool = True,
        name: str = "linear",
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"feature dimensions must be positive, got {in_features}, {out_features}"
            )
        init = get_initializer(weight_init)
        self.weight = Parameter(f"{name}.weight", init(in_features, out_features, rng))
        self.bias = Parameter(f"{name}.bias", np.zeros(out_features)) if bias else None
        self._x: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, got {x.shape[1]}"
            )
        if training:
            self._x = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, got {x.shape[1]}"
            )
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise LifecycleError("backward called before forward(training=True)")
        grad_output = np.atleast_2d(grad_output)
        self.weight.grad += self._x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._mask = x > 0.0
        return np.maximum(x, 0.0)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(np.asarray(x, dtype=np.float64), 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise LifecycleError("backward called before forward(training=True)")
        return grad_output * self._mask


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(np.asarray(x, dtype=np.float64))
        if training:
            self._out = out
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(np.asarray(x, dtype=np.float64))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise LifecycleError("backward called before forward(training=True)")
        return grad_output * (1.0 - self._out**2)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = stable_sigmoid(x)
        if training:
            self._out = out
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        return stable_sigmoid(np.asarray(x, dtype=np.float64))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise LifecycleError("backward called before forward(training=True)")
        return grad_output * self._out * (1.0 - self._out)


class Dropout(Layer):
    """Inverted dropout: active only when ``training`` is True."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def infer(self, x: np.ndarray) -> np.ndarray:
        # Inverted dropout is the identity at inference: no mask is drawn,
        # the shared RNG is untouched and no mask state is (re)written.
        return np.asarray(x, dtype=np.float64)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class Sequential(Layer):
    """Composes layers in order; backward runs them in reverse."""

    def __init__(self, layers: Sequence[Layer] | Iterable[Layer]) -> None:
        self.layers: list[Layer] = list(layers)
        if not self.layers:
            raise ValueError("Sequential requires at least one layer")

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.infer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
