"""Minimal NumPy deep-learning substrate.

The paper trains small multi-layer perceptrons (a Dueling Q-network and a
masked-input classifier) with PyTorch.  This package provides the same
building blocks — dense layers, activations, dropout, losses, SGD/Adam and a
dueling value/advantage head — implemented with explicit NumPy forward and
backward passes so the reproduction has no dependency on a GPU framework.

The API is intentionally close to the familiar ``torch.nn`` shape::

    net = MLP([state_dim, 64, 64, n_actions], activation="relu")
    loss = HuberLoss()
    opt = Adam(net.parameters(), lr=1e-3)

    pred = net.forward(x, training=True)
    value, grad = loss.forward(pred, target), loss.backward()
    net.backward(grad)
    opt.step()
"""

from repro.nn.classifier import MaskedMLPClassifier
from repro.nn.dueling import DuelingHead, DuelingNetwork
from repro.nn.initializers import he_init, xavier_init, zeros_init
from repro.nn.layers import (
    Dropout,
    Layer,
    Linear,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import BCELoss, CrossEntropyLoss, HuberLoss, MSELoss
from repro.nn.network import MLP, load_state_dict, state_dict
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Adam",
    "BCELoss",
    "CrossEntropyLoss",
    "Dropout",
    "DuelingHead",
    "DuelingNetwork",
    "HuberLoss",
    "Layer",
    "Linear",
    "MLP",
    "MSELoss",
    "MaskedMLPClassifier",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "he_init",
    "load_state_dict",
    "state_dict",
    "xavier_init",
    "zeros_init",
]
