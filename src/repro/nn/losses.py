"""Loss functions with analytic gradients.

Each loss exposes ``forward(pred, target) -> float`` and ``backward() ->
ndarray`` (dL/d pred, averaged over the batch), matching the layer API so a
training step is ``loss.forward(...); net.backward(loss.backward())``.
"""

from __future__ import annotations

import numpy as np
from repro.errors import LifecycleError

from repro.analysis.numerics import safe_log, stable_softmax


class Loss:
    """Base class; subclasses cache forward inputs for backward."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)


def _align(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pred = np.atleast_2d(np.asarray(pred, dtype=np.float64))
    target = np.asarray(target, dtype=np.float64)
    target = target.reshape(pred.shape)
    return pred, target


class MSELoss(Loss):
    """Mean squared error, averaged over all elements."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _align(pred, target)
        self._diff = pred - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise LifecycleError("backward called before forward")
        return 2.0 * self._diff / self._diff.size


class HuberLoss(Loss):
    """Huber (smooth-L1) loss — the standard robust TD-error loss for DQN."""

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0.0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _align(pred, target)
        self._diff = pred - target
        abs_diff = np.abs(self._diff)
        quadratic = np.minimum(abs_diff, self.delta)
        linear = abs_diff - quadratic
        return float(np.mean(0.5 * quadratic**2 + self.delta * linear))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise LifecycleError("backward called before forward")
        clipped = np.clip(self._diff, -self.delta, self.delta)
        return clipped / self._diff.size


class BCELoss(Loss):
    """Binary cross-entropy on probabilities in (0, 1)."""

    def __init__(self, eps: float = 1e-12) -> None:
        self.eps = eps
        self._pred: np.ndarray | None = None
        self._target: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _align(pred, target)
        pred = np.clip(pred, self.eps, 1.0 - self.eps)
        self._pred, self._target = pred, target
        return float(
            -np.mean(target * safe_log(pred) + (1.0 - target) * safe_log(1.0 - pred))
        )

    def backward(self) -> np.ndarray:
        if self._pred is None or self._target is None:
            raise LifecycleError("backward called before forward")
        denom = self._pred * (1.0 - self._pred) * self._pred.size
        return (self._pred - self._target) / denom


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy on raw logits with integer class targets."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._target: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        logits = np.atleast_2d(np.asarray(pred, dtype=np.float64))
        target = np.asarray(target, dtype=np.int64).reshape(-1)
        if target.shape[0] != logits.shape[0]:
            raise ValueError(
                f"batch mismatch: {logits.shape[0]} logits vs {target.shape[0]} targets"
            )
        probs = stable_softmax(logits, axis=1)
        self._probs, self._target = probs, target
        picked = probs[np.arange(len(target)), target]
        return float(-np.mean(safe_log(picked)))

    def backward(self) -> np.ndarray:
        if self._probs is None or self._target is None:
            raise LifecycleError("backward called before forward")
        grad = self._probs.copy()
        grad[np.arange(len(self._target)), self._target] -= 1.0
        return grad / len(self._target)
