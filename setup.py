"""Setuptools shim so editable installs work without the `wheel` package.

``pip install -e .`` requires `wheel` for PEP 660 builds; this offline
environment lacks it, so `python setup.py develop` (driven by setup.cfg /
pyproject metadata) provides the equivalent.
"""

from setuptools import setup

setup()
