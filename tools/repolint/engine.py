"""repolint core: findings, suppressions, import resolution and the analyzer.

The engine is deliberately self-contained (stdlib only) so it can run in any
environment that can run the repo itself.  Rules are small classes over the
``ast`` module; the engine parses each file once, hands every rule the same
:class:`RuleContext`, and filters the merged findings through per-line
``# repolint: disable=CODE`` suppression comments.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

SUPPRESS_PATTERN = re.compile(r"#\s*repolint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Directories never descended into when walking a tree of files.
SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


class Rule:
    """Base class for repolint rules.

    Subclasses set ``code`` / ``name`` / ``hint`` (the autofix guidance
    printed with every finding) and implement :meth:`check`.
    """

    code: str = ""
    name: str = ""
    hint: str = ""

    def check(self, ctx: "RuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: "RuleContext", node: ast.AST, message: str, hint: str | None = None
    ) -> Finding:
        return Finding(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            hint=self.hint if hint is None else hint,
        )


class ImportResolver:
    """Maps local names to the dotted origin they were imported from.

    ``import numpy as np`` → ``np`` resolves to ``numpy``;
    ``from numpy import random`` → ``random`` resolves to ``numpy.random``;
    ``from numpy.random import SeedSequence as SS`` → ``SS`` resolves to
    ``numpy.random.SeedSequence``.  Relative imports stay unresolved — the
    project rules only target absolute stdlib/numpy origins.
    """

    def __init__(self, tree: ast.AST):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the *root* name.
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a Name/Attribute chain, or None if unresolvable."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.aliases.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))


@dataclass
class RuleContext:
    """Everything a rule needs to analyze one parsed file."""

    path: Path
    module: str | None
    tree: ast.Module
    source_lines: list[str]
    resolver: ImportResolver = field(init=False)

    def __post_init__(self) -> None:
        self.resolver = ImportResolver(self.tree)

    def module_in(self, *prefixes: str) -> bool:
        """True when the file's dotted module sits under one of ``prefixes``."""
        if self.module is None:
            return False
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )

    def walk_scoped(self) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
        """Yield ``(node, ancestors)`` pairs in document order."""

        def visit(
            node: ast.AST, ancestors: tuple[ast.AST, ...]
        ) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
            yield node, ancestors
            for child in ast.iter_child_nodes(node):
                yield from visit(child, ancestors + (node,))

        yield from visit(self.tree, ())


def module_for_path(path: Path) -> str | None:
    """Infer the dotted module for a file living under a ``repro`` tree."""
    parts = list(path.resolve().with_suffix("").parts)
    if "repro" not in parts:
        return None
    index = parts.index("repro")
    dotted = ".".join(parts[index:])
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def suppressed_codes_by_line(source_lines: Sequence[str]) -> dict[int, set[str]]:
    """Per-line suppression sets from ``# repolint: disable=CODE[,CODE...]``."""
    suppressed: dict[int, set[str]] = {}
    for number, line in enumerate(source_lines, start=1):
        match = SUPPRESS_PATTERN.search(line)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
        if codes:
            suppressed[number] = codes
    return suppressed


def default_rules() -> list[Rule]:
    from tools.repolint.rules import all_rules

    return all_rules()


def analyze_source(
    source: str,
    path: Path | str,
    module: str | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Run every rule over one source blob and filter suppressions."""
    path = Path(path)
    if rules is None:
        rules = default_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                path=str(path),
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                code="PARSE001",
                message=f"file does not parse: {error.msg}",
                hint="repolint needs syntactically valid Python",
            )
        ]
    source_lines = source.splitlines()
    ctx = RuleContext(
        path=path,
        module=module if module is not None else module_for_path(path),
        tree=tree,
        source_lines=source_lines,
    )
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    suppressed = suppressed_codes_by_line(source_lines)
    kept = [
        finding
        for finding in findings
        if not (
            finding.line in suppressed
            and (
                finding.code in suppressed[finding.line]
                or "all" in suppressed[finding.line]
            )
        )
    ]
    return sorted(kept, key=lambda f: (f.path, f.line, f.col, f.code))


def analyze_file(path: Path | str, rules: Sequence[Rule] | None = None) -> list[Finding]:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return analyze_source(source, path, rules=rules)


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in SKIP_DIRS for part in candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def analyze_paths(
    paths: Iterable[Path | str], rules: Sequence[Rule] | None = None
) -> list[Finding]:
    if rules is None:
        rules = default_rules()
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(analyze_file(path, rules=rules))
    return findings
