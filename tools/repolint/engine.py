"""repolint core: findings, suppressions, import resolution and the analyzer.

The engine is deliberately self-contained (stdlib only) so it can run in any
environment that can run the repo itself.  Rules come in two shapes:

* per-file :class:`Rule` — the engine parses each file once, hands every
  rule the same :class:`RuleContext`, and filters the merged findings
  through per-line ``# repolint: disable=CODE`` and file-level
  ``# repolint: disable-file=CODE`` suppression comments;
* whole-program :class:`ProgramRule` — the engine additionally parses the
  *entire* configured package (even when only a subset of files was
  requested, so import-layer and call-graph facts are never truncated),
  builds a :class:`ProgramContext`, runs each program rule once, and keeps
  only the findings that land in requested files.

One :class:`~tools.repolint.cache.SourceCache` is threaded through a whole
``analyze_paths`` run, so a file that is both a per-file target and a
member of the analyzed package is read and parsed exactly once; an
optional :class:`~tools.repolint.cache.ResultCache` additionally skips
per-file analysis for files whose content hash is unchanged since the
last run (program passes always recompute — their verdicts depend on
every other file).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from tools.repolint.config import RepolintConfig, find_pyproject, load_config

if TYPE_CHECKING:  # import-cycle guard: cache.py imports Finding from here
    from tools.repolint.cache import ResultCache, SourceCache

SUPPRESS_PATTERN = re.compile(r"#\s*repolint:\s*disable=([A-Za-z0-9_,\s]+)")
FILE_SUPPRESS_PATTERN = re.compile(
    r"#\s*repolint:\s*disable-file=([A-Za-z0-9_,\s]+)"
)

#: Directories never descended into when walking a tree of files.
SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


class Rule:
    """Base class for repolint rules.

    Subclasses set ``code`` / ``name`` / ``hint`` (the autofix guidance
    printed with every finding) and implement :meth:`check`.
    """

    code: str = ""
    name: str = ""
    hint: str = ""

    def check(self, ctx: "RuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: "RuleContext", node: ast.AST, message: str, hint: str | None = None
    ) -> Finding:
        return Finding(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            hint=self.hint if hint is None else hint,
        )


class ImportResolver:
    """Maps local names to the dotted origin they were imported from.

    ``import numpy as np`` → ``np`` resolves to ``numpy``;
    ``from numpy import random`` → ``random`` resolves to ``numpy.random``;
    ``from numpy.random import SeedSequence as SS`` → ``SS`` resolves to
    ``numpy.random.SeedSequence``.  Relative imports stay unresolved — the
    project rules only target absolute stdlib/numpy origins.
    """

    def __init__(self, tree: ast.AST):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the *root* name.
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a Name/Attribute chain, or None if unresolvable."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.aliases.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))


@dataclass
class RuleContext:
    """Everything a rule needs to analyze one parsed file."""

    path: Path
    module: str | None
    tree: ast.Module
    source_lines: list[str]
    resolver: ImportResolver = field(init=False)

    def __post_init__(self) -> None:
        self.resolver = ImportResolver(self.tree)

    def module_in(self, *prefixes: str) -> bool:
        """True when the file's dotted module sits under one of ``prefixes``."""
        if self.module is None:
            return False
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )

    def walk_scoped(self) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
        """Yield ``(node, ancestors)`` pairs in document order."""

        def visit(
            node: ast.AST, ancestors: tuple[ast.AST, ...]
        ) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
            yield node, ancestors
            for child in ast.iter_child_nodes(node):
                yield from visit(child, ancestors + (node,))

        yield from visit(self.tree, ())


@dataclass
class ProgramFile:
    """One parsed module of the analyzed program."""

    path: Path
    module: str
    tree: ast.Module
    source_lines: list[str]


class ProgramContext:
    """Whole-program facts: parsed modules plus derived graphs and effects.

    The graphs are cached properties so per-file-only runs never pay for
    them, and every program rule shares one instance.
    """

    def __init__(self, files: Sequence[ProgramFile], config: RepolintConfig):
        self.config = config
        self.files: dict[str, ProgramFile] = {file.module: file for file in files}

    @classmethod
    def from_sources(
        cls, sources: Mapping[str, str], config: RepolintConfig
    ) -> "ProgramContext":
        """Build from ``{dotted_module: source}`` — the test entry point."""
        files = []
        for module, source in sources.items():
            files.append(
                ProgramFile(
                    path=Path(module.replace(".", "/") + ".py"),
                    module=module,
                    tree=ast.parse(source),
                    source_lines=source.splitlines(),
                )
            )
        return cls(files, config)

    @classmethod
    def from_package(
        cls,
        package_dir: Path,
        config: RepolintConfig,
        source_cache: "SourceCache | None" = None,
    ) -> "ProgramContext":
        """Parse every module under the installed package directory.

        With a ``source_cache`` (one per ``analyze_paths`` run) files that
        per-file rules already parsed are reused instead of re-read.
        """
        files = []
        for path in iter_python_files([package_dir]):
            module = module_for_path(path, package=config.package)
            if module is None:
                continue
            try:
                if source_cache is not None:
                    parsed = source_cache.parse(path)
                    tree, source_lines = parsed.tree, parsed.source_lines
                else:
                    source = path.read_text(encoding="utf-8")
                    tree = ast.parse(source)
                    source_lines = source.splitlines()
            except (OSError, SyntaxError):
                continue  # unreadable/unparsable files carry PARSE001 instead
            display = Path(os.path.relpath(path, Path.cwd()))
            files.append(
                ProgramFile(
                    path=display,
                    module=module,
                    tree=tree,
                    source_lines=source_lines,
                )
            )
        return cls(files, config)

    @cached_property
    def import_graph(self):  # -> ImportGraph
        from tools.repolint.graphs.imports import build_import_graph

        return build_import_graph(self.files.values(), self.config)

    @cached_property
    def index(self):  # -> ProgramIndex
        from tools.repolint.graphs.calls import build_program_index

        return build_program_index(self.files.values(), self.config)

    @cached_property
    def call_graph(self):  # -> CallGraph
        from tools.repolint.graphs.calls import build_call_graph

        return build_call_graph(self.index)

    @cached_property
    def effects(self):  # -> dict[str, FunctionEffect]
        from tools.repolint.effects import infer_effects

        return infer_effects(self.index)

    @cached_property
    def concurrency(self):  # -> ConcurrencyIndex
        from tools.repolint.graphs.concurrency import build_concurrency_index

        return build_concurrency_index(self.index, self.call_graph, self.config)

    @cached_property
    def exceptions(self):  # -> ExceptionIndex
        from tools.repolint.graphs.exceptions import build_exception_index

        return build_exception_index(
            self.index,
            self.call_graph,
            self.config,
            module_trees={m: f.tree for m, f in self.files.items()},
        )

    def file_for(self, module: str) -> ProgramFile | None:
        return self.files.get(module)


class ProgramRule(Rule):
    """Base class for rules that need the whole program."""

    def check(self, ctx: "RuleContext") -> Iterator[Finding]:
        return iter(())

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        raise NotImplementedError

    def program_finding(
        self,
        program: ProgramContext,
        module: str,
        line: int,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        file = program.file_for(module)
        return Finding(
            path=str(file.path) if file is not None else module,
            line=line,
            col=1,
            code=self.code,
            message=message,
            hint=self.hint if hint is None else hint,
        )


def module_for_path(path: Path, package: str = "repro") -> str | None:
    """Infer the dotted module for a file living under a ``package`` tree."""
    parts = list(path.resolve().with_suffix("").parts)
    if package not in parts:
        return None
    index = parts.index(package)
    dotted = ".".join(parts[index:])
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def suppressed_codes_by_line(source_lines: Sequence[str]) -> dict[int, set[str]]:
    """Per-line suppression sets from ``# repolint: disable=CODE[,CODE...]``."""
    suppressed: dict[int, set[str]] = {}
    for number, line in enumerate(source_lines, start=1):
        match = SUPPRESS_PATTERN.search(line)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
        if codes:
            suppressed[number] = codes
    return suppressed


def file_suppressed_codes(source_lines: Sequence[str]) -> set[str]:
    """Whole-file suppressions from ``# repolint: disable-file=CODE[,...]``.

    The comment may sit on any line (module docstring epilogue, next to
    the offending cluster, ...); each named code — or ``all`` — is
    silenced for the entire file.  Other codes keep firing.
    """
    suppressed: set[str] = set()
    for line in source_lines:
        match = FILE_SUPPRESS_PATTERN.search(line)
        if match is None:
            continue
        suppressed.update(
            code.strip() for code in match.group(1).split(",") if code.strip()
        )
    return suppressed


def default_rules() -> list[Rule]:
    from tools.repolint.rules import all_rules

    return all_rules()


def _filter_suppressed(
    findings: Iterable[Finding],
    suppressed: Mapping[int, set[str]],
    file_suppressed: set[str] | None = None,
    used_lines: set[tuple[int, str]] | None = None,
    used_file: set[str] | None = None,
) -> list[Finding]:
    """Drop suppressed findings, optionally recording which pragmas fired.

    ``used_lines`` collects ``(line, code)`` pairs for per-line pragmas
    that actually silenced something and ``used_file`` the file-level
    codes that did — the raw material for the LINT001 stale-suppression
    check.  Only *named* codes are recorded; a blanket ``all`` pragma is
    deliberate and never reported stale.
    """
    file_codes = file_suppressed or set()
    kept: list[Finding] = []
    for finding in findings:
        if finding.code in file_codes or "all" in file_codes:
            if used_file is not None and finding.code in file_codes:
                used_file.add(finding.code)
            continue
        line_codes = suppressed.get(finding.line, set())
        if finding.code in line_codes or "all" in line_codes:
            if used_lines is not None and finding.code in line_codes:
                used_lines.add((finding.line, finding.code))
            continue
        kept.append(finding)
    return kept


#: Codes a stale-suppression check never flags: ``all`` is a deliberate
#: blanket, and flagging LINT001's own pragma would be self-referential.
_NEVER_STALE = frozenset({"all", "LINT001"})


def _file_pragma_lines(source_lines: Sequence[str]) -> dict[str, int]:
    """First line carrying each ``disable-file=CODE`` pragma, per code."""
    lines: dict[str, int] = {}
    for number, line in enumerate(source_lines, start=1):
        match = FILE_SUPPRESS_PATTERN.search(line)
        if match is None:
            continue
        for code in match.group(1).split(","):
            code = code.strip()
            if code and code not in lines:
                lines[code] = number
    return lines


def _unused_suppression_findings(
    path: Path | str,
    source_lines: Sequence[str],
    suppressed: Mapping[int, set[str]],
    file_suppressed: set[str],
    used_lines: set[tuple[int, str]],
    used_file: set[str],
    checkable: set[str],
) -> list[Finding]:
    """LINT001 findings for pragmas that silenced nothing this run.

    A pragma is only provably stale when the rule it names actually ran:
    ``checkable`` is the set of codes checked against this file in the
    current phase, so a ``--select RNG101`` run never flags a dormant
    ``RES801`` pragma, and per-file phases never flag program-rule
    pragmas (those are judged after the program pass).
    """
    findings: list[Finding] = []
    hint = "delete the stale pragma (or un-fix whatever it was hiding)"
    for line in sorted(suppressed):
        for code in sorted(suppressed[line]):
            if code in _NEVER_STALE or code not in checkable:
                continue
            if (line, code) not in used_lines:
                findings.append(
                    Finding(
                        path=str(path),
                        line=line,
                        col=1,
                        code="LINT001",
                        message=(
                            f"unused suppression: no {code} finding is "
                            "silenced on this line"
                        ),
                        hint=hint,
                    )
                )
    if file_suppressed:
        pragma_lines = _file_pragma_lines(source_lines)
        for code in sorted(file_suppressed):
            if code in _NEVER_STALE or code not in checkable:
                continue
            if code not in used_file:
                findings.append(
                    Finding(
                        path=str(path),
                        line=pragma_lines.get(code, 1),
                        col=1,
                        code="LINT001",
                        message=(
                            f"unused suppression: {code} fires nowhere "
                            "in this file"
                        ),
                        hint=hint,
                    )
                )
    return findings


def analyze_source(
    source: str,
    path: Path | str,
    module: str | None = None,
    rules: Sequence[Rule] | None = None,
    config: RepolintConfig | None = None,
    extra_sources: Mapping[str, str] | None = None,
    tree: ast.Module | None = None,
) -> list[Finding]:
    """Run every rule over one source blob and filter suppressions.

    Per-file rules always run.  Program rules run only when an explicit
    ``config`` is given: the blob (plus any ``extra_sources``, a mapping of
    dotted module name to source) then forms the whole program, which keeps
    snippet-level tests hermetic.  A pre-parsed ``tree`` (from the run's
    :class:`SourceCache`) skips the redundant parse.
    """
    path = Path(path)
    if rules is None:
        rules = default_rules()
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            return [
                Finding(
                    path=str(path),
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    code="PARSE001",
                    message=f"file does not parse: {error.msg}",
                    hint="repolint needs syntactically valid Python",
                )
            ]
    source_lines = source.splitlines()
    module = module if module is not None else module_for_path(path)
    ctx = RuleContext(
        path=path,
        module=module,
        tree=tree,
        source_lines=source_lines,
    )
    findings: list[Finding] = []
    for rule in rules:
        if not isinstance(rule, ProgramRule):
            findings.extend(rule.check(ctx))
    if config is not None:
        program_rules = [rule for rule in rules if isinstance(rule, ProgramRule)]
        if program_rules:
            sources: dict[str, str] = dict(extra_sources or {})
            sources[module or path.stem] = source
            program = ProgramContext.from_sources(sources, config)
            # Point the blob's ProgramFile at the caller-visible path.
            blob = program.file_for(module or path.stem)
            if blob is not None:
                blob.path = path
            target = {str(path)}
            for rule in program_rules:
                findings.extend(
                    finding
                    for finding in rule.check_program(program)
                    if finding.path in target
                )
    suppressed = suppressed_codes_by_line(source_lines)
    file_suppressed = file_suppressed_codes(source_lines)
    used_lines: set[tuple[int, str]] = set()
    used_file: set[str] = set()
    kept = _filter_suppressed(
        findings, suppressed, file_suppressed, used_lines, used_file
    )
    if any(rule.code == "LINT001" for rule in rules):
        checkable = {
            rule.code for rule in rules if not isinstance(rule, ProgramRule)
        }
        if config is not None:
            # Program rules ran over this blob too, so their pragmas are
            # judged here as well.
            checkable |= {
                rule.code for rule in rules if isinstance(rule, ProgramRule)
            }
        stale = _unused_suppression_findings(
            path,
            source_lines,
            suppressed,
            file_suppressed,
            used_lines,
            used_file,
            checkable,
        )
        # LINT001 findings honour suppressions themselves (disable=LINT001).
        kept.extend(_filter_suppressed(stale, suppressed, file_suppressed))
    return sorted(kept, key=lambda f: (f.path, f.line, f.col, f.code))


def analyze_file(
    path: Path | str,
    rules: Sequence[Rule] | None = None,
    source_cache: "SourceCache | None" = None,
) -> list[Finding]:
    path = Path(path)
    if source_cache is not None:
        try:
            parsed = source_cache.parse(path)
        except SyntaxError:
            pass  # fall through to analyze_source for the PARSE001 finding
        except OSError as error:
            return [
                Finding(
                    path=str(path),
                    line=1,
                    col=1,
                    code="PARSE001",
                    message=f"file is unreadable: {error}",
                    hint="repolint needs readable source files",
                )
            ]
        else:
            return analyze_source(
                parsed.source, path, rules=rules, tree=parsed.tree
            )
    source = path.read_text(encoding="utf-8")
    return analyze_source(source, path, rules=rules)


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in SKIP_DIRS for part in candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def locate_package_dir(
    anchor: Path | str | None = None, config: RepolintConfig | None = None
) -> tuple[Path, RepolintConfig] | None:
    """(package directory, config) for the project owning ``anchor``."""
    anchor_path = Path(anchor) if anchor is not None else Path.cwd()
    if config is None:
        config = load_config(anchor_path)
    pyproject = find_pyproject(anchor_path)
    if pyproject is None:
        return None
    package_dir = pyproject.parent / config.src_root / config.package
    if not package_dir.is_dir():
        return None
    return package_dir, config


def build_program(
    anchor: Path | str | None = None,
    config: RepolintConfig | None = None,
    source_cache: "SourceCache | None" = None,
) -> ProgramContext | None:
    """ProgramContext for the package owning ``anchor`` (default: cwd)."""
    located = locate_package_dir(anchor, config)
    if located is None:
        return None
    package_dir, config = located
    return ProgramContext.from_package(package_dir, config, source_cache)


def _analyze_file_job(task: tuple[str, tuple[str, ...]]) -> list[Finding]:
    """Process-pool worker: lint one file with the named registry rules.

    Rule *instances* don't cross process boundaries; rule *codes* do, and
    every registered rule is stateless, so the worker rebuilds the exact
    per-file rule subset from the registry.  :class:`Finding` is a frozen
    dataclass of primitives, so results pickle straight back.
    """
    path, codes = task
    wanted = set(codes)
    rules = [
        rule
        for rule in default_rules()
        if rule.code in wanted and not isinstance(rule, ProgramRule)
    ]
    return analyze_file(Path(path), rules=rules)


def _registry_codes_for(rules: Sequence[Rule]) -> tuple[str, ...] | None:
    """Rule codes when every rule is a registered class, else ``None``.

    The parallel path reconstructs rules by code inside each worker, which
    is only faithful for registry rules — a caller-supplied ad-hoc rule
    instance forces the serial path.
    """
    from tools.repolint.rules import RULE_CLASSES

    if all(type(rule) in RULE_CLASSES for rule in rules):
        return tuple(rule.code for rule in rules)
    return None


def analyze_paths(
    paths: Iterable[Path | str],
    rules: Sequence[Rule] | None = None,
    config: RepolintConfig | None = None,
    source_cache: "SourceCache | None" = None,
    result_cache: "ResultCache | None" = None,
    jobs: int = 1,
) -> list[Finding]:
    """Per-file rules over every target, plus program rules over the package.

    Program rules always analyze the complete configured package so that
    partial runs (``--changed``, a single file) still see whole-program
    facts; their findings are then restricted to the requested targets.

    One :class:`SourceCache` (created here when not supplied) is shared by
    the per-file loop and the package parse, so every file is read and
    parsed at most once per run.  With a :class:`ResultCache`, per-file
    analysis is skipped outright for files whose content hash matches the
    previous run; program-pass findings are always recomputed.

    ``jobs > 1`` fans the per-file misses out over a process pool (the
    program pass stays in-process — it is one whole-package computation).
    Workers rebuild rules by code from the registry, so ad-hoc rule
    instances, tiny batches, or an unavailable ``multiprocessing`` fall
    back to the serial loop; output is identical either way, in target
    order.
    """
    from tools.repolint.cache import SourceCache

    if rules is None:
        rules = default_rules()
    if source_cache is None:
        source_cache = SourceCache()
    file_rules = [rule for rule in rules if not isinstance(rule, ProgramRule)]
    program_rules = [rule for rule in rules if isinstance(rule, ProgramRule)]
    findings: list[Finding] = []
    targets = list(iter_python_files(paths))
    per_file: dict[Path, list[Finding]] = {}
    pending: list[tuple[Path, str | None]] = []
    for path in targets:
        cached_sha: str | None = None
        if result_cache is not None:
            try:
                cached_sha = source_cache.parse(path).sha
            except (OSError, SyntaxError):
                cached_sha = None
            if cached_sha is not None:
                cached = result_cache.lookup(path, cached_sha)
                if cached is not None:
                    per_file[path] = cached
                    continue
        pending.append((path, cached_sha))

    pool_results: list[list[Finding]] | None = None
    if jobs > 1 and len(pending) > 1:
        codes = _registry_codes_for(file_rules)
        if codes is not None:
            import concurrent.futures

            workers = min(jobs, len(pending))
            try:
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers
                ) as pool:
                    pool_results = list(
                        pool.map(
                            _analyze_file_job,
                            [(str(path), codes) for path, _ in pending],
                        )
                    )
            except (OSError, NotImplementedError, ImportError):
                # Sandboxed/embedded interpreters without working
                # multiprocessing primitives: serial is always correct.
                pool_results = None
    if pool_results is not None:
        for (path, cached_sha), file_findings in zip(pending, pool_results):
            per_file[path] = file_findings
            if result_cache is not None and cached_sha is not None:
                result_cache.store(path, cached_sha, file_findings)
    else:
        for path, cached_sha in pending:
            file_findings = analyze_file(
                path, rules=file_rules, source_cache=source_cache
            )
            per_file[path] = file_findings
            if result_cache is not None and cached_sha is not None:
                result_cache.store(path, cached_sha, file_findings)
    for path in targets:
        findings.extend(per_file.get(path, []))

    if program_rules and targets:
        located = locate_package_dir(targets[0], config=config)
        target_set = {path.resolve() for path in targets}
        if located is not None and any(
            path.is_relative_to(located[0].resolve()) for path in target_set
        ):
            program = ProgramContext.from_package(*located, source_cache)
            in_program = {
                str(file.path): file
                for file in program.files.values()
                if file.path.resolve() in target_set
            }
            if in_program:
                program_findings: list[Finding] = []
                for rule in program_rules:
                    program_findings.extend(rule.check_program(program))
                by_path: dict[str, list[Finding]] = {}
                for finding in program_findings:
                    if finding.path in in_program:
                        by_path.setdefault(finding.path, []).append(finding)
                lint_enabled = any(rule.code == "LINT001" for rule in rules)
                program_codes = {rule.code for rule in program_rules}
                for path_str, file in in_program.items():
                    suppressed = suppressed_codes_by_line(file.source_lines)
                    file_suppressed = file_suppressed_codes(file.source_lines)
                    used_lines: set[tuple[int, str]] = set()
                    used_file: set[str] = set()
                    findings.extend(
                        _filter_suppressed(
                            by_path.get(path_str, []),
                            suppressed,
                            file_suppressed,
                            used_lines,
                            used_file,
                        )
                    )
                    if lint_enabled:
                        # Program-rule pragmas can only be judged after the
                        # program pass; per-file codes were judged (or
                        # cached) in the per-file phase.
                        stale = _unused_suppression_findings(
                            file.path,
                            file.source_lines,
                            suppressed,
                            file_suppressed,
                            used_lines,
                            used_file,
                            program_codes,
                        )
                        findings.extend(
                            _filter_suppressed(stale, suppressed, file_suppressed)
                        )
    if result_cache is not None:
        result_cache.save()
    return findings
