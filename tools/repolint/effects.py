"""Per-function effect inference: pure / reads-self / mutates-self / shared.

Each function's body (nested defs excluded — they are classified on their
own) is scanned for state-changing operations, and every operation is
attributed to a *receiver* whose ownership decides how bad it is:

* ``self`` / ``self.attr``           → mutates-self (a hazard only when the
                                       instance is shared across workers);
* a parameter or module-level name   → mutates-shared (cross-object);
* a name captured from an enclosing
  function, or declared ``global``   → mutates-shared;
* a class attribute (``cls.x = ..``) → mutates-shared;
* a local the function constructed   → owned; the mutation is invisible
                                       outside the call and is ignored.

RNG draws are tracked separately: every ``Generator`` method call advances
shared mutable stream state, so a draw on a non-owned generator is a
mutation of whatever owns the generator.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator

from tools.repolint.graphs.calls import (
    GENERATOR_TYPE,
    Binding,
    FunctionInfo,
    ProgramIndex,
    _iter_own_nodes,
    compute_bindings,
    infer_expr_type,
    receiver_ownership,
)


class EffectLevel(IntEnum):
    """Lattice of behavioral summaries, ordered by severity."""

    PURE = 0
    READS_SELF = 1
    MUTATES_SELF = 2
    MUTATES_SHARED = 3

    @property
    def label(self) -> str:
        return self.name.lower().replace("_", "-")


#: Methods that mutate their receiver in-place (list/set/dict/deque/array).
MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popleft",
    "appendleft",
    "clear",
    "update",
    "setdefault",
    "popitem",
    "add",
    "discard",
    "sort",
    "reverse",
    "move_to_end",
    "fill",
    "add_trajectory",
}

#: numpy.random.Generator draw methods — each advances the stream state.
GENERATOR_METHODS = {
    "random",
    "integers",
    "choice",
    "normal",
    "standard_normal",
    "uniform",
    "exponential",
    "poisson",
    "binomial",
    "beta",
    "gamma",
    "shuffle",
    "permutation",
    "permuted",
    "bytes",
    "multivariate_normal",
}


@dataclass(frozen=True)
class EffectReason:
    """One state-changing (or self-reading) operation and where it happens."""

    kind: str  # global-write | class-write | captured-write | param-mutation
    #            | unknown-mutation | self-mutation | rng-draw | self-read
    detail: str
    line: int
    shared: bool  # True when the mutation is shared regardless of context


@dataclass
class FunctionEffect:
    """Effect summary for one function."""

    qualname: str
    level: EffectLevel
    reasons: tuple[EffectReason, ...]

    @property
    def context_hazards(self) -> tuple[EffectReason, ...]:
        """Reasons that become hazards when the instance is shared."""
        return tuple(
            r for r in self.reasons if not r.shared and r.kind != "self-read"
        )

    @property
    def shared_hazards(self) -> tuple[EffectReason, ...]:
        return tuple(r for r in self.reasons if r.shared)

    def to_payload(self) -> dict[str, object]:
        return {
            "level": self.level.label,
            "reasons": [
                {
                    "kind": r.kind,
                    "detail": r.detail,
                    "line": r.line,
                    "shared": r.shared,
                }
                for r in self.reasons
            ],
        }


def infer_effects(index: ProgramIndex) -> dict[str, FunctionEffect]:
    """Effect summary for every function in the program."""
    return {
        qualname: infer_function_effect(index, function)
        for qualname, function in index.functions.items()
    }


def _root_name(expr: ast.expr) -> ast.Name | None:
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    return current if isinstance(current, ast.Name) else None


def _bound_local_names(function: FunctionInfo) -> set[str]:
    """Names the function binds itself (params, assignments, loops, withs)."""
    args = function.node.args
    bound = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    for node in _iter_own_nodes(function.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
    return bound


def _enclosing_locals(index: ProgramIndex, function: FunctionInfo) -> set[str]:
    """Names bound by enclosing functions (closure-visible state)."""
    names: set[str] = set()
    parent = function.parent
    while parent is not None:
        parent_info = index.functions.get(parent)
        if parent_info is None:
            break
        names |= _bound_local_names(parent_info)
        parent = parent_info.parent
    return names


def infer_function_effect(
    index: ProgramIndex, function: FunctionInfo
) -> FunctionEffect:
    bindings = compute_bindings(index, function)
    module_names = index.module_globals.get(function.module, set())
    local_names = _bound_local_names(function)
    closure_names = _enclosing_locals(index, function) - local_names
    global_decls: set[str] = set()
    nonlocal_decls: set[str] = set()
    for node in _iter_own_nodes(function.node):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            nonlocal_decls.update(node.names)

    reasons: list[EffectReason] = []

    def classify_write(target: ast.expr, line: int, op: str) -> None:
        """Attribute/subscript stores and name rebinds that escape."""
        if isinstance(target, ast.Name):
            if target.id in global_decls:
                reasons.append(
                    EffectReason("global-write", f"{op} global {target.id}", line, True)
                )
            elif target.id in nonlocal_decls:
                reasons.append(
                    EffectReason(
                        "captured-write", f"{op} nonlocal {target.id}", line, True
                    )
                )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                classify_write(element, line, op)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root = _root_name(target)
        if root is None:
            reasons.append(
                EffectReason("unknown-mutation", f"{op} on opaque receiver", line, True)
            )
            return
        detail = f"{op} {ast.unparse(target)}"
        if root.id in ("self",):
            reasons.append(EffectReason("self-mutation", detail, line, False))
        elif root.id == "cls" or _names_a_class(index, function, root.id):
            reasons.append(EffectReason("class-write", detail, line, True))
        elif root.id in global_decls:
            reasons.append(EffectReason("global-write", detail, line, True))
        elif root.id in closure_names and root.id not in local_names:
            reasons.append(EffectReason("captured-write", detail, line, True))
        elif root.id in local_names:
            binding = bindings.get(root.id)
            if binding is not None and binding.origin == "param":
                reasons.append(EffectReason("param-mutation", detail, line, True))
            elif binding is not None and binding.origin == "self-alias":
                reasons.append(EffectReason("self-mutation", detail, line, False))
            elif binding is not None and binding.owned:
                pass  # mutating an object this function constructed
            else:
                reasons.append(EffectReason("unknown-mutation", detail, line, True))
        elif root.id in module_names:
            reasons.append(EffectReason("global-write", detail, line, True))
        else:
            reasons.append(EffectReason("unknown-mutation", detail, line, True))

    def classify_mutating_call(call: ast.Call, line: int) -> bool:
        """True when the call is a known in-place mutation of its receiver."""
        if not isinstance(call.func, ast.Attribute):
            return False
        method = call.func.attr
        receiver = call.func.value
        receiver_type = infer_expr_type(index, function, bindings, receiver)
        if receiver_type == GENERATOR_TYPE and method in GENERATOR_METHODS:
            ownership = receiver_ownership(bindings, receiver)
            if ownership != "owned":
                shared = ownership in ("param", "unknown")
                reasons.append(
                    EffectReason(
                        "rng-draw",
                        f"draws {ast.unparse(call.func)}",
                        line,
                        shared,
                    )
                )
            return True
        if method not in MUTATING_METHODS:
            return False
        if receiver_type is not None and receiver_type in index.classes:
            return False  # resolved program method; callee effects cover it
        ownership = receiver_ownership(bindings, receiver)
        detail = f"calls {ast.unparse(call.func)}(...)"
        root = _root_name(receiver)
        if ownership == "owned":
            return True
        if ownership in ("self", "self-attr"):
            reasons.append(EffectReason("self-mutation", detail, line, False))
        elif ownership == "param":
            reasons.append(EffectReason("param-mutation", detail, line, True))
        elif root is not None and root.id in module_names and root.id not in local_names:
            reasons.append(EffectReason("global-write", detail, line, True))
        elif root is not None and root.id in closure_names and root.id not in local_names:
            reasons.append(EffectReason("captured-write", detail, line, True))
        else:
            reasons.append(EffectReason("unknown-mutation", detail, line, True))
        return True

    reads_self = False
    for node in _iter_own_nodes(function.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                classify_write(target, node.lineno, "assigns")
        elif isinstance(node, ast.AugAssign):
            classify_write(node.target, node.lineno, "updates")
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            classify_write(node.target, node.lineno, "assigns")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                classify_write(target, node.lineno, "deletes")
        elif isinstance(node, ast.Call):
            classify_mutating_call(node, node.lineno)
        elif (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            reads_self = True

    if any(reason.shared for reason in reasons):
        level = EffectLevel.MUTATES_SHARED
    elif any(reason.kind in ("self-mutation", "rng-draw") for reason in reasons):
        level = EffectLevel.MUTATES_SELF
    elif reads_self:
        level = EffectLevel.READS_SELF
    else:
        level = EffectLevel.PURE
    deduped: list[EffectReason] = []
    seen: set[tuple[str, str, int]] = set()
    for reason in reasons:
        key = (reason.kind, reason.detail, reason.line)
        if key not in seen:
            seen.add(key)
            deduped.append(reason)
    return FunctionEffect(
        qualname=function.qualname, level=level, reasons=tuple(deduped)
    )


def _names_a_class(index: ProgramIndex, function: FunctionInfo, name: str) -> bool:
    """True when a bare name refers to a program class (class-attr write)."""
    resolved = index.resolve_symbol(function.module, name)
    return resolved is not None and resolved in index.classes


def reachable_from(
    graph_edges: dict[str, list[tuple[str, bool]]],
    entry: str,
) -> Iterator[tuple[str, bool]]:
    """(function, shared-context) pairs reachable from ``entry``.

    The entry executes on shared objects (that is the whole point of the
    rollout certificate), so it starts in shared context.  Context becomes
    non-shared only through an edge whose receiver is an object the caller
    constructed itself; it never flows back to shared.
    """
    best: dict[str, bool] = {}
    queue: list[tuple[str, bool]] = [(entry, True)]
    while queue:
        qualname, shared = queue.pop()
        previous = best.get(qualname)
        if previous is not None and (previous or not shared):
            continue
        best[qualname] = shared
        for callee, receiver_owned in graph_edges.get(qualname, []):
            queue.append((callee, shared and not receiver_owned))
    yield from best.items()
