"""Minimal SARIF 2.1.0 serialization for GitHub code scanning.

Only the subset GitHub's upload-sarif action consumes: one run, one driver,
a rule table built from the catalog and one result per finding.  Paths are
emitted repo-relative with forward slashes so annotations attach to files
in the PR view.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from tools.repolint.engine import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _relative_uri(path: str) -> str:
    candidate = Path(path)
    try:
        candidate = candidate.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return candidate.as_posix()


def findings_to_sarif(
    findings: Iterable[Finding],
    catalog: Sequence[tuple[str, str, str]],
) -> dict[str, object]:
    """SARIF log dict for a finished run."""
    rules = [
        {
            "id": code,
            "name": name,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": "error"},
        }
        for code, name, summary in catalog
    ]
    known = {rule["id"] for rule in rules}
    results = []
    for finding in findings:
        message = finding.message
        if finding.hint:
            message += f" (hint: {finding.hint})"
        result: dict[str, object] = {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(finding.path),
                            "uriBaseId": "ROOTDIR",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
        }
        if finding.code not in known:
            rules.append(
                {
                    "id": finding.code,
                    "name": finding.code,
                    "shortDescription": {"text": finding.message},
                    "defaultConfiguration": {"level": "error"},
                }
            )
            known.add(finding.code)
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repolint",
                        "informationUri": "https://example.invalid/repolint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"ROOTDIR": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Iterable[Finding], catalog: Sequence[tuple[str, str, str]]
) -> str:
    return json.dumps(findings_to_sarif(findings, catalog), indent=2, sort_keys=True)
