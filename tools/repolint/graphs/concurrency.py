"""Async-aware concurrency facts: contexts, awaits, locks, spawns, accesses.

The call graph (:mod:`tools.repolint.graphs.calls`) answers "who may call
whom"; this module answers "in which *execution context* does each function
run, and what does it do there that another context could observe".  It is
the substrate for the ASYNC9xx rule family and the concurrency certificate:

* **execution contexts** — every ``async def`` runs on the event loop;
  synchronous callees of loop-context functions inherit ``loop`` (they
  block the loop while they run); ``threading.Thread(target=f)`` targets
  run in ``thread`` context; ``loop.run_in_executor(..., f)`` /
  ``asyncio.to_thread(f)`` targets run in ``executor`` context.  Thread
  and executor contexts propagate to synchronous callees the same way.
* **suspension points** — ``await`` expressions plus ``async for`` /
  ``async with`` entries, where another task can interleave;
* **lock regions** — ``with self._lock:`` blocks whose context expression
  types to a lock (``threading.Lock``/``RLock``, ``asyncio.Lock``, or a
  program class named ``*Lock``), with the awaits they contain;
* **blocking operations** — calls that park the calling thread
  (``time.sleep``, sync file/socket I/O, ``Future.result()``, ...);
* **spawns** — tasks/threads/executor jobs created, their resolved
  targets, and whether the handle is retained;
* **attribute accesses** — reads/writes of ``self.attr`` (and of typed
  receivers' attributes), each tagged with the lockset held at the access
  — the input to lockset-intersection race detection.

Everything is derived from the shared :class:`ProgramIndex`; nothing here
re-parses source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from tools.repolint.config import RepolintConfig
from tools.repolint.effects import MUTATING_METHODS
from tools.repolint.graphs.calls import (
    ASYNC_LOCK_TYPE,
    SYNC_LOCK_TYPES,
    Binding,
    CallGraph,
    FunctionInfo,
    ProgramIndex,
    _dotted_name,
    compute_bindings,
    infer_expr_type,
)

#: Call origins that park the calling thread (and therefore the event loop
#: when executed in ``loop`` context).  Dotted names after import
#: resolution; ``open`` is the builtin.
BLOCKING_CALL_ORIGINS = frozenset(
    {
        "time.sleep",
        "open",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.popen",
        "socket.create_connection",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
        "shutil.copy",
        "shutil.copytree",
        "shutil.rmtree",
        "numpy.load",
        "numpy.save",
        "numpy.savez",
        "numpy.savetxt",
        "numpy.loadtxt",
    }
)

#: Method names that do synchronous file I/O on any receiver (pathlib in
#: this codebase; program classes defining a method of the same name are
#: excluded at the call site).
BLOCKING_METHOD_NAMES = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)

#: The three contexts a function can execute in besides plain main-thread
#: script code (which cannot race with itself and is never flagged).
CONTEXT_LOOP = "loop"
CONTEXT_THREAD = "thread"
CONTEXT_EXECUTOR = "executor"


@dataclass(frozen=True)
class BlockingOp:
    """One thread-parking operation inside a function body."""

    detail: str
    line: int


@dataclass(frozen=True)
class LockRegion:
    """One ``with``-guarded critical section and the awaits inside it."""

    lock: str  # source spelling, e.g. "self._swap_lock"
    kind: str  # "sync" | "async"
    line: int
    await_lines: tuple[int, ...]


@dataclass(frozen=True)
class Spawn:
    """One task/thread/executor-job creation site."""

    kind: str  # "task" | "thread" | "executor"
    targets: tuple[str, ...]  # resolved program qualnames (may be empty)
    line: int
    retained: bool  # the handle is stored/awaited/returned, not discarded


@dataclass(frozen=True)
class AttrAccess:
    """One read/write of ``<cls>.<attr>`` observable outside the function."""

    cls: str
    attr: str
    function: str
    line: int
    write: bool
    locks: tuple[str, ...]  # lock attr names held at the access, sorted


@dataclass
class FunctionConcurrency:
    """Concurrency-relevant facts about one function body."""

    qualname: str
    is_async: bool
    await_lines: tuple[int, ...] = ()
    blocking: tuple[BlockingOp, ...] = ()
    lock_regions: tuple[LockRegion, ...] = ()
    spawns: tuple[Spawn, ...] = ()
    accesses: tuple[AttrAccess, ...] = ()
    #: property getters invoked by bare attribute loads (``x.version``) —
    #: invisible to the call graph, but they run in the caller's context.
    property_reads: tuple[str, ...] = ()


@dataclass
class ConcurrencyIndex:
    """Per-function facts plus the whole-program context assignment."""

    functions: dict[str, FunctionConcurrency] = field(default_factory=dict)
    #: execution contexts each function may run in (subset of loop/thread/
    #: executor; empty means plain main-thread code).
    contexts: dict[str, set[str]] = field(default_factory=dict)
    #: the async root that gives each loop-context function its loop
    #: context (provenance for ASYNC901 messages); allow-blocking subtrees
    #: are excluded, so membership here *is* the ASYNC901 exposure set.
    loop_root: dict[str, str] = field(default_factory=dict)
    #: (cls, attr) -> accesses across the whole program, for lockset checks.
    shared_state: dict[tuple[str, str], list[AttrAccess]] = field(
        default_factory=dict
    )

    def context_label(self, qualname: str) -> list[str]:
        return sorted(self.contexts.get(qualname, set()))


def _lock_kind(index: ProgramIndex, lock_type: str | None) -> str | None:
    """"sync"/"async" for a lock-ish receiver type, else None."""
    if lock_type is None:
        return None
    if lock_type in SYNC_LOCK_TYPES:
        return "sync"
    if lock_type == ASYNC_LOCK_TYPE:
        return "async"
    if lock_type in index.classes and lock_type.rsplit(".", 1)[-1].endswith("Lock"):
        # Program-defined lock wrappers (e.g. the tsan TrackedLock) behave
        # like the synchronous lock they wrap.
        return "sync"
    return None


def _receiver_class(
    index: ProgramIndex,
    function: FunctionInfo,
    bindings: dict[str, Binding],
    node: ast.expr,
) -> str | None:
    """Program class owning an attribute access target, or None."""
    inferred = infer_expr_type(index, function, bindings, node)
    if inferred is not None and inferred in index.classes:
        return inferred
    return None


class _FunctionScanner:
    """One pass over a function body collecting all concurrency facts."""

    def __init__(self, index: ProgramIndex, function: FunctionInfo) -> None:
        self.index = index
        self.function = function
        self.bindings = compute_bindings(index, function)
        self.resolver = index.resolvers.get(function.module)
        self.await_lines: list[int] = []
        self.blocking: list[BlockingOp] = []
        self.lock_regions: list[LockRegion] = []
        self.spawns: list[Spawn] = []
        self.accesses: list[AttrAccess] = []
        self.property_reads: list[str] = []

    def scan(self) -> FunctionConcurrency:
        for stmt in self.function.node.body:
            self._visit(stmt, locks=())
        return FunctionConcurrency(
            qualname=self.function.qualname,
            is_async=isinstance(self.function.node, ast.AsyncFunctionDef),
            await_lines=tuple(self.await_lines),
            blocking=tuple(self.blocking),
            lock_regions=tuple(self.lock_regions),
            spawns=tuple(self.spawns),
            accesses=tuple(self.accesses),
            property_reads=tuple(self.property_reads),
        )

    # -- traversal ------------------------------------------------------
    def _visit(self, node: ast.AST, locks: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions are scanned on their own
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node, locks)
            return
        if isinstance(node, ast.Await):
            self.await_lines.append(node.lineno)
        elif isinstance(node, (ast.AsyncFor, ast.AsyncWith)):
            self.await_lines.append(node.lineno)
        elif isinstance(node, ast.Call):
            self._visit_call(node, locks)
        elif isinstance(node, ast.Attribute):
            self._visit_attribute(node, locks)
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Attribute
        ):
            self._record_access(node.target, write=True, locks=locks)
        for child in ast.iter_child_nodes(node):
            self._visit(child, locks)

    def _visit_with(self, node: ast.With | ast.AsyncWith, locks: tuple[str, ...]) -> None:
        """Enter lock regions named by the with-items, then walk the body."""
        acquired: list[tuple[str, str]] = []  # (spelling, kind)
        if isinstance(node, ast.AsyncWith):
            self.await_lines.append(node.lineno)
        for item in node.items:
            expr = item.context_expr
            # ``with self._lock:`` and ``with lock.acquire_timeout():`` —
            # type the receiver of a bare attribute/name, or of the call's
            # receiver for zero-argument helper methods on a lock.
            target = expr
            if isinstance(target, ast.Call):
                target = target.func
            lock_type = infer_expr_type(
                self.index, self.function, self.bindings, target
            )
            kind = _lock_kind(self.index, lock_type)
            if kind is None and isinstance(target, ast.Attribute):
                kind = _lock_kind(
                    self.index,
                    infer_expr_type(
                        self.index, self.function, self.bindings, target.value
                    ),
                )
            if kind is not None:
                spelling = ast.unparse(target)
                acquired.append((spelling, kind))
            for child in ast.iter_child_nodes(item):
                self._visit(child, locks)
        held = locks + tuple(spelling for spelling, _ in acquired)
        before = len(self.await_lines)
        for stmt in node.body:
            self._visit(stmt, held)
        inside = tuple(self.await_lines[before:])
        for spelling, kind in acquired:
            self.lock_regions.append(
                LockRegion(
                    lock=spelling, kind=kind, line=node.lineno, await_lines=inside
                )
            )

    # -- calls ----------------------------------------------------------
    def _visit_call(self, call: ast.Call, locks: tuple[str, ...]) -> None:
        dotted = _dotted_name(call.func)
        resolved = None
        if dotted is not None and self.resolver is not None:
            head, _, rest = dotted.partition(".")
            origin = self.resolver.aliases.get(head, head)
            resolved = f"{origin}.{rest}" if rest else origin
        if resolved is not None:
            if resolved in ("asyncio.create_task", "asyncio.ensure_future"):
                self._record_spawn(call, "task", self._task_targets(call))
                return
            if resolved == "asyncio.to_thread":
                self._record_spawn(call, "executor", self._arg_targets(call, 0))
                return
            if resolved == "threading.Thread":
                self._record_spawn(call, "thread", self._thread_targets(call))
                return
            if resolved in BLOCKING_CALL_ORIGINS and not self._is_program_symbol(
                resolved
            ):
                self.blocking.append(BlockingOp(f"{dotted}(...)", call.lineno))
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in ("create_task", "ensure_future") and resolved is None:
                # loop.create_task(...) on an untyped loop receiver.
                self._record_spawn(call, "task", self._task_targets(call))
                return
            if attr == "run_in_executor":
                self._record_spawn(call, "executor", self._arg_targets(call, 1))
                return
            receiver_cls = _receiver_class(
                self.index, self.function, self.bindings, call.func.value
            )
            if attr == "result" and not call.args and not call.keywords:
                if receiver_cls is None or attr not in self.index.classes[
                    receiver_cls
                ].methods:
                    self.blocking.append(
                        BlockingOp(f"{ast.unparse(call.func)}() [future wait]",
                                   call.lineno)
                    )
            elif attr in BLOCKING_METHOD_NAMES and receiver_cls is None:
                self.blocking.append(
                    BlockingOp(f"{ast.unparse(call.func)}(...)", call.lineno)
                )
            elif attr in MUTATING_METHODS and isinstance(
                call.func.value, ast.Attribute
            ):
                # self.attr.append(...) mutates self.attr in place.
                self._record_access(call.func.value, write=True, locks=locks)

    def _is_program_symbol(self, resolved: str) -> bool:
        return resolved in self.index.functions or resolved in self.index.classes

    # -- spawns ---------------------------------------------------------
    def _record_spawn(
        self, call: ast.Call, kind: str, targets: tuple[str, ...]
    ) -> None:
        self.spawns.append(
            Spawn(
                kind=kind,
                targets=targets,
                line=call.lineno,
                retained=not self._is_discarded(call),
            )
        )

    def _is_discarded(self, call: ast.Call) -> bool:
        """True when the spawn's handle is dropped on the floor.

        A bare expression statement (``asyncio.create_task(f())``) and a
        chained ``threading.Thread(...).start()`` both lose the handle; an
        assignment, ``await``, ``return`` or argument position keeps it.
        """
        for parent in ast.walk(self.function.node):
            if isinstance(parent, ast.Expr) and parent.value is call:
                return True
            if (
                isinstance(parent, ast.Expr)
                and isinstance(parent.value, ast.Call)
                and isinstance(parent.value.func, ast.Attribute)
                and parent.value.func.value is call
            ):
                return True
        return False

    def _resolve_target(self, node: ast.expr) -> tuple[str, ...]:
        """Program qualnames a callable expression may refer to."""
        dotted = _dotted_name(node)
        if dotted is not None:
            resolved = self.index.resolve_symbol(self.function.module, dotted)
            if resolved in self.index.functions:
                return (resolved,)
        if isinstance(node, ast.Attribute):
            receiver_cls = _receiver_class(
                self.index, self.function, self.bindings, node.value
            )
            if receiver_cls is not None:
                return tuple(self.index.lookup_method(receiver_cls, node.attr))
        if isinstance(node, (ast.Lambda,)):
            return ()
        return ()

    def _task_targets(self, call: ast.Call) -> tuple[str, ...]:
        if not call.args:
            return ()
        coro = call.args[0]
        if isinstance(coro, ast.Call):
            return self._resolve_target(coro.func)
        return self._resolve_target(coro)

    def _arg_targets(self, call: ast.Call, position: int) -> tuple[str, ...]:
        if len(call.args) <= position:
            return ()
        return self._resolve_target(call.args[position])

    def _thread_targets(self, call: ast.Call) -> tuple[str, ...]:
        for keyword in call.keywords:
            if keyword.arg == "target":
                return self._resolve_target(keyword.value)
        return ()

    # -- attribute accesses ---------------------------------------------
    def _visit_attribute(self, node: ast.Attribute, locks: tuple[str, ...]) -> None:
        write = isinstance(node.ctx, (ast.Store, ast.Del))
        if isinstance(node.ctx, ast.Load) or write:
            self._record_access(node, write=write, locks=locks)

    def _record_access(
        self, node: ast.Attribute, write: bool, locks: tuple[str, ...]
    ) -> None:
        if self.function.name == "__init__" and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return  # construction happens-before publication
        if isinstance(node.value, ast.Name):
            binding = self.bindings.get(node.value.id)
            if binding is not None and binding.owned:
                # The function constructed this object itself; until it
                # escapes (return/publish), no other context can see it.
                return
        owner = _receiver_class(
            self.index, self.function, self.bindings, node.value
        )
        if owner is None:
            return
        info = self.index.classes[owner]
        if node.attr in info.methods:
            # A bare load of a @property runs its getter in this function's
            # context; other method references are not state.
            method = info.methods[node.attr]
            target = self.index.functions.get(method)
            if target is not None and not write and any(
                dec in ("property", "functools.cached_property", "cached_property")
                for dec in target.decorators
            ):
                self.property_reads.append(method)
            return
        lock_type = _lock_kind(self.index, info.attr_types.get(node.attr))
        if lock_type is not None:
            return  # the lock object itself is not racy state
        self.accesses.append(
            AttrAccess(
                cls=owner,
                attr=node.attr,
                function=self.function.qualname,
                line=node.lineno,
                write=write,
                locks=tuple(sorted(set(locks))),
            )
        )


def build_concurrency_index(
    index: ProgramIndex, call_graph: CallGraph, config: RepolintConfig
) -> ConcurrencyIndex:
    """Scan every function and assign execution contexts program-wide."""
    result = ConcurrencyIndex()
    for qualname, function in index.functions.items():
        result.functions[qualname] = _FunctionScanner(index, function).scan()
        result.contexts[qualname] = set()

    edges: dict[str, list[str]] = {}
    for edge in call_graph.edges:
        # Name-only "fallback" edges are fine for conservative reachability
        # but would smear loop context across unrelated subsystems; context
        # assignment sticks to resolved edges.
        if edge.kind == "fallback":
            continue
        edges.setdefault(edge.caller, []).append(edge.callee)
    # Bare @property loads execute the getter in the caller's context but
    # leave no call-graph edge; add them here so contexts flow through.
    for qualname, info in result.functions.items():
        for getter in info.property_reads:
            edges.setdefault(qualname, []).append(getter)

    def propagate(seed: str, context: str, *, stop_at: frozenset[str]) -> Iterator[str]:
        """Yield functions acquiring ``context`` from ``seed`` (inclusive)."""
        queue = [seed]
        seen: set[str] = set()
        while queue:
            current = queue.pop()
            if current in seen or current not in result.functions:
                continue
            seen.add(current)
            yield current
            if current in stop_at:
                continue  # sanctioned subtree boundary
            for callee in edges.get(current, []):
                callee_info = result.functions.get(callee)
                if callee_info is None:
                    continue
                # async callees always run on the loop regardless of who
                # creates the coroutine; never retag them as thread work.
                if context != CONTEXT_LOOP and callee_info.is_async:
                    continue
                queue.append(callee)

    # Loop context: every async def, plus sync callees — excluding the
    # allow-blocking subtrees, which are sanctioned to block the loop.
    for qualname, info in result.functions.items():
        if not info.is_async or qualname in config.allow_blocking:
            continue
        for reached in propagate(
            qualname, CONTEXT_LOOP, stop_at=config.allow_blocking
        ):
            result.contexts[reached].add(CONTEXT_LOOP)
            result.loop_root.setdefault(reached, qualname)
    # Allow-blocking functions still *run* on the loop (for the cross-
    # context analyses) even though ASYNC901 never fires inside them.
    for qualname in config.allow_blocking:
        if qualname not in result.functions:
            continue
        for reached in propagate(qualname, CONTEXT_LOOP, stop_at=frozenset()):
            result.contexts[reached].add(CONTEXT_LOOP)

    # Thread / executor contexts from spawn targets.
    for info in result.functions.values():
        for spawn in info.spawns:
            if spawn.kind == "task":
                continue  # tasks run on the loop; seeds above cover them
            context = (
                CONTEXT_THREAD if spawn.kind == "thread" else CONTEXT_EXECUTOR
            )
            for target in spawn.targets:
                for reached in propagate(target, context, stop_at=frozenset()):
                    if result.functions[reached].is_async:
                        continue
                    result.contexts[reached].add(context)

    # Shared-state table: every access, keyed by (class, attr).
    for info in result.functions.values():
        for access in info.accesses:
            result.shared_state.setdefault((access.cls, access.attr), []).append(
                access
            )
    return result
