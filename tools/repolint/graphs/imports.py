"""Module import graph over the analyzed package.

Edges are extracted from ``import`` / ``from ... import`` statements and
resolved against the set of modules that actually exist in the program, so
``from repro.core.config import AgentConfig`` becomes an edge to
``repro.core.config`` (the module), not to a class.  Each edge remembers
whether it executes at import time (module scope) or lazily inside a
function — the layer contract constrains *all* edges, while cycle detection
only considers import-time edges because deferred imports cannot deadlock
module initialization.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from tools.repolint.config import RepolintConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from tools.repolint.engine import ProgramFile


@dataclass(frozen=True)
class ImportEdge:
    """``source`` imports ``target`` at ``line`` (both dotted modules)."""

    source: str
    target: str
    line: int
    top_level: bool


@dataclass
class ImportGraph:
    """Import relationships plus the layer rank of every program module."""

    modules: tuple[str, ...]
    edges: tuple[ImportEdge, ...]
    layers: dict[str, str] = field(default_factory=dict)
    ranks: dict[str, int | None] = field(default_factory=dict)

    def edges_from(self, module: str) -> list[ImportEdge]:
        return [edge for edge in self.edges if edge.source == module]

    def to_payload(self) -> dict[str, object]:
        """JSON-ready summary for the ``report`` subcommand."""
        return {
            "modules": {
                module: {"layer": self.layers[module], "rank": self.ranks[module]}
                for module in self.modules
            },
            "edges": [
                {
                    "source": edge.source,
                    "target": edge.target,
                    "line": edge.line,
                    "top_level": edge.top_level,
                }
                for edge in self.edges
            ],
        }


def layer_of(module: str, package: str) -> str:
    """Layer name of a dotted module: its first component under the package."""
    parts = module.split(".")
    if parts[0] != package or len(parts) == 1:
        return "<root>"
    head = parts[1]
    if head.startswith("__"):  # __main__ and friends sit with the root
        return "<root>"
    return head


def _absolute_target(node: ast.ImportFrom, module: str) -> str | None:
    """Resolve a (possibly relative) ``from`` import to a dotted prefix."""
    if node.level == 0:
        return node.module
    # Relative import: climb ``level`` packages from the importing module.
    parts = module.split(".")
    if len(parts) < node.level:
        return None
    base = parts[: len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


def _resolve_module(candidate: str, known: frozenset[str]) -> str | None:
    """Longest known-module prefix of a dotted name, or None."""
    parts = candidate.split(".")
    while parts:
        dotted = ".".join(parts)
        if dotted in known:
            return dotted
        parts.pop()
    return None


def build_import_graph(
    files: Iterable["ProgramFile"], config: RepolintConfig
) -> ImportGraph:
    """Import graph restricted to edges between program modules."""
    file_list = list(files)
    known = frozenset(file.module for file in file_list)
    edges: list[ImportEdge] = []
    for file in file_list:
        top_level_nodes = set(ast.iter_child_nodes(file.tree))
        for node in ast.walk(file.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            top_level = node in top_level_nodes
            candidates: list[str] = []
            if isinstance(node, ast.Import):
                candidates = [alias.name for alias in node.names]
            else:
                base = _absolute_target(node, file.module)
                if base is None:
                    continue
                # ``from pkg import name`` may import the submodule pkg.name.
                candidates = [f"{base}.{alias.name}" for alias in node.names]
                candidates.append(base)
            seen: set[str] = set()
            for candidate in candidates:
                target = _resolve_module(candidate, known)
                if target is None or target == file.module or target in seen:
                    continue
                seen.add(target)
                edges.append(
                    ImportEdge(
                        source=file.module,
                        target=target,
                        line=node.lineno,
                        top_level=top_level,
                    )
                )
    modules = tuple(sorted(known))
    layers = {module: layer_of(module, config.package) for module in modules}
    ranks = {module: config.rank_for_layer(layers[module]) for module in modules}
    return ImportGraph(modules=modules, edges=tuple(edges), layers=layers, ranks=ranks)


def find_cycles(graph: ImportGraph) -> list[tuple[str, ...]]:
    """Strongly connected components of size > 1 over import-time edges.

    Iterative Tarjan so deep module chains cannot hit the recursion limit.
    Deferred (function-scope) imports are excluded: they resolve lazily and
    are the sanctioned way to break a genuine initialization cycle.
    """
    adjacency: dict[str, list[str]] = {module: [] for module in graph.modules}
    for edge in graph.edges:
        if edge.top_level:
            adjacency[edge.source].append(edge.target)

    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[tuple[str, ...]] = []
    counter = 0

    for root in graph.modules:
        if root in index_of:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = adjacency[node]
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index_of:
                    work.append((node, child_index))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(tuple(sorted(component)))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sorted(components)
