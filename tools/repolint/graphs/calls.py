"""Function-level program index and best-effort call graph.

The repo is fully annotated (mypy --strict), so call resolution leans on
annotations: parameter and attribute types identify method receivers, and
return annotations propagate types through chained calls like
``self.registry.buffer(task_id).add_trajectory(...)``.  Resolution is
deliberately conservative where Python is dynamic:

* a method call on a typed receiver targets that class's method *and* every
  override in known subclasses (runtime polymorphism);
* a method call on an untyped receiver falls back to every program method
  with that name;
* defining a nested function adds a caller→nested edge (closures are
  usually handed off as hooks);
* ``functools.partial(f, ...)`` adds an edge to ``f``;
* hook attributes invoked dynamically (``self.task_sampler(...)``) cannot
  be seen statically — those edges are declared in
  ``[tool.repolint.parallel.extra-edges]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from tools.repolint.config import RepolintConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from tools.repolint.engine import ImportResolver, ProgramFile

#: Pseudo-type for numpy Generators so rng receivers survive resolution.
GENERATOR_TYPE = "numpy.random.Generator"

#: Pseudo-types for lock constructors — the concurrency pass needs to know
#: which ``self`` attributes are locks (and of which flavour) to compute
#: locksets and await-under-lock regions.
SYNC_LOCK_TYPES = frozenset({"threading.Lock", "threading.RLock"})
ASYNC_LOCK_TYPE = "asyncio.Lock"
LOCK_TYPES = SYNC_LOCK_TYPES | {ASYNC_LOCK_TYPE}

#: Method names that belong to builtin containers; never fallback-matched.
_CONTAINER_METHOD_NAMES = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popleft",
    "appendleft",
    "clear",
    "update",
    "setdefault",
    "popitem",
    "add",
    "discard",
    "sort",
    "reverse",
    "move_to_end",
    "get",
    "keys",
    "values",
    "items",
    "count",
    "index",
    "copy",
    "fill",
}

#: Builtin/stdlib constructors whose results are owned by the caller.
_OWNED_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "tuple",
    "frozenset",
    "bytearray",
    "collections.deque",
    "collections.OrderedDict",
    "collections.defaultdict",
    "collections.Counter",
}


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method in the analyzed program."""

    qualname: str
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    parent: str | None  # enclosing function qualname for nested defs
    decorators: tuple[str, ...]

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_") or self.name == "__call__"


@dataclass
class ClassInfo:
    """One class: methods, resolved bases and annotated attribute types."""

    qualname: str
    module: str
    name: str
    base_exprs: tuple[ast.expr, ...]
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """``caller`` may invoke ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int
    receiver_owned: bool
    kind: str  # direct | method | fallback | nested | partial | extra


@dataclass
class Binding:
    """Static knowledge about one local name."""

    type: str | None = None
    owned: bool = False
    origin: str = "local"  # param | local | self-alias


class ProgramIndex:
    """Symbol tables shared by the call graph and effect inference."""

    def __init__(self, config: RepolintConfig) -> None:
        self.config = config
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.module_globals: dict[str, set[str]] = {}
        self.resolvers: dict[str, "ImportResolver"] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        self.subclasses: dict[str, list[str]] = {}

    # -- symbol resolution --------------------------------------------------

    def resolve_symbol(self, module: str, dotted: str) -> str | None:
        """Map a local (possibly dotted) name to a program qualname."""
        resolver = self.resolvers.get(module)
        head, _, rest = dotted.partition(".")
        origin = resolver.aliases.get(head) if resolver is not None else None
        candidates = []
        if origin is not None:
            candidates.append(f"{origin}.{rest}" if rest else origin)
        candidates.append(f"{module}.{dotted}")
        for candidate in candidates:
            if candidate in self.classes or candidate in self.functions:
                return candidate
        if origin is not None:
            return f"{origin}.{rest}" if rest else origin
        return None

    def annotation_type(self, module: str, ann: ast.expr | None) -> str | None:
        """Class qualname (or GENERATOR_TYPE) named by an annotation."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            return self.annotation_type(module, ann.left) or self.annotation_type(
                module, ann.right
            )
        if isinstance(ann, ast.Subscript):
            dotted = _dotted_name(ann.value)
            if dotted is not None and dotted.rsplit(".", 1)[-1] == "Optional":
                return self.annotation_type(module, ann.slice)
            return None
        dotted = _dotted_name(ann)
        if dotted is None:
            return None
        resolved = self.resolve_symbol(module, dotted)
        if resolved in self.classes:
            return resolved
        if resolved == GENERATOR_TYPE:
            return GENERATOR_TYPE
        if resolved in LOCK_TYPES:
            return resolved
        return None

    def mro(self, class_qualname: str) -> list[str]:
        """The class plus all known ancestors, breadth-first."""
        order: list[str] = []
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in order or current not in self.classes:
                continue
            order.append(current)
            queue.extend(self.classes[current].bases)
        return order

    def lookup_method(self, class_qualname: str, method: str) -> list[str]:
        """Resolved targets for ``instance.method()`` on a typed receiver.

        Includes the statically bound method plus every override in known
        subclasses — a ReplayBuffer-typed variable may hold a
        PrioritizedReplayBuffer at runtime.
        """
        targets: list[str] = []
        for ancestor in self.mro(class_qualname):
            info = self.classes[ancestor]
            if method in info.methods:
                targets.append(info.methods[method])
                break
        seen = set(targets)
        queue = list(self.subclasses.get(class_qualname, []))
        while queue:
            sub = queue.pop(0)
            queue.extend(self.subclasses.get(sub, []))
            override = self.classes[sub].methods.get(method)
            if override is not None and override not in seen:
                seen.add(override)
                targets.append(override)
        return targets


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _iter_own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested def/class.

    Pre-order, in source order — the binding pass relies on an assignment's
    right-hand names having been bound by earlier statements when it runs
    (``a = owned(); b = a[...]`` must see ``a`` before ``b``).
    """
    for node in ast.iter_child_nodes(root):
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield from _iter_own_nodes(node)


def build_program_index(
    files: Iterable["ProgramFile"], config: RepolintConfig
) -> ProgramIndex:
    from tools.repolint.engine import ImportResolver

    index = ProgramIndex(config)
    file_list = list(files)

    # Pass 1: collect classes, functions and module-level names.
    for file in file_list:
        index.resolvers[file.module] = ImportResolver(file.tree)
        top_names: set[str] = set()
        for node in ast.iter_child_nodes(file.tree):
            for target in _assigned_names(node):
                top_names.add(target)
        index.module_globals[file.module] = top_names
        _collect_definitions(index, file.module, file.tree)

    # Pass 2: resolve bases, subclasses and attribute types.
    for info in index.classes.values():
        bases: list[str] = []
        for base in info.base_exprs:
            dotted = _dotted_name(base)
            if dotted is None:
                continue
            resolved = index.resolve_symbol(info.module, dotted)
            if resolved in index.classes:
                bases.append(resolved)
                index.subclasses.setdefault(resolved, []).append(info.qualname)
        info.bases = tuple(bases)
    for info in index.classes.values():
        _collect_attr_types(index, info)
    for qualname, function in index.functions.items():
        if function.cls is not None:
            index.methods_by_name.setdefault(function.name, []).append(qualname)
    return index


def _assigned_names(node: ast.AST) -> list[str]:
    names: list[str] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.extend(
                    el.id for el in target.elts if isinstance(el, ast.Name)
                )
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        names.append(node.target.id)
    return names


def _collect_definitions(index: ProgramIndex, module: str, tree: ast.Module) -> None:
    def visit(node: ast.AST, prefix: str, cls: str | None, parent: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qualname = f"{prefix}.{child.name}"
                index.classes[qualname] = ClassInfo(
                    qualname=qualname,
                    module=module,
                    name=child.name,
                    base_exprs=tuple(child.bases),
                )
                visit(child, qualname, qualname, parent)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}"
                decorators = tuple(
                    dotted
                    for dec in child.decorator_list
                    if (dotted := _dotted_name(dec)) is not None
                )
                # A re-decorated name (@x.setter after @property) would
                # collide with the getter's qualname; suffix it for
                # uniqueness while keeping the source name.
                if qualname in index.functions:
                    qualname = f"{qualname}@{child.lineno}"
                index.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=module,
                    cls=cls,
                    name=child.name,
                    node=child,
                    parent=parent,
                    decorators=decorators,
                )
                if cls is not None and cls == prefix:
                    index.classes[cls].methods.setdefault(child.name, qualname)
                visit(child, qualname, None, qualname)
            elif isinstance(child, ast.stmt):
                # Recurse through structural statements (if/try/with/for):
                # a def behind ``if stop_check is not None:`` is still a
                # definition of the enclosing scope, and missing it makes
                # its raises/effects invisible to every whole-program pass.
                visit(child, prefix, cls, parent)

    visit(tree, module, None, None)


def _collect_attr_types(index: ProgramIndex, info: ClassInfo) -> None:
    """``self.attr`` types from annotations and constructor assignments."""
    for method_qualname in info.methods.values():
        function = index.functions[method_qualname]
        params = _param_annotations(index, function)
        for node in _iter_own_nodes(function.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr_type: str | None = None
            if annotation is not None:
                attr_type = index.annotation_type(function.module, annotation)
            elif isinstance(value, ast.Call):
                dotted = _dotted_name(value.func)
                if dotted is not None:
                    resolved = index.resolve_symbol(function.module, dotted)
                    if resolved in index.classes:
                        attr_type = resolved
                    elif resolved == "numpy.random.default_rng":
                        attr_type = GENERATOR_TYPE
                    elif resolved in LOCK_TYPES:
                        attr_type = resolved
            elif isinstance(value, ast.Name):
                attr_type = params.get(value.id)
            if attr_type is not None:
                info.attr_types.setdefault(target.attr, attr_type)


def _param_annotations(index: ProgramIndex, function: FunctionInfo) -> dict[str, str]:
    annotations: dict[str, str] = {}
    args = function.node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        ann_type = index.annotation_type(function.module, arg.annotation)
        if ann_type is not None:
            annotations[arg.arg] = ann_type
    return annotations


def compute_bindings(index: ProgramIndex, function: FunctionInfo) -> dict[str, Binding]:
    """Single-pass local type/ownership inference for one function."""
    bindings: dict[str, Binding] = {}
    args = function.node.args
    param_names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    if args.vararg is not None:
        param_names.append(args.vararg.arg)
    if args.kwarg is not None:
        param_names.append(args.kwarg.arg)
    annotations = _param_annotations(index, function)
    for name in param_names:
        if name in ("self", "cls"):
            continue
        param_type = annotations.get(name)
        if param_type is None and name in ("rng", "_rng"):
            param_type = GENERATOR_TYPE
        bindings[name] = Binding(type=param_type, owned=False, origin="param")
    for node in _iter_own_nodes(function.node):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            declared = index.annotation_type(function.module, node.annotation)
            owned = False
            if node.value is not None:
                inferred = _binding_for_value(index, function, bindings, node.value)
                owned = inferred.owned
                declared = declared or inferred.type
            bindings[node.target.id] = Binding(
                type=declared, owned=owned, origin="local"
            )
            continue
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        bindings[target.id] = _binding_for_value(index, function, bindings, node.value)
    return bindings


def _binding_for_value(
    index: ProgramIndex,
    function: FunctionInfo,
    bindings: dict[str, Binding],
    value: ast.expr,
) -> Binding:
    owned_literals = (
        ast.List,
        ast.Dict,
        ast.Set,
        ast.Tuple,
        ast.ListComp,
        ast.DictComp,
        ast.SetComp,
        ast.GeneratorExp,
        ast.Constant,
        ast.JoinedStr,
        ast.BinOp,
        ast.UnaryOp,
        ast.Compare,
    )
    if isinstance(value, owned_literals):
        return Binding(owned=True)
    if isinstance(value, ast.Name):
        if value.id == "self":
            return Binding(type=function.cls, origin="self-alias")
        if value.id in bindings:
            existing = bindings[value.id]
            return Binding(existing.type, existing.owned, existing.origin)
        return Binding()
    if isinstance(value, ast.Attribute):
        if isinstance(value.value, ast.Name) and value.value.id == "self":
            attr_type = _self_attr_type(index, function, value.attr)
            return Binding(type=attr_type, origin="self-alias")
        return Binding()
    if isinstance(value, ast.Call):
        call_type, constructed = _call_result_type(index, function, bindings, value)
        return Binding(type=call_type, owned=constructed)
    if isinstance(value, ast.Subscript):
        # A slice/view of an owned container is owned memory too.
        base = _binding_for_value(index, function, bindings, value.value)
        return Binding(owned=base.owned)
    return Binding()


def _self_attr_type(
    index: ProgramIndex, function: FunctionInfo, attr: str
) -> str | None:
    if function.cls is None:
        return None
    for ancestor in index.mro(function.cls):
        attr_type = index.classes[ancestor].attr_types.get(attr)
        if attr_type is not None:
            return attr_type
    if attr in ("rng", "_rng"):
        return GENERATOR_TYPE
    return None


def _call_result_type(
    index: ProgramIndex,
    function: FunctionInfo,
    bindings: dict[str, Binding],
    call: ast.Call,
) -> tuple[str | None, bool]:
    """(result type, is-a-fresh-object) for a call expression."""
    dotted = _dotted_name(call.func)
    if dotted is not None:
        resolved = index.resolve_symbol(function.module, dotted)
        if resolved in index.classes:
            return resolved, True
        if resolved == "numpy.random.default_rng":
            return GENERATOR_TYPE, True
        if resolved in index.functions:
            returns = index.functions[resolved].node.returns
            return index.annotation_type(index.functions[resolved].module, returns), False
        if resolved is not None and not resolved.startswith(index.config.package + "."):
            # External constructor (numpy.zeros, copy.deepcopy, dict, ...):
            # the result is a fresh object the caller owns.
            root = resolved.split(".")[0]
            if resolved in _OWNED_CONSTRUCTORS or root in ("numpy", "copy", "math"):
                return None, True
    # Method call: type the receiver, then use the return annotation.
    if isinstance(call.func, ast.Attribute):
        receiver_type = infer_expr_type(index, function, bindings, call.func.value)
        if receiver_type is not None and receiver_type != GENERATOR_TYPE:
            for target in index.lookup_method(receiver_type, call.func.attr):
                returns = index.functions[target].node.returns
                ann = index.annotation_type(index.functions[target].module, returns)
                if ann is not None:
                    return ann, False
        # ``.copy()`` returns fresh memory whatever the receiver is
        # (ndarray, dict, list, ...) — the caller owns the result.
        if call.func.attr in ("copy", "deepcopy") and receiver_type is None:
            return None, True
    return None, False


def infer_expr_type(
    index: ProgramIndex,
    function: FunctionInfo,
    bindings: dict[str, Binding],
    expr: ast.expr,
) -> str | None:
    """Best-effort static type of an expression, as a program qualname."""
    if isinstance(expr, ast.Name):
        if expr.id in ("self", "cls"):
            return function.cls
        binding = bindings.get(expr.id)
        return binding.type if binding is not None else None
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id in ("self", "cls"):
            return _self_attr_type(index, function, expr.attr)
        if expr.attr in ("rng", "_rng"):
            return GENERATOR_TYPE
        return None
    if isinstance(expr, ast.Call):
        return _call_result_type(index, function, bindings, expr)[0]
    return None


def receiver_ownership(
    bindings: dict[str, Binding], expr: ast.expr
) -> str:
    """Classify a call receiver: self | self-attr | param | owned | unknown."""
    if isinstance(expr, ast.Name):
        if expr.id in ("self", "cls"):
            return "self"
        binding = bindings.get(expr.id)
        if binding is None:
            return "unknown"
        if binding.origin == "param":
            return "param"
        if binding.origin == "self-alias":
            return "self-attr"
        return "owned" if binding.owned else "unknown"
    if isinstance(expr, ast.Attribute):
        root = expr
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name):
            if root.id in ("self", "cls"):
                return "self-attr"
            base = receiver_ownership(bindings, root)
            return "param" if base == "param" else "unknown"
        return "unknown"
    if isinstance(expr, ast.Subscript):
        return receiver_ownership(bindings, expr.value)
    return "unknown"


@dataclass
class CallGraph:
    """Edges plus the index they were resolved against."""

    index: ProgramIndex
    edges: tuple[CallEdge, ...]
    edges_by_caller: dict[str, list[CallEdge]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for edge in self.edges:
            self.edges_by_caller.setdefault(edge.caller, []).append(edge)

    def to_payload(self) -> dict[str, object]:
        return {
            "edges": [
                {
                    "caller": edge.caller,
                    "callee": edge.callee,
                    "line": edge.line,
                    "receiver_owned": edge.receiver_owned,
                    "kind": edge.kind,
                }
                for edge in self.edges
            ]
        }


def build_call_graph(index: ProgramIndex) -> CallGraph:
    edges: list[CallEdge] = []
    seen: set[tuple[str, str]] = set()

    def add(caller: str, callee: str, line: int, owned: bool, kind: str) -> None:
        key = (caller, callee)
        if key in seen or callee not in index.functions:
            return
        seen.add(key)
        edges.append(CallEdge(caller, callee, line, owned, kind))

    for qualname, function in index.functions.items():
        bindings = compute_bindings(index, function)
        for node in _iter_own_nodes(function.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not isinstance(node, ast.Call):
                continue
            _resolve_call_edges(index, function, bindings, node, add)
        # Defining a nested function is treated as a potential call: nested
        # defs in this codebase are hooks handed to other components.
        for child in ast.walk(function.node):
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not function.node
            ):
                nested = index.functions.get(f"{qualname}.{child.name}")
                if nested is not None and nested.parent == qualname:
                    add(qualname, nested.qualname, child.lineno, False, "nested")
    for source, targets in index.config.extra_edges.items():
        for target in targets:
            add(source, target, 0, False, "extra")
    return CallGraph(index=index, edges=tuple(edges))


def _resolve_call_edges(
    index: ProgramIndex,
    function: FunctionInfo,
    bindings: dict[str, Binding],
    call: ast.Call,
    add: Callable[[str, str, int, bool, str], None],
) -> None:
    qualname = function.qualname
    dotted = _dotted_name(call.func)
    resolved = (
        index.resolve_symbol(function.module, dotted) if dotted is not None else None
    )
    if resolved == "functools.partial" and call.args:
        target_node = call.args[0]
        target_dotted = _dotted_name(target_node)
        target = (
            index.resolve_symbol(function.module, target_dotted)
            if target_dotted is not None
            else None
        )
        if target in index.functions:
            add(qualname, target, call.lineno, False, "partial")
        elif target in index.classes:
            init = index.classes[target].methods.get("__init__")
            if init:
                add(qualname, init, call.lineno, False, "partial")
        elif isinstance(target_node, ast.Attribute):
            # Bound method: partial(self._hook) / partial(obj.method).
            receiver_type = infer_expr_type(index, function, bindings, target_node.value)
            if receiver_type is not None and receiver_type in index.classes:
                owned = receiver_ownership(bindings, target_node.value) == "owned"
                for bound in index.lookup_method(receiver_type, target_node.attr):
                    add(qualname, bound, call.lineno, owned, "partial")
        return
    if resolved in index.functions:
        add(qualname, resolved, call.lineno, False, "direct")
        return
    if resolved in index.classes:
        init = index.classes[resolved].methods.get("__init__")
        if init:
            add(qualname, init, call.lineno, True, "direct")
        return
    if not isinstance(call.func, ast.Attribute):
        return
    method = call.func.attr
    receiver = call.func.value
    ownership = receiver_ownership(bindings, receiver)
    owned = ownership == "owned"
    receiver_type = infer_expr_type(index, function, bindings, receiver)
    if receiver_type is not None and receiver_type in index.classes:
        for target in index.lookup_method(receiver_type, method):
            add(qualname, target, call.lineno, owned, "method")
        return
    if receiver_type == GENERATOR_TYPE:
        return  # numpy Generator methods; effects.py accounts for the draw
    # Unknown receiver: conservatively fan out to every same-named method —
    # except for builtin-container method names (append, update, ...): an
    # untyped receiver with one of those is almost always a list/dict/set,
    # the caller-side effect classification already accounts for the
    # mutation, and typed program receivers resolve above.
    if method in _CONTAINER_METHOD_NAMES:
        return
    for target in index.methods_by_name.get(method, []):
        add(qualname, target, call.lineno, owned, "fallback")
