"""Whole-program graphs: module import graph and function call graph."""

from tools.repolint.graphs.calls import CallGraph, build_call_graph
from tools.repolint.graphs.imports import (
    ImportEdge,
    ImportGraph,
    build_import_graph,
    find_cycles,
)

__all__ = [
    "CallGraph",
    "ImportEdge",
    "ImportGraph",
    "build_call_graph",
    "build_import_graph",
    "find_cycles",
]
