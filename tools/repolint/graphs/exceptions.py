"""Exception-flow facts: raise sites, handlers, escape-set inference.

The call graph answers "who may call whom"; this module answers "which
exception types may escape each function".  It is the substrate for the
EXC10xx rule family and the exception certificate:

* **raise sites** — every ``raise X(...)`` / ``raise X`` / ``raise X from
  Y`` / bare ``raise``, with the enclosing try regions that guard it;
* **handlers** — every ``except`` / ``except*`` clause with its caught
  types (tuple clauses and module-level tuple constants like
  ``_DROPPED_CONNECTION_ERRORS`` are expanded), whether it re-raises,
  raises a replacement, or observes the failure (a log/metric call), and
  whether it silently swallows;
* **escape sets** — a fixed-point propagation over the resolved call
  graph: a function's escape set is its own raises plus every non-
  ``fallback`` callee's escape set, each filtered through the ``except``
  clauses guarding the raise/call site.  Narrowing honours subclass
  hierarchies resolved from program class definitions plus a builtin
  table (``KeyError`` < ``LookupError`` < ``Exception``), so ``except
  LookupError`` removes a raised ``KeyError``.

Deliberate approximations, chosen so the analysis is *useful* rather than
vacuously complete:

* escape sets are seeded from ``raise`` statements only — calls into
  libraries (``open``, ``np.load``) contribute nothing.  Boundary checks
  therefore certify the flow of *program-raised* exceptions; a broad
  handler at the boundary is still the only defence for library errors.
* ``fallback`` call edges (untyped receiver, matched by method name) are
  excluded from escape propagation — they smear unrelated escape sets
  together — but *included* when proving a handler dead (EXC1003), so a
  dynamic call that could raise the caught type keeps the handler alive.
* a raise of an unresolvable expression contributes the ``UNKNOWN``
  sentinel, which only a bare ``except``, ``except BaseException`` or
  ``except Exception`` may catch;
* a bare ``raise`` anywhere in a handler body marks the whole clause as
  re-raising (its caught types keep escaping);
* ``BaseException``-only types (``KeyboardInterrupt``, ``SystemExit``,
  ``asyncio.CancelledError``) propagate but are exempt from boundary
  checks — cancellation is control flow, not failure.

Everything is derived from the shared :class:`ProgramIndex`; nothing here
re-parses source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from tools.repolint.config import RepolintConfig
from tools.repolint.graphs.calls import (
    CallGraph,
    FunctionInfo,
    ProgramIndex,
    _dotted_name,
    _iter_own_nodes,
)

#: Sentinel for a raise whose type cannot be resolved statically.
UNKNOWN = "<unknown>"

#: ``child -> parent`` for the builtin exception hierarchy (Python 3.10+;
#: ``TimeoutError`` is rooted at ``OSError`` as on 3.11+).
BUILTIN_PARENTS: dict[str, str | None] = {
    "BaseException": None,
    "BaseExceptionGroup": "BaseException",
    "Exception": "BaseException",
    "ExceptionGroup": "Exception",
    "GeneratorExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "ArithmeticError": "Exception",
    "FloatingPointError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "ZeroDivisionError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "OSError",
    "BlockingIOError": "OSError",
    "ChildProcessError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "FileExistsError": "OSError",
    "FileNotFoundError": "OSError",
    "InterruptedError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "PermissionError": "OSError",
    "ProcessLookupError": "OSError",
    "TimeoutError": "OSError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopAsyncIteration": "Exception",
    "StopIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "TabError": "IndentationError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "UnicodeTranslateError": "UnicodeError",
    "Warning": "Exception",
}

#: Dotted stdlib names that are aliases of (or parented under) builtins.
_EXTERNAL_ALIASES = {
    "asyncio.TimeoutError": "TimeoutError",
    "asyncio.exceptions.TimeoutError": "TimeoutError",
    "socket.timeout": "TimeoutError",
    "builtins.TimeoutError": "TimeoutError",
}
_EXTERNAL_PARENTS = {
    "asyncio.CancelledError": "BaseException",
    "asyncio.IncompleteReadError": "EOFError",
    "asyncio.LimitOverrunError": "Exception",
    "asyncio.InvalidStateError": "Exception",
    "asyncio.QueueEmpty": "Exception",
    "asyncio.QueueFull": "Exception",
    "json.JSONDecodeError": "ValueError",
    "json.decoder.JSONDecodeError": "ValueError",
    "numpy.linalg.LinAlgError": "Exception",
    "zlib.error": "Exception",
}

#: Call spellings that count as *observing* a failure inside a handler
#: (so the handler is not a silent swallow) even without configuration.
DEFAULT_OBSERVER_CALLS = ("logging", "logger", "log", "warnings.warn", "print")


@dataclass(frozen=True)
class HandlerClause:
    """One ``except``/``except*`` clause of a try region."""

    types: tuple[str, ...] | None  # canonical names; None = bare ``except:``
    spelling: str  # source text of the clause type, for messages
    is_star: bool
    line: int
    reraises: bool  # a bare ``raise`` occurs in the clause body
    raises_new: bool  # a ``raise <expr>`` occurs in the clause body
    observes: bool  # a log/metric call occurs in the clause body
    binds: str | None  # ``except X as name``

    @property
    def broad(self) -> bool:
        """Catches everything interesting: bare, Exception or BaseException."""
        if self.types is None:
            return True
        return any(t in ("Exception", "BaseException") for t in self.types)

    @property
    def swallows(self) -> bool:
        """Neither re-raises, replaces, nor observes the failure."""
        return not (self.reraises or self.raises_new or self.observes)


@dataclass(frozen=True)
class TryRegion:
    """One ``try`` statement that has handlers (pure try/finally has none)."""

    id: int
    line: int
    clauses: tuple[HandlerClause, ...]


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise`` statement and the try regions guarding it."""

    types: tuple[str, ...]  # canonical names (may contain UNKNOWN); () = bare
    line: int
    guards: tuple[int, ...]  # enclosing TryRegion ids, innermost first
    in_handler: bool
    has_cause: bool  # ``raise X from Y`` (including ``from None``)
    bare: bool
    #: ``raise exc`` of the enclosing handler's bound variable — the same
    #: exception continuing, not a new one.
    reraises_bound: bool = False


@dataclass
class FunctionExceptions:
    """Exception-flow facts for one function body."""

    qualname: str
    module: str
    raises: list[RaiseSite] = field(default_factory=list)
    tries: dict[int, TryRegion] = field(default_factory=dict)
    #: ``call lineno -> guard region ids`` for filtering callee escapes.
    call_guards: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: ``await`` of something that is not a program-function call (a bare
    #: future, ``asyncio.wait_for``, a queue) — an exception channel the
    #: call graph cannot see (``Future.set_exception`` delivers arbitrary
    #: types), recorded as ``(line, guards)`` UNKNOWN sources.
    unknown_awaits: list[tuple[int, tuple[int, ...]]] = field(
        default_factory=list
    )


class ExceptionTypeResolver:
    """Canonical exception names, subclass queries, tuple-constant aliases."""

    def __init__(self, index: ProgramIndex) -> None:
        self.index = index
        #: program class qualname -> resolved parent names (program,
        #: builtin or external dotted; unresolvable bases decay to
        #: ``Exception`` so broad handlers still narrow them).
        self.parents: dict[str, tuple[str, ...]] = {}
        #: module-level ``NAME = (ExcA, ExcB, ...)`` constants, expandable
        #: in except clauses (``except _DROPPED_CONNECTION_ERRORS:``).
        self.tuple_aliases: dict[str, tuple[str, ...]] = {}
        for info in index.classes.values():
            parents: list[str] = []
            for base in info.base_exprs:
                dotted = _dotted_name(base)
                if dotted is None:
                    continue
                resolved = index.resolve_symbol(info.module, dotted)
                if resolved is not None:
                    resolved = self._chase_reexports(resolved)
                if resolved in index.classes:
                    parents.append(resolved)
                else:
                    parents.append(self._canonical_external(resolved or dotted))
            self.parents[info.qualname] = tuple(parents)

    def register_tuple_alias(self, qualname: str, types: tuple[str, ...]) -> None:
        self.tuple_aliases[qualname] = types

    def _chase_reexports(self, name: str) -> str:
        """Follow ``from canonical_home import X as X`` re-export chains.

        ``repro.io.checkpoint.CheckpointError`` is an alias of the class
        defined in ``repro.errors``; escape sets must use the defining
        qualname or subtype checks against the taxonomy silently fail.
        """
        for _ in range(8):  # chain hop limit; cycles terminate here too
            if name in self.index.classes or "." not in name:
                return name
            module, _, attr = name.rpartition(".")
            resolver = self.index.resolvers.get(module)
            if resolver is None:
                return name
            origin = resolver.aliases.get(attr)
            if origin is None or origin == name:
                return name
            name = origin
        return name

    def _canonical_external(self, name: str) -> str:
        if name.startswith("builtins."):
            name = name[len("builtins."):]
        name = _EXTERNAL_ALIASES.get(name, name)
        return name

    def canonical(self, module: str, dotted: str) -> str | None:
        """Canonical exception name for a source spelling, or None.

        Program classes resolve to their qualname; builtins to their bare
        name; known stdlib exceptions to their dotted name.  A name that
        resolves to nothing class-like (a local variable, a non-exception
        binding) yields None — callers decide between UNKNOWN and skipping.
        """
        resolved = self.index.resolve_symbol(module, dotted)
        if resolved is not None:
            resolved = self._chase_reexports(resolved)
        if resolved in self.index.classes:
            return resolved
        name = self._canonical_external(resolved or dotted)
        last = name.rsplit(".", 1)[-1]
        if name in BUILTIN_PARENTS:
            return name
        if name in _EXTERNAL_PARENTS:
            return name
        if last in BUILTIN_PARENTS and resolved is not None:
            # ``from asyncio import IncompleteReadError`` style aliasing of
            # something builtin-named but module-qualified.
            return name
        if resolved is not None and "." in name:
            # Imported from somewhere: trust it as an external exception.
            return name
        return None

    def _direct_parents(self, name: str) -> tuple[str, ...]:
        if name in self.parents:
            return self.parents[name]
        builtin = BUILTIN_PARENTS.get(name)
        if builtin is not None:
            return (builtin,)
        if name in BUILTIN_PARENTS:  # BaseException
            return ()
        external = _EXTERNAL_PARENTS.get(name)
        if external is not None:
            return (external,)
        if name == UNKNOWN:
            return ()
        # Unrecognised external exception: assume a plain Exception.
        return ("Exception",)

    def is_subtype(self, sub: str, sup: str) -> bool:
        """True when an instance of ``sub`` is caught by ``except sup``."""
        if sub == sup:
            return True
        if sub == UNKNOWN or sup == UNKNOWN:
            return False
        seen: set[str] = set()
        stack = [sub]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for parent in self._direct_parents(current):
                if parent == sup:
                    return True
                stack.append(parent)
        return False

    def clause_catches(self, clause: HandlerClause, exc_type: str) -> bool:
        if clause.types is None:
            return True
        if exc_type == UNKNOWN:
            return any(t in ("Exception", "BaseException") for t in clause.types)
        return any(self.is_subtype(exc_type, t) for t in clause.types)

    def is_exception_family(self, exc_type: str) -> bool:
        """True for ``Exception`` descendants (boundary-relevant failures)."""
        return self.is_subtype(exc_type, "Exception")


def _observer_entries(config: RepolintConfig) -> tuple[str, ...]:
    return tuple(config.exception_log_functions) + DEFAULT_OBSERVER_CALLS


def _matches_observer(spelling: str, entries: tuple[str, ...]) -> bool:
    for entry in entries:
        if (
            spelling == entry
            or spelling.startswith(entry + ".")
            or spelling.endswith("." + entry)
        ):
            return True
    return False


_TRY_NODES: tuple[type, ...] = (ast.Try,)
if hasattr(ast, "TryStar"):  # Python 3.11+
    _TRY_NODES = (ast.Try, ast.TryStar)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class _FunctionScanner:
    """Collect raise sites, try regions and call guards for one function."""

    def __init__(
        self,
        resolver: ExceptionTypeResolver,
        function: FunctionInfo,
        observers: tuple[str, ...],
    ) -> None:
        self.resolver = resolver
        self.function = function
        self.observers = observers
        self.facts = FunctionExceptions(
            qualname=function.qualname, module=function.module
        )
        self._next_region = 0

    def scan(self) -> FunctionExceptions:
        for stmt in self.function.node.body:
            self._visit(stmt, (), None)
        return self.facts

    # -- traversal ------------------------------------------------------
    def _visit(
        self,
        node: ast.AST,
        guards: tuple[int, ...],
        handler: HandlerClause | None,
    ) -> None:
        if isinstance(node, _SCOPE_NODES):
            # Nested defs are separate functions; the ``nested`` call edge
            # at the def line carries their escapes, guarded like a call.
            self.facts.call_guards.setdefault(node.lineno, guards)
            return
        if isinstance(node, _TRY_NODES):
            self._visit_try(node, guards, handler)
            return
        if isinstance(node, ast.Raise):
            self._record_raise(node, guards, handler)
        elif isinstance(node, ast.Call):
            self.facts.call_guards.setdefault(node.lineno, guards)
        elif isinstance(node, ast.Await):
            self._record_await(node, guards)
        for child in ast.iter_child_nodes(node):
            self._visit(child, guards, handler)

    def _record_await(self, node: ast.Await, guards: tuple[int, ...]) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            dotted = _dotted_name(value.func)
            if dotted is not None:
                resolved = self.resolver.index.resolve_symbol(
                    self.function.module, dotted
                )
                if resolved in self.resolver.index.functions:
                    return  # the call edge carries the callee's escapes
                if dotted.startswith("self."):
                    return  # method calls are carried by method/extra edges
        self.facts.unknown_awaits.append((node.lineno, guards))

    def _visit_try(
        self,
        node: ast.AST,
        guards: tuple[int, ...],
        handler: HandlerClause | None,
    ) -> None:
        is_star = hasattr(ast, "TryStar") and isinstance(node, ast.TryStar)
        handlers = getattr(node, "handlers", [])
        clauses = tuple(self._analyze_handler(h, is_star) for h in handlers)
        if clauses:
            self._next_region += 1
            region = TryRegion(
                id=self._next_region, line=node.lineno, clauses=clauses
            )
            self.facts.tries[region.id] = region
            body_guards = (region.id,) + guards
        else:
            body_guards = guards
        for stmt in getattr(node, "body", []):
            self._visit(stmt, body_guards, handler)
        # ``else`` runs after the body completed without raising — its own
        # exceptions are NOT caught by this try's handlers.
        for stmt in getattr(node, "orelse", []):
            self._visit(stmt, guards, handler)
        # An exception raised inside a handler body is not caught by the
        # sibling clauses of the same try; only outer guards apply.
        for raw, clause in zip(handlers, clauses):
            for stmt in raw.body:
                self._visit(stmt, guards, clause)
        for stmt in getattr(node, "finalbody", []):
            self._visit(stmt, guards, handler)

    # -- handlers -------------------------------------------------------
    def _analyze_handler(
        self, handler: ast.ExceptHandler, is_star: bool
    ) -> HandlerClause:
        types = self._handler_types(handler.type)
        spelling = (
            ast.unparse(handler.type) if handler.type is not None else "<bare>"
        )
        reraises = False
        raises_new = False
        observes = False
        for node in _iter_own_nodes_of_body(handler.body):
            if isinstance(node, ast.Raise):
                if node.exc is None:
                    reraises = True
                else:
                    raises_new = True
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is not None and _matches_observer(
                    dotted, self.observers
                ):
                    observes = True
                elif dotted is not None:
                    resolver = self.resolver.index.resolvers.get(
                        self.function.module
                    )
                    origin = resolver.resolve(node.func) if resolver else None
                    if origin is not None and _matches_observer(
                        origin, self.observers
                    ):
                        observes = True
        return HandlerClause(
            types=types,
            spelling=spelling,
            is_star=is_star,
            line=handler.lineno,
            reraises=reraises,
            raises_new=raises_new,
            observes=observes,
            binds=handler.name,
        )

    def _handler_types(self, expr: ast.expr | None) -> tuple[str, ...] | None:
        if expr is None:
            return None
        elements = expr.elts if isinstance(expr, ast.Tuple) else [expr]
        types: list[str] = []
        for element in elements:
            dotted = _dotted_name(element)
            if dotted is None:
                types.append(UNKNOWN)
                continue
            alias = self._tuple_alias(dotted)
            if alias is not None:
                types.extend(alias)
                continue
            canonical = self.resolver.canonical(self.function.module, dotted)
            # An unresolvable clause type (``except self.retry_on:``) is
            # UNKNOWN: it catches nothing during narrowing (escapes stay
            # conservative) and is never considered broad (EXC1001) nor
            # provably dead (EXC1003).
            types.append(canonical if canonical is not None else UNKNOWN)
        return tuple(dict.fromkeys(types))

    def _tuple_alias(self, dotted: str) -> tuple[str, ...] | None:
        for candidate in (
            f"{self.function.module}.{dotted}",
            self.resolver.index.resolve_symbol(self.function.module, dotted),
        ):
            if candidate is not None and candidate in self.resolver.tuple_aliases:
                return self.resolver.tuple_aliases[candidate]
        return None

    # -- raises ---------------------------------------------------------
    def _record_raise(
        self,
        node: ast.Raise,
        guards: tuple[int, ...],
        handler: HandlerClause | None,
    ) -> None:
        if node.exc is None:
            # Bare re-raise: the handler-clause ``reraises`` flag carries
            # the escape; record the site for completeness.
            self.facts.raises.append(
                RaiseSite(
                    types=(),
                    line=node.lineno,
                    guards=guards,
                    in_handler=handler is not None,
                    has_cause=False,
                    bare=True,
                )
            )
            return
        types, reraises_bound = self._raise_types(node.exc, handler)
        self.facts.raises.append(
            RaiseSite(
                types=types,
                line=node.lineno,
                guards=guards,
                in_handler=handler is not None,
                has_cause=node.cause is not None,
                bare=False,
                reraises_bound=reraises_bound,
            )
        )

    def _raise_types(
        self, exc: ast.expr, handler: HandlerClause | None
    ) -> tuple[tuple[str, ...], bool]:
        module = self.function.module
        target = exc.func if isinstance(exc, ast.Call) else exc
        dotted = _dotted_name(target)
        if dotted is None:
            return (UNKNOWN,), False
        # ``raise exc`` of the handler's bound variable re-raises (a
        # subtype of) the caught types.
        if (
            handler is not None
            and dotted == handler.binds
            and not isinstance(exc, ast.Call)
        ):
            caught = handler.types if handler.types is not None else (UNKNOWN,)
            return caught, True
        resolved = self.resolver.index.resolve_symbol(module, dotted)
        if resolved in self.resolver.index.functions:
            # ``raise make_error(...)``: use the factory's return annotation.
            factory = self.resolver.index.functions[resolved]
            returned = self.resolver.index.annotation_type(
                factory.module, factory.node.returns
            )
            if returned in self.resolver.index.classes:
                return (returned,), False
            return (UNKNOWN,), False
        canonical = self.resolver.canonical(module, dotted)
        return ((canonical,), False) if canonical is not None else (
            (UNKNOWN,),
            False,
        )


def _iter_own_nodes_of_body(body: list[ast.stmt]) -> Iterator[ast.AST]:
    for stmt in body:
        yield stmt
        if isinstance(stmt, _SCOPE_NODES):
            continue
        yield from _iter_own_nodes(stmt)


@dataclass
class ExceptionIndex:
    """Per-function exception facts plus the fixed-point escape sets."""

    functions: dict[str, FunctionExceptions]
    escapes: dict[str, frozenset[str]]
    resolver: ExceptionTypeResolver
    config: RepolintConfig

    def escape_set(self, qualname: str) -> frozenset[str]:
        return self.escapes.get(qualname, frozenset())

    def filter_through_guards(
        self,
        types: frozenset[str] | set[str],
        guards: tuple[int, ...],
        facts: FunctionExceptions,
    ) -> set[str]:
        """Types that survive the except clauses guarding a site."""
        surviving = set(types)
        for region_id in guards:  # innermost first
            region = facts.tries.get(region_id)
            if region is None:
                continue
            still: set[str] = set()
            for exc_type in surviving:
                caught = None
                for clause in region.clauses:
                    if self.resolver.clause_catches(clause, exc_type):
                        caught = clause
                        break
                if caught is None or caught.reraises:
                    still.add(exc_type)
            surviving = still
            if not surviving:
                break
        return surviving

    def possible_in_region(
        self, call_graph: CallGraph, qualname: str, region_id: int
    ) -> set[str]:
        """Types that may arise inside one try region's guarded body.

        Raises directly guarded by the region plus the escape sets of every
        call made under it.  *All* edge kinds count here (including
        ``fallback``): proving a handler dead must survive dynamic calls.
        """
        facts = self.functions.get(qualname)
        if facts is None:
            return set()
        possible: set[str] = set()
        for site in facts.raises:
            if region_id in site.guards:
                # UNKNOWN is kept everywhere here: an untypeable raise, an
                # awaited future, or a callee escaping UNKNOWN could each
                # deliver any type, so no handler over them is provably
                # dead.
                possible.update(site.types)
        for line, guards in facts.unknown_awaits:
            if region_id in guards:
                possible.add(UNKNOWN)
        for edge in call_graph.edges_by_caller.get(qualname, []):
            guards = facts.call_guards.get(edge.line, ())
            if region_id in guards:
                possible.update(self.escapes.get(edge.callee, frozenset()))
        return possible

    def swallow_sites(self) -> Iterator[tuple[str, TryRegion, HandlerClause]]:
        """Every handler clause that swallows, with its function and region."""
        for qualname in sorted(self.functions):
            facts = self.functions[qualname]
            for region in facts.tries.values():
                for clause in region.clauses:
                    if clause.swallows:
                        yield qualname, region, clause


def build_exception_index(
    index: ProgramIndex,
    call_graph: CallGraph,
    config: RepolintConfig,
    module_trees: dict[str, ast.Module] | None = None,
) -> ExceptionIndex:
    """Scan every function and run escape-set inference to a fixed point."""
    resolver = ExceptionTypeResolver(index)
    observers = _observer_entries(config)

    # Module-level exception-tuple constants, resolvable in except clauses.
    if module_trees:
        for module, tree in module_trees.items():
            for node in ast.iter_child_nodes(tree):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if not isinstance(node.value, ast.Tuple):
                    continue
                types: list[str] = []
                for element in node.value.elts:
                    dotted = _dotted_name(element)
                    canonical = (
                        resolver.canonical(module, dotted)
                        if dotted is not None
                        else None
                    )
                    if canonical is None:
                        types = []
                        break
                    types.append(canonical)
                if types:
                    resolver.register_tuple_alias(
                        f"{module}.{target.id}", tuple(types)
                    )

    functions: dict[str, FunctionExceptions] = {}
    for qualname, function in index.functions.items():
        functions[qualname] = _FunctionScanner(
            resolver, function, observers
        ).scan()

    escapes: dict[str, frozenset[str]] = {q: frozenset() for q in functions}
    exc_index = ExceptionIndex(
        functions=functions, escapes=escapes, resolver=resolver, config=config
    )

    # Fixed point: monotone over a finite lattice (sets of names seen in
    # raise statements), so iteration terminates — recursion and call
    # cycles simply converge.
    changed = True
    while changed:
        changed = False
        for qualname, facts in functions.items():
            new: set[str] = set()
            for site in facts.raises:
                if site.bare:
                    continue
                new |= exc_index.filter_through_guards(
                    set(site.types), site.guards, facts
                )
            for line, await_guards in facts.unknown_awaits:
                new |= exc_index.filter_through_guards(
                    {UNKNOWN}, await_guards, facts
                )
            for edge in call_graph.edges_by_caller.get(qualname, []):
                if edge.kind == "fallback":
                    continue
                callee_escape = escapes.get(edge.callee)
                if not callee_escape:
                    continue
                guards = facts.call_guards.get(edge.line, ())
                new |= exc_index.filter_through_guards(
                    callee_escape, guards, facts
                )
            frozen = frozenset(new)
            if frozen != escapes[qualname]:
                escapes[qualname] = frozen
                changed = True
    exc_index.escapes = escapes
    return exc_index
