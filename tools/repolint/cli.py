"""Command-line front end: ``python -m tools.repolint [paths...]``.

Exit status is 0 when the scanned tree is clean and 1 when any finding
survives suppression filtering — which is exactly what CI and pre-commit
need to fail a build on a new violation.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from tools.repolint.engine import Finding, analyze_paths, iter_python_files
from tools.repolint.rules import all_rules, rule_catalog


def changed_python_files(repo_root: Path) -> list[Path]:
    """Tracked-but-modified plus untracked ``.py`` files per ``git status``."""
    result = subprocess.run(
        ["git", "status", "--porcelain"],
        cwd=repo_root,
        capture_output=True,
        text=True,
        check=True,
    )
    files: list[Path] = []
    for line in result.stdout.splitlines():
        if len(line) < 4:
            continue
        name = line[3:].split(" -> ")[-1].strip().strip('"')
        path = repo_root / name
        if path.suffix == ".py" and path.exists():
            files.append(path)
    return files


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repolint",
        description=(
            "Project-specific determinism and contract linter: RNG discipline, "
            "checkpoint completeness, numerical safety and API hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src/)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="fast path: only scan .py files git reports as modified/untracked",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings only)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code, name, summary in rule_catalog():
            print(f"{code}  {name:<26} {summary}")
        return 0

    rules = all_rules()
    if args.select:
        wanted = {code.strip() for code in args.select.split(",") if code.strip()}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            print(f"unknown rule codes: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.code in wanted]

    if args.changed:
        root = Path.cwd()
        try:
            targets: list[Path] = changed_python_files(root)
        except (OSError, subprocess.CalledProcessError) as error:
            print(f"--changed requires git ({error}); scanning defaults", file=sys.stderr)
            targets = [root / "src"]
        if args.paths:
            # Restrict the changed set to the requested scopes.
            scopes = [Path(p).resolve() for p in args.paths]
            targets = [
                f
                for f in iter_python_files(targets)
                if any(f.resolve().is_relative_to(scope) for scope in scopes)
            ]
    elif args.paths:
        targets = [Path(p) for p in args.paths]
    else:
        targets = [Path("src")]

    findings: list[Finding] = analyze_paths(targets, rules=rules)
    for finding in findings:
        print(finding.format())
    if not args.quiet:
        scanned = len(list(iter_python_files(targets)))
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"repolint: {scanned} file(s) scanned — {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
