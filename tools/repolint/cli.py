"""Command-line front end: ``python -m tools.repolint [paths...]``.

Exit status is 0 when the scanned tree is clean and 1 when any finding
survives suppression filtering — which is exactly what CI and pre-commit
need to fail a build on a new violation.  ``--format`` switches the output
between human text, JSON and SARIF (for GitHub code-scanning upload), and
the ``report`` subcommand emits the whole-program analysis artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from tools.repolint.engine import (
    Finding,
    analyze_paths,
    build_program,
    iter_python_files,
)
from tools.repolint.rules import all_rules, rule_catalog


def git_toplevel(anchor: Path | None = None) -> Path:
    """Repository root per git itself — correct from any subdirectory."""
    result = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        cwd=anchor or Path.cwd(),
        capture_output=True,
        text=True,
        check=True,
    )
    return Path(result.stdout.strip())


def changed_python_files(repo_root: Path | None = None) -> list[Path]:
    """Tracked-but-modified plus untracked ``.py`` files per ``git status``.

    ``git status --porcelain`` prints paths relative to the repository
    *toplevel*, so they must be resolved against it — resolving against the
    current working directory silently drops every changed file when the
    linter runs from a subdirectory.
    """
    if repo_root is None:
        repo_root = git_toplevel()
    result = subprocess.run(
        ["git", "status", "--porcelain"],
        cwd=repo_root,
        capture_output=True,
        text=True,
        check=True,
    )
    files: list[Path] = []
    for line in result.stdout.splitlines():
        if len(line) < 4:
            continue
        name = line[3:].split(" -> ")[-1].strip().strip('"')
        path = repo_root / name
        if path.suffix == ".py" and path.exists():
            files.append(path)
    return files


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repolint",
        description=(
            "Project-specific determinism, contract and whole-program "
            "linter: RNG discipline, checkpoint completeness, numerical "
            "safety, API hygiene, import-layer contracts, parallel-safety "
            "certificate and hot-path allocation checks."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src/)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="fast path: only scan .py files git reports as modified/untracked",
    )
    parser.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=None,
        help=(
            "reuse per-file findings for files whose content hash is "
            "unchanged (.repolint-cache.json; default: on for --changed)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="disable the per-file result cache",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "process-pool size for per-file analysis "
            "(default: min(8, CPU count); 1 disables the pool)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format for findings (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write findings to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings only)",
    )
    return parser


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repolint report",
        description=(
            "Emit the whole-program analysis artifact: import-layer graph, "
            "call graph, per-function effect table and the parallel-safety "
            "certificate, as JSON."
        ),
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write the JSON artifact to FILE (default: stdout)",
    )
    parser.add_argument(
        "--anchor",
        metavar="PATH",
        default=".",
        help="any path inside the project whose package should be analyzed",
    )
    return parser


def run_report(argv: Sequence[str]) -> int:
    from tools.repolint.report import build_report

    args = build_report_parser().parse_args(argv)
    program = build_program(Path(args.anchor))
    if program is None:
        print(
            "report: no analyzable package found (missing pyproject.toml "
            "or package directory)",
            file=sys.stderr,
        )
        return 2
    payload = json.dumps(build_report(program), indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(payload + "\n", encoding="utf-8")
        print(f"report: wrote {args.out}", file=sys.stderr)
    else:
        print(payload)
    return 0


def render_findings(findings: list[Finding], fmt: str) -> str:
    if fmt == "json":
        return json.dumps(
            [
                {
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "code": finding.code,
                    "message": finding.message,
                    "hint": finding.hint,
                }
                for finding in findings
            ],
            indent=2,
        )
    if fmt == "sarif":
        from tools.repolint.sarif import render_sarif

        return render_sarif(findings, rule_catalog())
    return "\n".join(finding.format() for finding in findings)


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "report":
        return run_report(argv[1:])
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code, name, summary in rule_catalog():
            print(f"{code}  {name:<26} {summary}")
        return 0

    rules = all_rules()
    if args.select:
        wanted = {code.strip() for code in args.select.split(",") if code.strip()}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            print(f"unknown rule codes: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.code in wanted]

    if args.changed:
        try:
            targets: list[Path] = changed_python_files()
        except (OSError, subprocess.CalledProcessError) as error:
            print(f"--changed requires git ({error}); scanning defaults", file=sys.stderr)
            targets = [Path.cwd() / "src"]
        if args.paths:
            # Restrict the changed set to the requested scopes.
            scopes = [Path(p).resolve() for p in args.paths]
            targets = [
                f
                for f in iter_python_files(targets)
                if any(f.resolve().is_relative_to(scope) for scope in scopes)
            ]
    elif args.paths:
        targets = [Path(p) for p in args.paths]
    else:
        targets = [Path("src")]

    use_cache = args.cache if args.cache is not None else args.changed
    result_cache = None
    # Cached findings reflect the full rule set; a --select run must not
    # read (or poison) them.  for_repo hashes the resolved config into the
    # cache, so a pyproject contract edit invalidates every entry.
    if use_cache and targets and not args.select:
        from tools.repolint.cache import ResultCache

        result_cache = ResultCache.for_repo(Path(targets[0]))

    if args.jobs is not None and args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs is not None else min(8, os.cpu_count() or 1)

    findings: list[Finding] = analyze_paths(
        targets, rules=rules, result_cache=result_cache, jobs=jobs
    )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    rendered = render_findings(findings, args.format)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    elif rendered:
        print(rendered)
    if not args.quiet and args.format == "text":
        scanned = len(list(iter_python_files(targets)))
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"repolint: {scanned} file(s) scanned — {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
