"""Entry point for ``python -m tools.repolint``."""

from tools.repolint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
