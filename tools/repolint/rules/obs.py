"""OBS11xx: observability discipline — structured logs and one clock.

The obs layer (PR 10) gives the repo exactly one metrics registry, one
structured logger and one sanctioned monotonic-clock read.  These rules
keep the rest of the tree honest about it:

* OBS1101 bans bare ``print(...)`` inside the package.  Diagnostics that
  bypass :func:`repro.obs.log.get_logger` are invisible to the JSON log
  pipeline and interleave badly under the threaded serve stack.  The CLI
  boundary (user-facing output) is allowlisted via
  ``[tool.repolint.obs] allow-print``, as are functions literally named
  ``main`` and statements under ``if __name__ == "__main__":`` guards.
* OBS1102 bans direct ``time.monotonic`` / ``time.perf_counter`` reads
  (and their ``_ns`` variants) in the packages listed under
  ``clock-packages``.  Those packages must go through the single boundary
  module (``clock-boundary``, here :mod:`repro.obs.clock`) so tests and
  benchmarks can substitute a fake clock everywhere at once, and so the
  plan-determinism contract has one auditable place where time enters.

Both rules are whole-program rules only because they read the config;
their checks are per-module and purely syntactic.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.engine import (
    Finding,
    ImportResolver,
    ProgramContext,
    ProgramRule,
)

#: Monotonic/process clock reads that must flow through the clock boundary.
#: Wall-clock reads (``time.time`` & friends) are RNG104's jurisdiction.
MONOTONIC_CLOCK_CALLS = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)


def _in_packages(module: str, packages: tuple[str, ...]) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )


def _is_main_guard(node: ast.AST) -> bool:
    """True for ``if __name__ == "__main__":`` (either operand order)."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Eq)
        and len(test.comparators) == 1
    ):
        return False
    operands = (test.left, test.comparators[0])
    has_name = any(
        isinstance(op, ast.Name) and op.id == "__name__" for op in operands
    )
    has_literal = any(
        isinstance(op, ast.Constant) and op.value == "__main__"
        for op in operands
    )
    return has_name and has_literal


def _walk_with_ancestors(
    tree: ast.AST,
) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
    def visit(
        node: ast.AST, ancestors: tuple[ast.AST, ...]
    ) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
        yield node, ancestors
        for child in ast.iter_child_nodes(node):
            yield from visit(child, ancestors + (node,))

    yield from visit(tree, ())


class BarePrintRule(ProgramRule):
    """OBS1101: bare ``print(...)`` outside the sanctioned CLI boundary."""

    code = "OBS1101"
    name = "bare-print"
    hint = (
        "emit through repro.obs.log.get_logger(component) so the message "
        "carries a level and survives JSON log mode; user-facing output "
        "belongs in a module listed under [tool.repolint.obs] allow-print"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        allow = program.config.obs_allow_print
        if not allow:
            return  # no allowlist declared -> the contract is not adopted
        package = program.config.package
        for module, file in sorted(program.files.items()):
            if not _in_packages(module, (package,)):
                continue
            if _in_packages(module, tuple(allow)):
                continue
            yield from self._check_module(program, module, file.tree)

    def _check_module(
        self, program: ProgramContext, module: str, tree: ast.Module
    ) -> Iterator[Finding]:
        for node, ancestors in _walk_with_ancestors(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                continue
            if any(
                isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                and a.name == "main"
                for a in ancestors
            ):
                continue
            if any(_is_main_guard(a) for a in ancestors):
                continue
            yield self.program_finding(
                program,
                module,
                node.lineno,
                f"bare print() in '{module}' bypasses the structured logger",
            )


class DirectClockRule(ProgramRule):
    """OBS1102: monotonic-clock read outside the obs clock boundary."""

    code = "OBS1102"
    name = "direct-clock"
    hint = (
        "read the clock via the boundary module (repro.obs.clock.monotonic) "
        "or accept an injected clock callable, so tests and benchmarks can "
        "fake time everywhere at once"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        packages = program.config.clock_packages
        boundary = program.config.clock_boundary
        if not packages or not boundary:
            return
        for module, file in sorted(program.files.items()):
            if not _in_packages(module, packages):
                continue
            if _in_packages(module, (boundary,)):
                continue
            resolver = ImportResolver(file.tree)
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                origin = resolver.resolve(node.func)
                if origin in MONOTONIC_CLOCK_CALLS:
                    yield self.program_finding(
                        program,
                        module,
                        node.lineno,
                        f"direct clock read '{origin}' outside the "
                        f"'{boundary}' boundary",
                    )
