"""Checkpoint-completeness rule (CKPT201).

PR 1's crash-safe training rests on a convention: every stateful component
captures *all* of its mutable run-state in ``capture_state`` and puts it
back in ``restore_state``.  The classic regression is adding a new counter
or buffer to ``__init__``, mutating it during training, and forgetting the
capture/restore pair — the checkpoint round-trips "successfully" and the
resumed run silently diverges.  This rule catches that class of bug
statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.engine import Finding, Rule, RuleContext

CAPTURE_METHODS = {"capture_state", "state_dict"}
RESTORE_METHODS = {"restore_state", "load_state_dict"}


def _self_attribute_writes(function: ast.AST) -> dict[str, int]:
    """Attribute names assigned via ``self.<name> = / += ...`` → first line."""
    writes: dict[str, int] = {}
    for node in ast.walk(function):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            for element in _flatten_targets(target):
                if (
                    isinstance(element, ast.Attribute)
                    and isinstance(element.value, ast.Name)
                    and element.value.id == "self"
                ):
                    writes.setdefault(element.attr, element.lineno)
    return writes


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


def _self_attribute_references(functions: list[ast.AST]) -> set[str]:
    """Every ``self.<name>`` read or written anywhere in ``functions``."""
    referenced: set[str] = set()
    for function in functions:
        for node in ast.walk(function):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                referenced.add(node.attr)
    return referenced


class CheckpointCompletenessRule(Rule):
    """CKPT201: run-state attribute missing from the capture/restore pair.

    For every class implementing both a capture method (``capture_state`` /
    ``state_dict``) and a restore method (``restore_state`` /
    ``load_state_dict``), any attribute that is (a) initialised in
    ``__init__`` and (b) reassigned in some other method — i.e. genuine
    mutable run-state, not frozen constructor config — must be referenced
    somewhere in the capture/restore pair.  Attributes that are pure
    constructor configuration (never reassigned after ``__init__``) are
    exempt: rebuilding the object from the same config restores them.
    """

    code = "CKPT201"
    name = "checkpoint-completeness"
    hint = (
        "capture the attribute in capture_state and reassign it in "
        "restore_state — or suppress if it is provably derived/transient"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: RuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        capture = [methods[name] for name in CAPTURE_METHODS if name in methods]
        restore = [methods[name] for name in RESTORE_METHODS if name in methods]
        init = methods.get("__init__")
        if not capture or not restore or init is None:
            return
        checkpoint_methods = {m.name for m in capture + restore}
        init_writes = _self_attribute_writes(init)
        mutated: set[str] = set()
        for name, method in methods.items():
            if name == "__init__" or name in checkpoint_methods:
                continue
            mutated.update(_self_attribute_writes(method))
        referenced = _self_attribute_references(
            [*capture, *restore]  # reads and writes both count as "covered"
        )
        for attr in sorted(init_writes):
            if attr in mutated and attr not in referenced:
                yield Finding(
                    path=str(ctx.path),
                    line=init_writes[attr],
                    col=1,
                    code=self.code,
                    message=(
                        f"'{cls.name}.{attr}' is mutated at runtime but never "
                        "appears in the capture/restore pair — it will be "
                        "silently lost across checkpoint/resume"
                    ),
                    hint=self.hint,
                )
