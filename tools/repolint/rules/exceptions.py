"""EXC10xx: exception-flow discipline over the inferred escape sets.

Built on :mod:`tools.repolint.graphs.exceptions` — raise sites, handler
clauses and the fixed-point escape-set inference.  Scope comes from
``[tool.repolint.exceptions] packages`` (empty = whole program); the error
boundaries and their sanctioned escapes live in
``[tool.repolint.exceptions.boundaries]``.

* **EXC1001** — a broad handler (bare ``except``, ``except Exception``,
  ``except BaseException``) that neither re-raises, raises a replacement,
  nor observes the failure (no log/metric call).  Silent swallows on the
  serve and training paths turn crashes into wrong answers.
* **EXC1002** — an exception type escaping a declared boundary that its
  sanction list does not cover.  Serve handlers declare ``[]`` (every
  failure must become a structured HTTP response); ``PAFeat.fit`` may only
  leak the typed ``ReproError`` hierarchy and argument ``ValueError``s.
* **EXC1003** — a dead handler: an ``except C`` clause naming a
  program-defined exception class that provably cannot arise from the
  guarded body (no reachable raise, no callee escape).  Dead handlers are
  usually stale after a refactor and hide the *absence* of the protection
  they advertise.
* **EXC1004** — a raise of bare ``Exception``/``BaseException``/
  ``RuntimeError`` inside the scoped packages: stringly errors that
  callers cannot catch precisely.  New failure modes belong in the typed
  taxonomy (``taxonomy-root`` in the config).
* **EXC1005** — context loss: raising a *new* exception inside an
  ``except`` block without ``from`` — the traceback loses the original
  cause exactly where it is most needed.  ``raise X from exc`` chains it;
  ``raise X from None`` documents deliberate suppression.
"""

from __future__ import annotations

from typing import Iterator

from tools.repolint.engine import Finding, ProgramContext, ProgramRule
from tools.repolint.graphs.exceptions import UNKNOWN

#: Raising these exact types is stringly-typed error handling (EXC1004).
UNTYPED_RAISES = frozenset({"Exception", "BaseException", "RuntimeError"})


def _in_scope(module: str, packages: tuple[str, ...]) -> bool:
    if not packages:
        return True
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )


class SwallowedExceptionRule(ProgramRule):
    """EXC1001: broad except that swallows without logging or re-raising."""

    code = "EXC1001"
    name = "swallowed-exception"
    hint = (
        "re-raise, raise a typed replacement with 'from', or record the "
        "failure (logger.exception / metrics); a silent broad except turns "
        "crashes into wrong answers"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        packages = program.config.exception_packages
        exceptions = program.exceptions
        for qualname, region, clause in exceptions.swallow_sites():
            facts = exceptions.functions[qualname]
            if not _in_scope(facts.module, packages):
                continue
            if not clause.broad:
                continue
            yield self.program_finding(
                program,
                facts.module,
                clause.line,
                f"'except {clause.spelling}' in {qualname} swallows the "
                "exception: no re-raise, no replacement, no log/metric call",
            )


class BoundaryEscapeRule(ProgramRule):
    """EXC1002: exception escaping a declared error boundary unsanctioned."""

    code = "EXC1002"
    name = "boundary-escape"
    hint = (
        "catch the type inside the boundary and convert it (structured "
        "HTTP error, typed ReproError), or add it to the boundary's "
        "sanctioned list in [tool.repolint.exceptions.boundaries] with a "
        "rationale"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        exceptions = program.exceptions
        resolver = exceptions.resolver
        for boundary, sanctioned in sorted(
            program.config.exception_boundaries.items()
        ):
            function = program.index.functions.get(boundary)
            if function is None:
                continue
            for exc_type in sorted(exceptions.escape_set(boundary)):
                if exc_type == UNKNOWN:
                    # Unresolvable raise expressions are reported via the
                    # certificate, not as boundary violations.
                    continue
                if not resolver.is_exception_family(exc_type):
                    # CancelledError / KeyboardInterrupt / SystemExit are
                    # control flow, not failures a boundary must convert.
                    continue
                if any(resolver.is_subtype(exc_type, s) for s in sanctioned):
                    continue
                yield self.program_finding(
                    program,
                    function.module,
                    function.node.lineno,
                    f"{exc_type} may escape boundary {boundary}; sanctioned "
                    f"escapes are [{', '.join(sanctioned) or 'none'}]",
                )


class DeadHandlerRule(ProgramRule):
    """EXC1003: except clause whose type cannot arise from the guarded body."""

    code = "EXC1003"
    name = "dead-handler"
    hint = (
        "the guarded body no longer raises this type (stale after a "
        "refactor?); delete the clause or guard the call that was meant "
        "to raise it"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        packages = program.config.exception_packages
        exceptions = program.exceptions
        resolver = exceptions.resolver
        call_graph = program.call_graph
        for qualname in sorted(exceptions.functions):
            facts = exceptions.functions[qualname]
            if not _in_scope(facts.module, packages):
                continue
            for region in facts.tries.values():
                possible = exceptions.possible_in_region(
                    call_graph, qualname, region.id
                )
                if UNKNOWN in possible:
                    # A raise we cannot type could be anything.
                    continue
                for clause in region.clauses:
                    if clause.types is None:
                        continue
                    # Only program-defined exception classes are provable:
                    # any call into a library may raise any builtin.
                    if not all(
                        t in program.index.classes for t in clause.types
                    ):
                        continue
                    live = any(
                        resolver.is_subtype(exc_type, clause_type)
                        for exc_type in possible
                        for clause_type in clause.types
                    )
                    if not live:
                        yield self.program_finding(
                            program,
                            facts.module,
                            clause.line,
                            f"'except {clause.spelling}' in {qualname} is "
                            "dead: the guarded body cannot raise it",
                        )


class UntypedRaiseRule(ProgramRule):
    """EXC1004: raise of bare Exception/RuntimeError outside the taxonomy."""

    code = "EXC1004"
    name = "untyped-raise"

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        packages = program.config.exception_packages
        root = program.config.exception_taxonomy_root
        hint = (
            f"raise a subclass of {root or 'the project error taxonomy'} "
            "instead, so callers can catch the failure precisely"
        )
        exceptions = program.exceptions
        for qualname in sorted(exceptions.functions):
            facts = exceptions.functions[qualname]
            if not _in_scope(facts.module, packages):
                continue
            for site in facts.raises:
                if site.bare or site.reraises_bound:
                    continue
                for exc_type in site.types:
                    if exc_type in UNTYPED_RAISES:
                        yield self.program_finding(
                            program,
                            facts.module,
                            site.line,
                            f"raise of bare {exc_type} in {qualname}: "
                            "callers cannot catch this precisely",
                            hint=hint,
                        )


class ContextLossRule(ProgramRule):
    """EXC1005: new exception raised in an except block without 'from'."""

    code = "EXC1005"
    name = "context-loss"
    hint = (
        "chain the original with 'raise X(...) from exc' (or 'from None' "
        "to document deliberate suppression); otherwise the traceback "
        "loses the root cause"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        packages = program.config.exception_packages
        exceptions = program.exceptions
        for qualname in sorted(exceptions.functions):
            facts = exceptions.functions[qualname]
            if not _in_scope(facts.module, packages):
                continue
            for site in facts.raises:
                if not site.in_handler or site.bare or site.has_cause:
                    continue
                if site.reraises_bound:
                    # ``raise exc`` of the caught variable: same exception,
                    # no context to lose.
                    continue
                spelling = ", ".join(site.types) or "exception"
                yield self.program_finding(
                    program,
                    facts.module,
                    site.line,
                    f"raise of {spelling} inside an except block without "
                    f"'from' in {qualname}: the original cause is dropped "
                    "from the traceback",
                )
