"""RNG- and wall-clock-discipline rules (the RNG1xx family).

Bit-exact checkpoint/resume (PR 1) only holds if every random draw flows
from a seeded, checkpointed :class:`numpy.random.Generator`.  These rules
ban the three ways nondeterminism sneaks in: the legacy global numpy RNG,
the stdlib ``random`` module, and ad-hoc ``SeedSequence`` construction
outside seeded constructors.  Wall-clock reads are banned in the hot
packages because they leak into control flow and break replayability.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.engine import Finding, Rule, RuleContext

#: numpy.random module-level functions that draw from (or mutate) the hidden
#: global RandomState.  ``default_rng`` / ``Generator`` / ``SeedSequence``
#: are deliberately absent — they are the sanctioned replacements.
LEGACY_NUMPY_RANDOM = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto", "permutation",
    "poisson", "power", "rand", "randint", "randn", "random",
    "random_integers", "random_sample", "ranf", "rayleigh", "sample", "seed",
    "set_state", "shuffle", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "triangular",
    "uniform", "vonmises", "wald", "weibull", "zipf",
}

#: stdlib ``random`` module functions (drawing from its hidden global state).
STDLIB_RANDOM = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange", "sample",
    "seed", "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}

#: Wall-clock reads that make hot-path behaviour time-dependent.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: The one module allowed to mint SeedSequences outside constructors.
SANCTIONED_SEEDING_MODULE = "repro.rl.seeding"


def _enclosing_function(ancestors: tuple[ast.AST, ...]) -> ast.AST | None:
    for node in reversed(ancestors):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


class GlobalNumpyRandomRule(Rule):
    """RNG101: calls into the legacy global ``numpy.random`` RandomState."""

    code = "RNG101"
    name = "global-numpy-random"
    hint = (
        "draw from an injected np.random.Generator "
        "(np.random.default_rng(seed)) so the stream is seeded and checkpointable"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolver.resolve(node.func)
            if origin is None:
                continue
            if (
                origin.startswith("numpy.random.")
                and origin.rsplit(".", 1)[1] in LEGACY_NUMPY_RANDOM
            ):
                yield self.finding(
                    ctx, node, f"call to legacy global RNG '{origin}'"
                )


class StdlibRandomRule(Rule):
    """RNG102: calls into the stdlib ``random`` module's hidden global state."""

    code = "RNG102"
    name = "stdlib-random"
    hint = (
        "route randomness through an injected np.random.Generator; "
        "the stdlib 'random' global state is neither seeded nor checkpointed"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolver.resolve(node.func)
            if origin is None:
                continue
            if (
                origin.startswith("random.")
                and origin.rsplit(".", 1)[1] in STDLIB_RANDOM
            ):
                yield self.finding(
                    ctx, node, f"call to stdlib global RNG '{origin}'"
                )


class InlineSeedSequenceRule(Rule):
    """RNG103: ``np.random.SeedSequence`` built outside a seeded constructor.

    A SeedSequence minted per *call* silently forks a fresh stream every
    invocation, so resumed runs replay different randomness than
    uninterrupted ones.  SeedSequences belong in ``__init__`` (where they
    become part of the object's seeded state) or in the sanctioned helpers
    of :mod:`repro.rl.seeding`.
    """

    code = "RNG103"
    name = "inline-seed-sequence"
    hint = (
        "derive streams in __init__ or via repro.rl.seeding "
        "(e.g. task_rng(seed, task_id)) so one seed reproduces the whole run"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if ctx.module == SANCTIONED_SEEDING_MODULE:
            return
        for node, ancestors in ctx.walk_scoped():
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolver.resolve(node.func)
            if origin != "numpy.random.SeedSequence":
                continue
            function = _enclosing_function(ancestors)
            if (
                isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
                and function.name == "__init__"
            ):
                continue
            yield self.finding(
                ctx, node, "SeedSequence constructed outside a seeded constructor"
            )


class WallClockRule(Rule):
    """RNG104: wall-clock reads inside the deterministic hot packages."""

    code = "RNG104"
    name = "wall-clock"
    hint = (
        "core/rl/nn must be deterministic; take timestamps at the CLI/experiment "
        "boundary and thread them in as arguments"
    )

    #: Packages whose behaviour must be a pure function of (inputs, seed).
    scoped_packages = ("repro.core", "repro.rl", "repro.nn")

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.module_in(*self.scoped_packages):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolver.resolve(node.func)
            if origin in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node, f"wall-clock read '{origin}' in a deterministic package"
                )
