"""API-hygiene rules (the API4xx family)."""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.engine import Finding, Rule, RuleContext

MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "collections.defaultdict"}


class MutableDefaultRule(Rule):
    """API401: mutable default argument shared across every call."""

    code = "API401"
    name = "mutable-default-arg"
    hint = "default to None and create the container inside the function body"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, MUTABLE_LITERALS):
                    yield self.finding(
                        ctx, default, "mutable default argument (shared across calls)"
                    )
                elif isinstance(default, ast.Call):
                    origin = ctx.resolver.resolve(default.func)
                    if origin in MUTABLE_CONSTRUCTORS:
                        yield self.finding(
                            ctx,
                            default,
                            f"mutable default argument '{origin}()' "
                            "(shared across calls)",
                        )


class AllDriftRule(Rule):
    """API402: ``__all__`` out of sync with the names an ``__init__.py`` binds.

    Both directions are drift: a name listed in ``__all__`` that the module
    never binds breaks ``from pkg import name``; a public name imported at
    the top level but missing from ``__all__`` silently narrows the
    wildcard/typed surface the package advertises.
    """

    code = "API402"
    name = "all-drift"
    hint = "keep __all__ exactly equal to the public names the module binds"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if ctx.path.name != "__init__.py":
            return
        all_node, exported = self._exported(ctx.tree)
        if all_node is None or exported is None:
            return
        bound_public = self._bound_public_names(ctx.tree)
        bound_all = self._bound_names(ctx.tree)
        for name in sorted(set(exported) - bound_all):
            yield self.finding(
                ctx,
                all_node,
                f"'{name}' is listed in __all__ but never bound in this module",
                hint="remove it from __all__ or import/define it",
            )
        for name in sorted(bound_public - set(exported)):
            yield self.finding(
                ctx,
                all_node,
                f"public name '{name}' is bound here but missing from __all__",
                hint="add it to __all__ or rename it with a leading underscore",
            )

    @staticmethod
    def _exported(tree: ast.Module) -> tuple[ast.AST | None, list[str] | None]:
        for node in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(value, (ast.List, ast.Tuple)) and all(
                        isinstance(e, ast.Constant) and isinstance(e.value, str)
                        for e in value.elts
                    ):
                        names = [e.value for e in value.elts]  # type: ignore[union-attr]
                        return node, names
                    return node, None  # dynamic __all__: out of scope
        return None, None

    @staticmethod
    def _bound_names(tree: ast.Module) -> set[str]:
        """Every top-level name the module binds (imports, defs, assigns)."""
        bound: set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        return bound

    @classmethod
    def _bound_public_names(cls, tree: ast.Module) -> set[str]:
        """Top-level names that form the package's implicit public surface.

        Plain ``import x`` bindings are excluded (they re-expose modules,
        not API); ``from ... import`` names, defs and assignments count.
        """
        public: set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if bound != "*" and not bound.startswith("_"):
                        public.add(bound)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not node.name.startswith("_"):
                    public.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and not target.id.startswith("_")
                        and target.id != "__all__"
                    ):
                        public.add(target.id)
        return public
