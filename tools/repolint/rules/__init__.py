"""Rule registry: every repolint rule, instantiable in catalog order."""

from __future__ import annotations

from tools.repolint.engine import ProgramRule, Rule
from tools.repolint.rules.api import AllDriftRule, MutableDefaultRule
from tools.repolint.rules.arch import (
    ImportCycleRule,
    LayerContractRule,
    UndeclaredLayerRule,
)
from tools.repolint.rules.checkpoint import CheckpointCompletenessRule
from tools.repolint.rules.concurrency import (
    AwaitUnderLockRule,
    BlockingInLoopRule,
    OrphanSpawnRule,
    ToctouAcrossAwaitRule,
    UnlockedSharedStateRule,
)
from tools.repolint.rules.exceptions import (
    BoundaryEscapeRule,
    ContextLossRule,
    DeadHandlerRule,
    SwallowedExceptionRule,
    UntypedRaiseRule,
)
from tools.repolint.rules.hotpath import HotPathAllocationRule
from tools.repolint.rules.lint import UnusedSuppressionRule
from tools.repolint.rules.numeric import UnguardedExpLogRule, UnguardedSumDivisionRule
from tools.repolint.rules.obs import BarePrintRule, DirectClockRule
from tools.repolint.rules.parallel import (
    ModuleStateMutationRule,
    RolloutSharedStateRule,
)
from tools.repolint.rules.resilience import UnboundedServeIORule
from tools.repolint.rules.rng import (
    GlobalNumpyRandomRule,
    InlineSeedSequenceRule,
    StdlibRandomRule,
    WallClockRule,
)

RULE_CLASSES: list[type[Rule]] = [
    GlobalNumpyRandomRule,
    StdlibRandomRule,
    InlineSeedSequenceRule,
    WallClockRule,
    CheckpointCompletenessRule,
    UnguardedExpLogRule,
    UnguardedSumDivisionRule,
    MutableDefaultRule,
    AllDriftRule,
    LayerContractRule,
    ImportCycleRule,
    UndeclaredLayerRule,
    RolloutSharedStateRule,
    ModuleStateMutationRule,
    HotPathAllocationRule,
    UnboundedServeIORule,
    BlockingInLoopRule,
    UnlockedSharedStateRule,
    AwaitUnderLockRule,
    ToctouAcrossAwaitRule,
    OrphanSpawnRule,
    SwallowedExceptionRule,
    BoundaryEscapeRule,
    DeadHandlerRule,
    UntypedRaiseRule,
    ContextLossRule,
    BarePrintRule,
    DirectClockRule,
    UnusedSuppressionRule,
]


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in catalog order."""
    return [rule_class() for rule_class in RULE_CLASSES]


def rule_catalog() -> list[tuple[str, str, str]]:
    """(code, name, one-line summary) for every rule — feeds --list-rules."""
    catalog = []
    for rule_class in RULE_CLASSES:
        doc = (rule_class.__doc__ or "").strip().splitlines()[0]
        summary = doc.split(": ", 1)[1] if ": " in doc else doc
        catalog.append((rule_class.code, rule_class.name, summary))
    return catalog


__all__ = [
    "AllDriftRule",
    "AwaitUnderLockRule",
    "BarePrintRule",
    "BlockingInLoopRule",
    "BoundaryEscapeRule",
    "CheckpointCompletenessRule",
    "ContextLossRule",
    "DeadHandlerRule",
    "DirectClockRule",
    "GlobalNumpyRandomRule",
    "HotPathAllocationRule",
    "ImportCycleRule",
    "InlineSeedSequenceRule",
    "LayerContractRule",
    "ModuleStateMutationRule",
    "MutableDefaultRule",
    "OrphanSpawnRule",
    "ProgramRule",
    "RULE_CLASSES",
    "RolloutSharedStateRule",
    "Rule",
    "StdlibRandomRule",
    "SwallowedExceptionRule",
    "ToctouAcrossAwaitRule",
    "UnlockedSharedStateRule",
    "UnboundedServeIORule",
    "UndeclaredLayerRule",
    "UnguardedExpLogRule",
    "UnguardedSumDivisionRule",
    "UntypedRaiseRule",
    "UnusedSuppressionRule",
    "WallClockRule",
    "all_rules",
    "rule_catalog",
]
