"""ASYNC9xx: concurrency-safety certificate for the async serve stack.

The serving layer mixes an asyncio event loop (request handlers, the
micro-batcher's flush task and watchdog) with executor threads (model
reloads) and lock-guarded registry state.  The bugs this family targets
are the ones the chaos suite can only catch probabilistically:

* **ASYNC901** — a call that parks the thread (``time.sleep``, sync file
  or socket I/O, ``Future.result()``) is reachable from an event-loop
  coroutine.  One such call stalls *every* in-flight request.  Startup
  paths may be sanctioned via ``[tool.repolint.concurrency]
  allow-blocking`` — the whole call subtree under each entry is exempt.
* **ASYNC902** — shared mutable attribute written from one execution
  context (loop / thread / executor) and touched from another with no
  common lock (classic lockset intersection).  ``Class.attr`` keys in
  ``sync-points`` document intentionally unlocked state.
* **ASYNC903** — ``await`` inside a critical section guarded by a
  *synchronous* lock: every other coroutine needing that lock is blocked
  across the suspension, and re-entry can deadlock.
* **ASYNC904** — read-before-await / write-after-await TOCTOU: a
  coroutine reads ``self.X``, suspends, then writes ``self.X`` while
  another method of the same class also writes it — the value checked is
  not the value acted on.  Function qualnames in ``sync-points`` document
  interleavings that are safe by design.
* **ASYNC905** — a task or thread is spawned and its handle dropped:
  nothing can await/join it, exceptions vanish, shutdown leaks it.
"""

from __future__ import annotations

from typing import Iterator

from tools.repolint.engine import Finding, ProgramContext, ProgramRule
from tools.repolint.graphs.concurrency import AttrAccess, ConcurrencyIndex


def _in_scope(program: ProgramContext, qualname: str) -> bool:
    """True when the qualname falls under the configured concurrency
    packages (or no packages are configured)."""
    packages = program.config.concurrency_packages
    if not packages:
        return True
    return any(
        qualname == package or qualname.startswith(package + ".")
        for package in packages
    )


class BlockingInLoopRule(ProgramRule):
    """ASYNC901: blocking call reachable from an event-loop coroutine."""

    code = "ASYNC901"
    name = "blocking-call-on-event-loop"
    hint = (
        "offload with await loop.run_in_executor(...), or sanction the "
        "startup path via [tool.repolint.concurrency] allow-blocking with "
        "a rationale in docs/ARCHITECTURE.md"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        concurrency: ConcurrencyIndex = program.concurrency
        index = program.call_graph.index
        for qualname in sorted(concurrency.loop_root):
            info = concurrency.functions[qualname]
            if not info.blocking:
                continue
            root = concurrency.loop_root[qualname]
            function = index.functions[qualname]
            for op in info.blocking:
                yield self.program_finding(
                    program,
                    function.module,
                    op.line,
                    f"'{qualname}' blocks the event loop with {op.detail} "
                    f"and is reachable from coroutine '{root}'",
                )


class UnlockedSharedStateRule(ProgramRule):
    """ASYNC902: cross-context attribute access with empty lockset."""

    code = "ASYNC902"
    name = "unlocked-cross-context-state"
    hint = (
        "guard every access with one common lock, publish immutable "
        "snapshots atomically, or document the key under "
        "[tool.repolint.concurrency] sync-points"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        concurrency: ConcurrencyIndex = program.concurrency
        index = program.call_graph.index
        for (cls, attr), accesses in sorted(concurrency.shared_state.items()):
            if not _in_scope(program, cls):
                continue
            if f"{cls}.{attr}" in program.config.concurrency_sync_points:
                continue
            contextful = [
                access
                for access in accesses
                if concurrency.contexts.get(access.function)
            ]
            if not contextful:
                continue
            seen_contexts: set[str] = set()
            for access in contextful:
                seen_contexts.update(concurrency.contexts[access.function])
            writes = [access for access in contextful if access.write]
            if len(seen_contexts) < 2 or not writes:
                continue
            common = set(contextful[0].locks)
            for access in contextful[1:]:
                common.intersection_update(access.locks)
            if common:
                continue
            witness = self._witness(contextful)
            function = index.functions[witness.function]
            others = sorted(
                {
                    f"{access.function} "
                    f"[{'/'.join(sorted(concurrency.contexts[access.function]))}]"
                    for access in contextful
                    if access.function != witness.function
                }
            )
            yield self.program_finding(
                program,
                function.module,
                witness.line,
                f"'{cls.rsplit('.', 1)[-1]}.{attr}' is written without a "
                f"common lock across execution contexts "
                f"({'/'.join(sorted(seen_contexts))}); accessed here by "
                f"'{witness.function}' and by {', '.join(others[:3])}",
            )

    @staticmethod
    def _witness(accesses: list[AttrAccess]) -> AttrAccess:
        """Prefer an unlocked write as the anchor, then any write."""
        for access in accesses:
            if access.write and not access.locks:
                return access
        for access in accesses:
            if access.write:
                return access
        return accesses[0]


class AwaitUnderLockRule(ProgramRule):
    """ASYNC903: await inside a synchronous-lock critical section."""

    code = "ASYNC903"
    name = "await-under-sync-lock"
    hint = (
        "shrink the critical section so awaits happen outside it, or "
        "switch to asyncio.Lock if the region must span a suspension"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        concurrency: ConcurrencyIndex = program.concurrency
        index = program.call_graph.index
        for qualname in sorted(concurrency.functions):
            info = concurrency.functions[qualname]
            function = index.functions[qualname]
            for region in info.lock_regions:
                if region.kind != "sync" or not region.await_lines:
                    continue
                yield self.program_finding(
                    program,
                    function.module,
                    region.await_lines[0],
                    f"'{qualname}' awaits while holding sync lock "
                    f"'{region.lock}' (acquired line {region.line}); the "
                    "loop thread would block every waiter across the "
                    "suspension",
                )


class ToctouAcrossAwaitRule(ProgramRule):
    """ASYNC904: read-before-await / write-after-await on contended self state."""

    code = "ASYNC904"
    name = "toctou-across-await"
    hint = (
        "re-read the attribute after the await (or capture one immutable "
        "snapshot up front); interleavings that are safe by design go in "
        "[tool.repolint.concurrency] sync-points"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        concurrency: ConcurrencyIndex = program.concurrency
        index = program.call_graph.index
        writers = self._writers_by_state(concurrency)
        for qualname in sorted(concurrency.functions):
            info = concurrency.functions[qualname]
            if not info.is_async or not info.await_lines:
                continue
            if not _in_scope(program, qualname):
                continue
            if qualname in program.config.concurrency_sync_points:
                continue
            function = index.functions[qualname]
            own_class = function.cls
            if own_class is None:
                continue
            for attr, read_line, write_line in self._split_accesses(info, own_class):
                other_writers = writers.get((own_class, attr), set()) - {
                    qualname,
                    f"{own_class}.__init__",
                }
                if not other_writers:
                    continue
                yield self.program_finding(
                    program,
                    function.module,
                    write_line,
                    f"'{qualname}' reads self.{attr} (line {read_line}) "
                    f"before an await and writes it after (line "
                    f"{write_line}); '{sorted(other_writers)[0]}' can "
                    "interleave at the suspension",
                )

    @staticmethod
    def _writers_by_state(
        concurrency: ConcurrencyIndex,
    ) -> dict[tuple[str, str], set[str]]:
        writers: dict[tuple[str, str], set[str]] = {}
        for (cls, attr), accesses in concurrency.shared_state.items():
            for access in accesses:
                if access.write:
                    writers.setdefault((cls, attr), set()).add(access.function)
        return writers

    @staticmethod
    def _split_accesses(
        info, own_class: str
    ) -> Iterator[tuple[str, int, int]]:
        """(attr, read-line, write-line) pairs straddling an await —
        one report per attribute, anchored at the earliest pair."""
        reported: set[str] = set()
        for read in info.accesses:
            if read.write or read.cls != own_class or read.attr in reported:
                continue
            for write in info.accesses:
                if not write.write or write.cls != own_class:
                    continue
                if write.attr != read.attr or write.line <= read.line:
                    continue
                if any(
                    read.line < line <= write.line for line in info.await_lines
                ):
                    reported.add(read.attr)
                    yield (read.attr, read.line, write.line)
                    break


class OrphanSpawnRule(ProgramRule):
    """ASYNC905: task/thread spawned with its handle discarded."""

    code = "ASYNC905"
    name = "orphaned-task-or-thread"
    hint = (
        "keep the handle (self._task = ..., await it on shutdown) or join "
        "the thread; orphaned work swallows exceptions and leaks on exit"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        concurrency: ConcurrencyIndex = program.concurrency
        index = program.call_graph.index
        for qualname in sorted(concurrency.functions):
            info = concurrency.functions[qualname]
            function = index.functions[qualname]
            for spawn in info.spawns:
                if spawn.retained:
                    continue
                what = {
                    "task": "task",
                    "thread": "thread",
                    "executor": "executor job",
                }[spawn.kind]
                target = f" running '{spawn.targets[0]}'" if spawn.targets else ""
                yield self.program_finding(
                    program,
                    function.module,
                    spawn.line,
                    f"'{qualname}' spawns a {what}{target} and discards the "
                    "handle; it can never be awaited or joined",
                )
