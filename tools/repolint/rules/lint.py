"""Meta-lint: the suppression pragmas themselves are checked for staleness.

Suppressions rot: the offending line gets refactored away, the rule gets
smarter, and the ``# repolint: disable=CODE`` comment stays behind —
silently disarming the rule for whatever lands on that line next.  LINT001
closes the loop by flagging every pragma that silenced nothing during the
run that just happened.

The check cannot be a normal per-file AST visitor: whether a pragma *was
used* is only known after the engine has filtered findings through it, and
for program-rule codes only after the whole-program pass.  So the engine
owns the bookkeeping (``_filter_suppressed`` records which pragmas fired;
``analyze_source``/``analyze_paths`` emit the findings), and this class is
the rule's registry surface: it gives LINT001 a catalog entry, a SARIF
rule description, and a ``--select``/suppression handle like any other
code.

Staleness is only claimed when it is provable: a pragma naming a rule
that did not run this pass (``--select`` subset, program code in a
file-only pass) is left alone, ``all`` pragmas are deliberate blankets
and never flagged, and a stale finding can itself be suppressed with
``disable=LINT001``.
"""

from __future__ import annotations

from typing import Iterator

from tools.repolint.engine import Finding, Rule, RuleContext


class UnusedSuppressionRule(Rule):
    """LINT001: suppression pragma that no longer silences any finding."""

    code = "LINT001"
    name = "unused-suppression"
    hint = "delete the stale pragma (or un-fix whatever it was hiding)"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        # Findings are emitted by the engine's suppression filter, which is
        # the only place that knows whether a pragma actually fired; having
        # this class in the registry is what turns the check on.
        return iter(())
