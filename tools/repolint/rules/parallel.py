"""PAR6xx: machine-checked parallel-safety certificate for the rollout path.

PA-FEAT's Algorithm 1 allots N rollout resources per iteration; to turn
them into real workers, everything reachable from the rollout entry points
must either leave shared state alone or be an explicitly sanctioned sync
point (``[tool.repolint.parallel.sync-points]``) that the worker pool will
serialize.  PAR601 walks the call graph from each entry point, tracking
whether execution still operates on shared objects: calling a method on an
object the caller constructed itself drops to non-shared context, where
mutating ``self`` is harmless.  Mutations of parameters, globals, class
attributes or captured closures are hazards in any context.

PAR602 is reachability-independent: module-level state is process-global,
so writing it from *any* function breaks worker isolation (and, today,
reproducibility across call orders).
"""

from __future__ import annotations

from typing import Iterator

from tools.repolint.effects import EffectLevel, EffectReason
from tools.repolint.engine import Finding, ProgramContext, ProgramRule


def _hazard_summary(reasons: tuple[EffectReason, ...]) -> str:
    shown = [f"{reason.detail} (line {reason.line})" for reason in reasons[:3]]
    more = len(reasons) - len(shown)
    text = "; ".join(shown)
    if more > 0:
        text += f"; +{more} more"
    return text


class RolloutSharedStateRule(ProgramRule):
    """PAR601: unsanctioned shared-state mutation reachable from rollouts."""

    code = "PAR601"
    name = "rollout-shared-mutation"
    hint = (
        "make the function operate on caller-owned objects, or add it to "
        "[tool.repolint.parallel.sync-points] with a rationale in "
        "docs/ARCHITECTURE.md"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        config = program.config
        if not config.entry_points:
            return
        effects = program.effects
        index = program.call_graph.index
        edges: dict[str, list[tuple[str, bool]]] = {}
        for edge in program.call_graph.edges:
            edges.setdefault(edge.caller, []).append(
                (edge.callee, edge.receiver_owned)
            )

        from tools.repolint.effects import reachable_from

        flagged: set[str] = set()
        for entry in config.entry_points:
            if entry not in index.functions:
                # Anchor the config error to the entry's module when it
                # exists, else to the package root so it still surfaces.
                module = entry
                while module and program.file_for(module) is None:
                    module = module.rpartition(".")[0]
                yield self.program_finding(
                    program,
                    module or config.package,
                    1,
                    f"rollout entry point '{entry}' does not exist in the "
                    "program; update [tool.repolint.parallel.entry-points]",
                )
                continue
            for qualname, shared in reachable_from(edges, entry):
                if qualname in flagged or qualname in config.sync_points:
                    continue
                effect = effects.get(qualname)
                if effect is None:
                    continue
                hazards = list(effect.shared_hazards)
                if shared and effect.level >= EffectLevel.MUTATES_SELF:
                    hazards.extend(effect.context_hazards)
                if not hazards:
                    continue
                flagged.add(qualname)
                function = index.functions[qualname]
                yield self.program_finding(
                    program,
                    function.module,
                    function.node.lineno,
                    f"'{qualname}' is reachable from rollout entry point "
                    f"'{entry}' and mutates shared state: "
                    f"{_hazard_summary(tuple(hazards))}",
                )


class ModuleStateMutationRule(ProgramRule):
    """PAR602: function mutates module-level state."""

    code = "PAR602"
    name = "module-state-mutation"
    hint = (
        "move the state onto an instance that callers construct and own; "
        "process-global state cannot be sharded across workers"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        for qualname, effect in sorted(program.effects.items()):
            globals_written = [
                reason
                for reason in effect.reasons
                if reason.kind in ("global-write", "class-write")
            ]
            if not globals_written:
                continue
            function = program.call_graph.index.functions[qualname]
            for reason in globals_written:
                yield self.program_finding(
                    program,
                    function.module,
                    reason.line,
                    f"'{qualname}' mutates module-level state: {reason.detail}",
                )
