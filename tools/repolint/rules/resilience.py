"""RES8xx: resilience discipline for packages declared always-bounded.

A serving layer must never block forever on a peer: every socket read,
write-drain and file access needs an explicit bound (``asyncio.wait_for``,
a :class:`repro.io.resilience.Deadline`, or delegation to a lower layer
that owns the bound).  ``[tool.repolint.resilience] packages`` lists the
dotted packages under that contract — for this repo, ``repro.serve``.

RES801 walks every module in a scoped package and flags

* ``await`` of a raw stream/socket operation (``readline``,
  ``readexactly``, ``readuntil``, ``read``, ``drain``, ``sendfile``,
  ``start_tls``) that is not wrapped in a bounding call — a hung client
  would pin the handler task forever;
* direct file I/O (``open``, ``Path.read_text`` & friends) — artifact
  access belongs behind the ``repro.io`` helpers, which checksum and bound
  it.

The check is syntactic by design: ``await asyncio.wait_for(reader.
readline(), t)`` awaits *wait_for*, so the inner call never appears as the
awaited expression and compliant code passes without annotations.  A
genuinely unbounded await that must stay (e.g. an internal queue) takes a
``# repolint: disable=RES801`` with a rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.engine import Finding, ProgramContext, ProgramRule

#: Awaitable stream/socket methods that block until the peer acts.
STREAM_METHODS = frozenset(
    {"readline", "readexactly", "readuntil", "read", "drain", "sendfile", "start_tls"}
)

#: Direct file-I/O entry points (``open`` plus the ``pathlib`` shorthands).
FILE_IO_ATTRS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)


def _in_packages(module: str, packages: tuple[str, ...]) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )


class UnboundedServeIORule(ProgramRule):
    """RES801: unbounded socket/file I/O in a resilience-scoped package."""

    code = "RES801"
    name = "unbounded-serve-io"
    hint = (
        "wrap the await in asyncio.wait_for(..., timeout) or check a "
        "repro.io.resilience.Deadline; route file access through the "
        "repro.io helpers.  If the wait is intentionally unbounded, add "
        "'# repolint: disable=RES801' with a rationale"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        packages = program.config.resilience_packages
        if not packages:
            return
        for module, file in sorted(program.files.items()):
            if not _in_packages(module, packages):
                continue
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Await):
                    yield from self._check_await(program, module, node)
                elif isinstance(node, ast.Call):
                    yield from self._check_file_io(program, module, node)

    def _check_await(
        self, program: ProgramContext, module: str, node: ast.Await
    ) -> Iterator[Finding]:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in STREAM_METHODS:
            return
        yield self.program_finding(
            program,
            module,
            node.lineno,
            f"direct 'await ....{func.attr}(...)' has no timeout; a hung "
            "peer pins this task forever",
        )

    def _check_file_io(
        self, program: ProgramContext, module: str, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            yield self.program_finding(
                program,
                module,
                node.lineno,
                "direct open() in a resilience-scoped package; artifact "
                "access belongs behind the repro.io helpers",
            )
        elif isinstance(func, ast.Attribute) and func.attr in FILE_IO_ATTRS:
            yield self.program_finding(
                program,
                module,
                node.lineno,
                f"direct '.{func.attr}()' file I/O in a resilience-scoped "
                "package; artifact access belongs behind the repro.io "
                "helpers",
            )
