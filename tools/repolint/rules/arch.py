"""ARCH5xx: import-layer contract over the whole package.

The contract lives in ``[tool.repolint.layers]``: each top-level subpackage
gets a rank, a module may import only same-or-lower ranks, ``free`` layers
(cross-cutting utilities) are exempt in both directions, and the package
root sits above everything.  Violations are reported at the offending
import statement so the fix is one click away.
"""

from __future__ import annotations

from typing import Iterator

from tools.repolint.engine import Finding, ProgramContext, ProgramRule
from tools.repolint.graphs.imports import find_cycles


class LayerContractRule(ProgramRule):
    """ARCH501: upward import — a module imports a higher-ranked layer."""

    code = "ARCH501"
    name = "layer-upward-import"
    hint = (
        "move the shared code down a layer (or into a free layer such as "
        "analysis/io) instead of importing upward"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        graph = program.import_graph
        if not program.config.layer_ranks:
            return
        for edge in graph.edges:
            source_rank = graph.ranks.get(edge.source)
            target_rank = graph.ranks.get(edge.target)
            if source_rank is None or target_rank is None:
                continue  # free or undeclared layers are ARCH503's business
            if target_rank > source_rank:
                yield self.program_finding(
                    program,
                    edge.source,
                    edge.line,
                    f"layer '{graph.layers[edge.source]}' (rank {source_rank}) "
                    f"imports '{edge.target}' from layer "
                    f"'{graph.layers[edge.target]}' (rank {target_rank})",
                )


class ImportCycleRule(ProgramRule):
    """ARCH502: import-time cycle among package modules."""

    code = "ARCH502"
    name = "import-cycle"
    hint = (
        "break the cycle: extract the shared piece into a lower module or "
        "defer one import into the function that needs it"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        graph = program.import_graph
        for component in find_cycles(graph):
            members = set(component)
            cycle = " -> ".join(component)
            for module in component:
                line = next(
                    (
                        edge.line
                        for edge in graph.edges_from(module)
                        if edge.top_level and edge.target in members
                    ),
                    1,
                )
                yield self.program_finding(
                    program,
                    module,
                    line,
                    f"module participates in an import cycle: {cycle}",
                )


class UndeclaredLayerRule(ProgramRule):
    """ARCH503: module belongs to no declared (or free) layer."""

    code = "ARCH503"
    name = "undeclared-layer"
    hint = (
        "add the subpackage to [tool.repolint.layers.ranks] (or to 'free') "
        "in pyproject.toml so the contract covers it"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        graph = program.import_graph
        if not program.config.layer_ranks:
            return
        flagged: set[str] = set()
        for module in graph.modules:
            layer = graph.layers[module]
            if layer == "<root>" or layer in program.config.free_layers:
                continue
            if layer in flagged or layer in program.config.layer_ranks:
                continue
            flagged.add(layer)
            yield self.program_finding(
                program,
                module,
                1,
                f"layer '{layer}' is not declared in the layer contract",
            )
