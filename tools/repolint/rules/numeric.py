"""Numerical-safety contract rules (the NUM3xx family).

``np.exp`` overflows past ~709, ``np.log`` of a zero probability is ``-inf``
and a division by an unguarded ``.sum()`` turns an all-zero weight vector
into NaNs — all three have bitten loss/softmax code in RL systems, usually
only after hours of training.  The project keeps one sanctioned module of
clamped/stabilised helpers (:mod:`repro.analysis.numerics`); everything
else must either go through those helpers or visibly clamp its input.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.engine import Finding, Rule, RuleContext

#: The one module allowed to call the raw primitives (it implements the guards).
SANCTIONED_NUMERIC_MODULES = {"repro.analysis.numerics"}

UNSAFE_TRANSCENDENTALS = {
    "numpy.exp": "overflows to inf for inputs above ~709",
    "numpy.log": "is -inf/nan at or below zero",
    "numpy.log2": "is -inf/nan at or below zero",
    "numpy.log10": "is -inf/nan at or below zero",
}

#: Calls inside an argument that count as a visible clamp of the input.
CLAMP_CALLS = {"numpy.clip", "numpy.minimum", "numpy.maximum"}


def _contains_clamp(node: ast.AST, ctx: RuleContext) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            origin = ctx.resolver.resolve(child.func)
            if origin in CLAMP_CALLS:
                return True
    return False


def _is_sum_call(node: ast.AST, ctx: RuleContext) -> bool:
    """True for ``<expr>.sum(...)`` and ``np.sum(...)`` denominators."""
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Attribute) and node.func.attr == "sum":
        return True  # covers both ``x.sum()`` and ``np.sum`` spelled as attribute
    origin = ctx.resolver.resolve(node.func)
    return origin == "numpy.sum"


def _guarded_by_ancestor(ancestors: tuple[ast.AST, ...], ctx: RuleContext) -> bool:
    """True when an enclosing If/IfExp test inspects a ``.sum()`` value.

    The idiom ``x / x.sum() if x.sum() > 0 else fallback`` (and its
    statement-level twin) is an explicit guard: the author proved the
    denominator positive on the taken branch.
    """
    for node in reversed(ancestors):
        test = None
        if isinstance(node, (ast.IfExp, ast.If, ast.While)):
            test = node.test
        if test is not None:
            for child in ast.walk(test):
                if _is_sum_call(child, ctx) or isinstance(child, ast.Compare):
                    return True
    return False


class UnguardedExpLogRule(Rule):
    """NUM301: raw ``np.exp``/``np.log`` on an unclamped argument."""

    code = "NUM301"
    name = "unguarded-exp-log"
    hint = (
        "use repro.analysis.numerics (safe_exp, safe_log, stable_softmax, "
        "stable_sigmoid, safe_xlogy) or clamp the argument with np.clip"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if ctx.module in SANCTIONED_NUMERIC_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolver.resolve(node.func)
            if origin not in UNSAFE_TRANSCENDENTALS:
                continue
            if any(_contains_clamp(arg, ctx) for arg in node.args):
                continue
            yield self.finding(
                ctx,
                node,
                f"raw '{origin}' on an unclamped input "
                f"({UNSAFE_TRANSCENDENTALS[origin]})",
            )


class UnguardedSumDivisionRule(Rule):
    """NUM302: normalisation by a ``.sum()`` that could be zero."""

    code = "NUM302"
    name = "unguarded-sum-division"
    hint = (
        "use repro.analysis.numerics.normalized (uniform fallback on a "
        "non-positive total) or guard the division with an explicit sum check"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if ctx.module in SANCTIONED_NUMERIC_MODULES:
            return
        for node, ancestors in ctx.walk_scoped():
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)):
                continue
            if not _is_sum_call(node.right, ctx):
                continue
            if _guarded_by_ancestor(ancestors, ctx):
                continue
            yield self.finding(
                ctx,
                node,
                "division by an unguarded '.sum()' — an all-zero input "
                "produces NaNs that propagate silently",
            )
