"""HOT701: allocation discipline inside per-step hot-path functions.

Functions tagged in ``[tool.repolint.hotpath]`` run once per environment
step (or per E-Tree descent level), so allocations there multiply by the
episode count x step count x task count.  Two patterns are flagged:

* numpy array constructors (``np.zeros``, ``np.concatenate``, ...)
  anywhere in the function — per-step fresh arrays belong in reused,
  preallocated buffers unless the array must escape (suppress with a
  rationale comment in that case);
* container growth inside a loop — ``list.append`` / ``dict.update`` /
  comprehensions executed per iteration churn the allocator in the
  innermost loops of the rollout.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.engine import Finding, ProgramContext, ProgramRule
from tools.repolint.graphs.calls import _dotted_name, _iter_own_nodes

#: numpy callables that allocate a fresh array on every call.
NUMPY_ALLOCATORS = {
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "numpy.full",
    "numpy.array",
    "numpy.arange",
    "numpy.linspace",
    "numpy.eye",
    "numpy.identity",
    "numpy.zeros_like",
    "numpy.ones_like",
    "numpy.empty_like",
    "numpy.full_like",
    "numpy.concatenate",
    "numpy.stack",
    "numpy.vstack",
    "numpy.hstack",
    "numpy.tile",
    "numpy.repeat",
    "numpy.copy",
}

_GROWTH_METHODS = {"append", "extend", "insert", "update", "add", "appendleft"}

_LOOP_NODES = (ast.For, ast.While, ast.AsyncFor)

_COMPREHENSIONS = (ast.ListComp, ast.DictComp, ast.SetComp)


class HotPathAllocationRule(ProgramRule):
    """HOT701: per-step allocation in a hot-path function."""

    code = "HOT701"
    name = "hotpath-allocation"
    hint = (
        "preallocate outside the loop and write in place; if the fresh "
        "array must escape (e.g. into the replay buffer), suppress with a "
        "rationale comment"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        config = program.config
        if not config.hot_functions:
            return
        index = program.call_graph.index
        for qualname in sorted(config.hot_functions):
            function = index.functions.get(qualname)
            if function is None:
                continue
            resolver = index.resolvers.get(function.module)
            for node, in_loop in _walk_with_loops(function.node):
                if isinstance(node, ast.Call):
                    dotted = _dotted_name(node.func)
                    origin = (
                        resolver.resolve(node.func)
                        if resolver is not None and dotted is not None
                        else None
                    )
                    if origin in NUMPY_ALLOCATORS:
                        yield self.program_finding(
                            program,
                            function.module,
                            node.lineno,
                            f"hot function '{qualname}' allocates a fresh "
                            f"array via {dotted}() on every call",
                        )
                    elif (
                        in_loop
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _GROWTH_METHODS
                    ):
                        yield self.program_finding(
                            program,
                            function.module,
                            node.lineno,
                            f"hot function '{qualname}' grows "
                            f"'{ast.unparse(node.func.value)}' via "
                            f".{node.func.attr}() inside a loop",
                        )
                elif in_loop and isinstance(node, _COMPREHENSIONS):
                    kind = type(node).__name__
                    yield self.program_finding(
                        program,
                        function.module,
                        node.lineno,
                        f"hot function '{qualname}' builds a {kind} on every "
                        "loop iteration",
                    )


def _walk_with_loops(
    root: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.AST, bool]]:
    """(node, inside-a-loop) pairs for a function body, nested defs excluded.

    The loop condition is checked per *statement position*: a call in a
    loop's body is in-loop, the loop's iterable expression itself is not
    (it evaluates once).
    """

    def visit(node: ast.AST, in_loop: bool) -> Iterator[tuple[ast.AST, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            child_in_loop = in_loop
            if isinstance(node, _LOOP_NODES):
                # Only the loop *body* repeats; the iterable and ``else``
                # clause evaluate once.
                child_in_loop = in_loop or child in node.body
            yield child, child_in_loop
            yield from visit(child, child_in_loop)

    yield from visit(root, False)


# Re-exported for the report subcommand: the tagged hot set with findings
# resolved is exactly the "allocation-free hot path" part of the artifact.
def hot_functions_payload(program: ProgramContext) -> dict[str, object]:
    index = program.call_graph.index
    return {
        "tagged": sorted(program.config.hot_functions),
        "missing": sorted(
            qualname
            for qualname in program.config.hot_functions
            if qualname not in index.functions
        ),
    }
