"""Whole-program analysis configuration, loaded from ``pyproject.toml``.

The layer contract, parallel-safety certificate and hot-path tags all live
under ``[tool.repolint]`` so they version with the code they constrain.
Python 3.11+ parses the file with :mod:`tomllib`; on 3.10 (still in the CI
matrix) a small TOML-subset parser handles the constructs this repo's
pyproject actually uses — tables, strings, integers, booleans and (possibly
multiline) arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 only
    tomllib = None  # type: ignore[assignment]


@dataclass(frozen=True)
class RepolintConfig:
    """Parsed ``[tool.repolint]`` contract."""

    package: str = "repro"
    src_root: str = "src"
    layer_ranks: Mapping[str, int] = field(default_factory=dict)
    free_layers: frozenset[str] = frozenset()
    entry_points: tuple[str, ...] = ()
    sync_points: frozenset[str] = frozenset()
    extra_edges: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    hot_functions: frozenset[str] = frozenset()
    resilience_packages: tuple[str, ...] = ()
    #: Packages whose classes/coroutines get the attr-level concurrency
    #: analyses (ASYNC902/904); empty means the whole package.
    concurrency_packages: tuple[str, ...] = ()
    #: Functions sanctioned to block the event loop — the whole call
    #: subtree under each entry is exempt from ASYNC901 (startup paths).
    allow_blocking: frozenset[str] = frozenset()
    #: Concurrency sync points: functions (ASYNC904) or ``Class.attr``
    #: state keys (ASYNC902) whose interleavings are documented as safe.
    concurrency_sync_points: frozenset[str] = frozenset()
    #: Packages in scope for the EXC10xx exception-flow rules; empty means
    #: the whole program (convenient for hermetic tests).
    exception_packages: tuple[str, ...] = ()
    #: Error boundaries: function qualname -> exception types sanctioned to
    #: escape it.  An empty list means *nothing* may escape (the function
    #: must convert every failure, e.g. a serve handler mapping errors to
    #: structured HTTP responses).
    exception_boundaries: Mapping[str, tuple[str, ...]] = field(
        default_factory=dict
    )
    #: Call spellings that count as observing a failure inside an except
    #: block (logging/metrics), matched by dotted prefix or final segment.
    exception_log_functions: tuple[str, ...] = ()
    #: Root of the sanctioned error taxonomy (EXC1004 hints, certificate
    #: adoption stats), e.g. ``repro.errors.ReproError``.
    exception_taxonomy_root: str = ""
    #: Modules where bare ``print(...)`` is sanctioned (OBS1101): the CLI
    #: boundary, plus async-signal-safe paths that must not touch logging.
    obs_allow_print: frozenset[str] = frozenset()
    #: Packages whose direct monotonic-clock reads (``time.monotonic`` and
    #: family) must instead go through the obs clock boundary (OBS1102).
    clock_packages: tuple[str, ...] = ()
    #: The one module sanctioned to read the process clock directly.
    clock_boundary: str = ""

    @property
    def top_rank(self) -> int:
        """Rank assigned to the package root (it may import everything)."""
        return max(self.layer_ranks.values(), default=0) + 1

    def rank_for_layer(self, layer: str) -> int | None:
        """Rank of a layer name, or None when undeclared/free.

        The package root (``repro`` itself plus dunder modules like
        ``repro.__main__``) is a facade that re-exports the public API, so
        it is treated like a free layer: it may import everything and
        everything may import it.
        """
        if layer in self.free_layers or layer in ("<root>", "__main__", "__init__"):
            return None
        return self.layer_ranks.get(layer)

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "RepolintConfig":
        """Build from the ``[tool.repolint]`` table of a parsed pyproject."""
        layers = data.get("layers", {})
        parallel = data.get("parallel", {})
        hotpath = data.get("hotpath", {})
        resilience = data.get("resilience", {})
        concurrency = data.get("concurrency", {})
        exceptions = data.get("exceptions", {})
        obs = data.get("obs", {})
        return cls(
            package=str(data.get("package", "repro")),
            src_root=str(data.get("src-root", "src")),
            layer_ranks={
                str(name): int(rank)
                for name, rank in dict(layers.get("ranks", {})).items()
            },
            free_layers=frozenset(str(n) for n in layers.get("free", [])),
            entry_points=tuple(str(n) for n in parallel.get("entry-points", [])),
            sync_points=frozenset(str(n) for n in parallel.get("sync-points", [])),
            extra_edges={
                str(src): tuple(str(dst) for dst in dsts)
                for src, dsts in dict(parallel.get("extra-edges", {})).items()
            },
            hot_functions=frozenset(str(n) for n in hotpath.get("functions", [])),
            resilience_packages=tuple(
                str(n) for n in resilience.get("packages", [])
            ),
            concurrency_packages=tuple(
                str(n) for n in concurrency.get("packages", [])
            ),
            allow_blocking=frozenset(
                str(n) for n in concurrency.get("allow-blocking", [])
            ),
            concurrency_sync_points=frozenset(
                str(n) for n in concurrency.get("sync-points", [])
            ),
            exception_packages=tuple(
                str(n) for n in exceptions.get("packages", [])
            ),
            exception_boundaries={
                str(boundary): tuple(str(t) for t in types)
                for boundary, types in dict(
                    exceptions.get("boundaries", {})
                ).items()
            },
            exception_log_functions=tuple(
                str(n) for n in exceptions.get("log-functions", [])
            ),
            exception_taxonomy_root=str(exceptions.get("taxonomy-root", "")),
            obs_allow_print=frozenset(
                str(n) for n in obs.get("allow-print", [])
            ),
            clock_packages=tuple(str(n) for n in obs.get("clock-packages", [])),
            clock_boundary=str(obs.get("clock-boundary", "")),
        )


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Path | str | None = None) -> RepolintConfig:
    """Config for the project owning ``start`` (default: cwd).

    Missing pyproject or a pyproject without ``[tool.repolint]`` yields an
    empty config — the whole-program rules then have nothing to check, so
    per-file linting keeps working in any tree.
    """
    pyproject = find_pyproject(Path(start) if start is not None else Path.cwd())
    if pyproject is None:
        return RepolintConfig()
    data = parse_toml(pyproject.read_text(encoding="utf-8"))
    tool = data.get("tool", {})
    section = tool.get("repolint", {}) if isinstance(tool, dict) else {}
    if not isinstance(section, dict):
        return RepolintConfig()
    return RepolintConfig.from_mapping(section)


def parse_toml(text: str) -> dict[str, Any]:
    """Parse TOML, via tomllib when available, else the subset parser."""
    if tomllib is not None:
        return tomllib.loads(text)
    return _parse_toml_subset(text)


# --- TOML-subset fallback (Python 3.10) ------------------------------------


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment that is not inside a double-quoted string."""
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _parse_scalar(token: str) -> Any:
    token = token.strip()
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    if token in ("true", "false"):
        return token == "true"
    try:
        return int(token)
    except ValueError:
        try:
            return float(token)
        except ValueError:
            return token


def _split_array_items(body: str) -> list[str]:
    """Split an array body on commas that sit outside strings/brackets."""
    items: list[str] = []
    depth = 0
    in_string = False
    current: list[str] = []
    for char in body:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif not in_string and char == "[":
            depth += 1
            current.append(char)
        elif not in_string and char == "]":
            depth -= 1
            current.append(char)
        elif not in_string and depth == 0 and char == ",":
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return [item.strip() for item in items if item.strip()]


def _parse_value(token: str) -> Any:
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        return [_parse_value(item) for item in _split_array_items(token[1:-1])]
    return _parse_scalar(token)


def _parse_key(token: str) -> str:
    token = token.strip()
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    return token


def _table_for(root: dict[str, Any], dotted: str) -> dict[str, Any]:
    table = root
    for part in dotted.split("."):
        table = table.setdefault(_parse_key(part), {})
    return table


def _parse_toml_subset(text: str) -> dict[str, Any]:
    """Tables + ``key = value`` pairs with scalar/array values; no inline
    tables, no arrays-of-tables, no escape sequences inside strings."""
    root: dict[str, Any] = {}
    table = root
    pending = ""
    for raw_line in text.splitlines():
        line = _strip_comment(raw_line).strip()
        if pending:
            line = pending + " " + line
            pending = ""
        if not line:
            continue
        if line.startswith("[") and line.endswith("]") and "=" not in line.split("]")[0]:
            table = _table_for(root, line[1:-1].strip())
            continue
        if "=" not in line:
            continue
        key_part, value_part = line.split("=", 1)
        # Multiline arrays: keep accumulating until brackets balance.
        if value_part.count("[") > value_part.count("]"):
            pending = line
            continue
        table[_parse_key(key_part)] = _parse_value(value_part)
    return root
