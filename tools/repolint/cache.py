"""Parse-once source cache and SHA-keyed per-file result cache.

Two independent layers, both deliberately simple:

* :class:`SourceCache` — in-run memoization of ``(source, AST, lines,
  sha)`` per path.  One repolint invocation touches most files twice —
  once for the per-file rules, once when :class:`ProgramContext` parses
  the whole package for the program passes — and every rule shares the
  parse.  Nothing persists; the cache lives for one ``analyze_paths``
  call.
* :class:`ResultCache` — on-disk (``.repolint-cache.json`` at the repo
  root) map of ``path → (content sha, per-file findings)``.  A file whose
  SHA is unchanged skips per-file analysis entirely on the next run —
  the payoff for ``--changed`` loops such as the pre-commit hook.  Only
  *per-file* findings are cached: program-pass findings depend on every
  other file in the package, so they are always recomputed.  Cached
  findings are stored post-suppression, so replaying them needs no
  source access.

The resolved :class:`~tools.repolint.config.RepolintConfig` is hashed
into the cache (:func:`config_fingerprint`, stored next to the schema
version): findings depend on the configured contracts, so editing
``pyproject.toml`` — a new hot-path function, a different boundary
sanction — must invalidate every entry even though no ``.py`` content
changed.  A fingerprint mismatch is treated exactly like a schema
mismatch: the cache loads empty and the next save rewrites it.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from tools.repolint.config import RepolintConfig
from tools.repolint.engine import Finding

CACHE_FILE_NAME = ".repolint-cache.json"

#: Bump when the cached payload shape (or anything that invalidates old
#: entries wholesale, like a rule-set change) needs a clean slate.
#: v2: config fingerprint added to the payload; cached per-file findings
#: may now include LINT001 unused-suppression entries.
CACHE_SCHEMA_VERSION = 2


def content_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def config_fingerprint(config: RepolintConfig | None) -> str:
    """Stable digest of a resolved config, independent of TOML ordering.

    Mappings and sets are canonicalized (sorted) before hashing so that
    reordering entries in ``pyproject.toml`` does not invalidate the
    cache, while any *semantic* change — a new rule scope, a different
    sanction list — does.  ``None`` (no config resolved) hashes to a
    distinct constant so configless runs never share entries with
    configured ones.
    """
    if config is None:
        return "no-config"

    def canonical(value: object) -> object:
        if isinstance(value, dict):
            return sorted((str(k), canonical(v)) for k, v in value.items())
        if isinstance(value, (frozenset, set)):
            return sorted(repr(item) for item in value)
        if isinstance(value, (list, tuple)):
            return [canonical(item) for item in value]
        return value

    parts = [
        f"{name}={canonical(value)!r}"
        for name, value in sorted(vars(config).items())
    ]
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


@dataclass
class ParsedFile:
    """One file, parsed once and shared by every analysis layer."""

    path: Path
    source: str
    tree: ast.Module
    source_lines: list[str]
    sha: str


@dataclass
class SourceCache:
    """Per-run ``path → ParsedFile`` memo (no persistence, no eviction)."""

    _files: dict[Path, ParsedFile] = field(default_factory=dict)
    parses: int = 0  # distinct files actually parsed (for the benchmark)
    hits: int = 0

    def parse(self, path: Path) -> ParsedFile:
        """Parsed form of ``path``; OSError/SyntaxError propagate to the
        caller, which decides between PARSE001 and skipping."""
        resolved = path.resolve()
        cached = self._files.get(resolved)
        if cached is not None:
            self.hits += 1
            return cached
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source)
        parsed = ParsedFile(
            path=path,
            source=source,
            tree=tree,
            source_lines=source.splitlines(),
            sha=content_sha(source),
        )
        self._files[resolved] = parsed
        self.parses += 1
        return parsed


def _finding_to_payload(finding: Finding) -> dict[str, object]:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "code": finding.code,
        "message": finding.message,
        "hint": finding.hint,
    }


def _finding_from_payload(payload: dict[str, object]) -> Finding:
    return Finding(
        path=str(payload["path"]),
        line=int(payload["line"]),  # type: ignore[arg-type]
        col=int(payload["col"]),  # type: ignore[arg-type]
        code=str(payload["code"]),
        message=str(payload["message"]),
        hint=str(payload.get("hint", "")),
    )


class ResultCache:
    """SHA-keyed per-file findings, persisted as JSON at the repo root.

    Corrupt, schema-mismatched or config-mismatched cache files are
    treated as empty — the cache can only ever cost a recompute, never
    wrong results.  ``fingerprint`` is the :func:`config_fingerprint` of
    the run's resolved config; entries written under a different
    fingerprint are never replayed.
    """

    def __init__(self, cache_path: Path, fingerprint: str = "") -> None:
        self.cache_path = cache_path
        self.fingerprint = fingerprint
        self._entries: dict[str, dict[str, object]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        try:
            raw = json.loads(cache_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            isinstance(raw, dict)
            and raw.get("version") == CACHE_SCHEMA_VERSION
            and raw.get("config", "") == fingerprint
            and isinstance(raw.get("files"), dict)
        ):
            self._entries = raw["files"]

    @classmethod
    def for_repo(
        cls, anchor: Path, config: RepolintConfig | None = None
    ) -> "ResultCache":
        """Cache co-located with the pyproject that owns ``anchor``.

        Resolves the project config (when not supplied) so the cache is
        keyed to the same contracts ``analyze_paths`` will lint against.
        """
        from tools.repolint.config import find_pyproject, load_config

        if config is None:
            config = load_config(anchor)
        pyproject = find_pyproject(anchor)
        root = pyproject.parent if pyproject is not None else Path.cwd()
        return cls(root / CACHE_FILE_NAME, fingerprint=config_fingerprint(config))

    def _key(self, path: Path) -> str:
        return str(path.resolve())

    def lookup(self, path: Path, sha: str) -> list[Finding] | None:
        """Cached per-file findings when the content hash matches."""
        entry = self._entries.get(self._key(path))
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            self.misses += 1
            return None
        payloads = entry.get("findings")
        if not isinstance(payloads, list):
            self.misses += 1
            return None
        try:
            findings = [_finding_from_payload(item) for item in payloads]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def store(self, path: Path, sha: str, findings: list[Finding]) -> None:
        self._entries[self._key(path)] = {
            "sha": sha,
            "findings": [_finding_to_payload(finding) for finding in findings],
        }
        self._dirty = True

    def save(self) -> None:
        """Write back when anything changed; I/O errors are non-fatal."""
        if not self._dirty:
            return
        payload = {
            "version": CACHE_SCHEMA_VERSION,
            "config": self.fingerprint,
            "files": self._entries,
        }
        try:
            self.cache_path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass
        self._dirty = False
