"""repro-lint: determinism, contract and whole-program static analysis.

AST-based, project-specific rules over the PA-FEAT reproduction.  Per-file
rules check one parsed module at a time; whole-program rules (ARCH/PAR/HOT)
parse the entire ``src/repro`` package, build import and call graphs, infer
per-function effects and check them against the contracts declared under
``[tool.repolint]`` in ``pyproject.toml``:

=======  ==========================  ==================================================
Code     Name                        Catches
=======  ==========================  ==================================================
RNG101   global-numpy-random         legacy ``np.random.*`` global-state draws
RNG102   stdlib-random               stdlib ``random`` module global-state draws
RNG103   inline-seed-sequence        per-call ``SeedSequence`` outside constructors
RNG104   wall-clock                  ``time.time()``/``datetime.now()`` in core/rl/nn
CKPT201  checkpoint-completeness     run-state missing from capture/restore pairs
NUM301   unguarded-exp-log           raw ``np.exp``/``np.log`` on unclamped inputs
NUM302   unguarded-sum-division      normalisation by a possibly-zero ``.sum()``
API401   mutable-default-arg         shared mutable default arguments
API402   all-drift                   ``__all__`` out of sync with bound names
ARCH501  layer-upward-import         imports against the declared layer order
ARCH502  import-cycle                import-time cycles between package modules
ARCH503  undeclared-layer            subpackages missing from the layer contract
PAR601   rollout-shared-mutation     unsanctioned shared-state writes reachable
                                     from the rollout entry points
PAR602   module-state-mutation       functions mutating module-level state
HOT701   hotpath-allocation          per-step numpy allocations / loop growth in
                                     functions tagged hot
RES801   unbounded-serve-io          unbounded socket/file I/O in resilience-
                                     scoped packages
ASYNC901 blocking-call-on-event-loop blocking calls reachable from event-loop
                                     coroutines
ASYNC902 unlocked-cross-context-state cross-context attribute access with an
                                     empty lockset
ASYNC903 await-under-sync-lock       await inside a synchronous-lock section
ASYNC904 toctou-across-await         check-then-act races across awaits
ASYNC905 orphaned-task-or-thread     spawned task/thread handles discarded
EXC1001  swallowed-exception         broad except with no re-raise/log/metric
EXC1002  boundary-escape             unsanctioned types escaping a declared
                                     error boundary
EXC1003  dead-handler                except clauses the guarded body cannot raise
EXC1004  untyped-raise               raise of bare Exception/RuntimeError outside
                                     the typed taxonomy
EXC1005  context-loss                new exception raised in an except block
                                     without ``from``
LINT001  unused-suppression          ``disable=`` pragmas that no longer
                                     silence any finding
=======  ==========================  ==================================================

Run ``python -m tools.repolint src/`` (or ``--changed`` for a fast path over
the git-modified set), fan per-file analysis over a process pool with
``--jobs N``, pick an output with ``--format={text,json,sarif}``, and dump
the layer graph + effect table with ``python -m tools.repolint report``.
Suppress a single line with ``# repolint: disable=CODE`` and add rules in
``tools/repolint/rules/``.
"""

from tools.repolint.config import RepolintConfig, load_config
from tools.repolint.engine import (
    Finding,
    ProgramContext,
    ProgramFile,
    ProgramRule,
    Rule,
    RuleContext,
    analyze_file,
    analyze_paths,
    analyze_source,
    build_program,
    iter_python_files,
    module_for_path,
    suppressed_codes_by_line,
)
from tools.repolint.rules import RULE_CLASSES, all_rules, rule_catalog

__all__ = [
    "Finding",
    "ProgramContext",
    "ProgramFile",
    "ProgramRule",
    "RULE_CLASSES",
    "RepolintConfig",
    "Rule",
    "RuleContext",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "build_program",
    "iter_python_files",
    "load_config",
    "module_for_path",
    "rule_catalog",
    "suppressed_codes_by_line",
]
