"""repro-lint: determinism- and contract-checking static analysis.

AST-based, project-specific rules over the PA-FEAT reproduction:

=======  ==========================  ==================================================
Code     Name                        Catches
=======  ==========================  ==================================================
RNG101   global-numpy-random         legacy ``np.random.*`` global-state draws
RNG102   stdlib-random               stdlib ``random`` module global-state draws
RNG103   inline-seed-sequence        per-call ``SeedSequence`` outside constructors
RNG104   wall-clock                  ``time.time()``/``datetime.now()`` in core/rl/nn
CKPT201  checkpoint-completeness     run-state missing from capture/restore pairs
NUM301   unguarded-exp-log           raw ``np.exp``/``np.log`` on unclamped inputs
NUM302   unguarded-sum-division      normalisation by a possibly-zero ``.sum()``
API401   mutable-default-arg         shared mutable default arguments
API402   all-drift                   ``__all__`` out of sync with bound names
=======  ==========================  ==================================================

Run ``python -m tools.repolint src/`` (or ``--changed`` for a fast path over
the git-modified set).  Suppress a single line with
``# repolint: disable=CODE`` and add rules in ``tools/repolint/rules/``.
"""

from tools.repolint.engine import (
    Finding,
    Rule,
    RuleContext,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
    module_for_path,
    suppressed_codes_by_line,
)
from tools.repolint.rules import RULE_CLASSES, all_rules, rule_catalog

__all__ = [
    "Finding",
    "RULE_CLASSES",
    "Rule",
    "RuleContext",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "module_for_path",
    "rule_catalog",
    "suppressed_codes_by_line",
]
