"""``python -m tools.repolint report``: the whole-program analysis artifact.

One JSON document bundling everything the ARCH/PAR/HOT/ASYNC passes
computed: the import-layer graph with ranks, detected cycles, the call
graph, an effect classification for every function, the parallel-safety
certificate — per rollout entry point, every reachable function with its
effect level and whether it executes in shared context — and the
concurrency certificate: per execution context (event loop / thread /
executor), every function running there with its blocking operations,
lock regions, spawns and the cross-context shared-state table, plus the
surviving ASYNC9xx findings and a ``clean`` verdict.  CI archives this
artifact so architecture drift is diffable across commits.
"""

from __future__ import annotations

from typing import Any

from tools.repolint.effects import reachable_from
from tools.repolint.engine import Finding, ProgramContext
from tools.repolint.graphs.imports import find_cycles


def _finding_payload(finding: Finding) -> dict[str, Any]:
    return {
        "path": finding.path,
        "line": finding.line,
        "code": finding.code,
        "message": finding.message,
    }


def _concurrency_certificate(program: ProgramContext) -> dict[str, Any]:
    """The ASYNC9xx verdict as a diffable artifact.

    Covers every function the context analysis placed in an execution
    context (restricted to ``[tool.repolint.concurrency] packages`` when
    configured): which contexts it runs in, its loop-context provenance,
    the blocking operations / lock regions / spawns observed in its body,
    the cross-context shared-state table with lockset intersections, the
    configured allowlists, and the findings that survive them.  ``clean``
    is True exactly when no ASYNC9xx finding survives — the condition CI
    gates on.
    """
    from tools.repolint.rules.concurrency import (
        AwaitUnderLockRule,
        BlockingInLoopRule,
        OrphanSpawnRule,
        ToctouAcrossAwaitRule,
        UnlockedSharedStateRule,
    )

    config = program.config
    concurrency = program.concurrency
    packages = tuple(sorted(config.concurrency_packages))

    def in_scope(qualname: str) -> bool:
        if not packages:
            return True
        return any(
            qualname == package or qualname.startswith(package + ".")
            for package in packages
        )

    functions: dict[str, Any] = {}
    for qualname in sorted(concurrency.functions):
        if not in_scope(qualname):
            continue
        info = concurrency.functions[qualname]
        contexts = concurrency.context_label(qualname)
        if not contexts and not info.is_async:
            continue  # plain main-thread code cannot race with itself
        functions[qualname] = {
            "async": info.is_async,
            "contexts": contexts,
            "loop_root": concurrency.loop_root.get(qualname),
            "allow_blocking": qualname in config.allow_blocking,
            "sync_point": qualname in config.concurrency_sync_points,
            "awaits": len(info.await_lines),
            "blocking": [
                {"detail": op.detail, "line": op.line} for op in info.blocking
            ],
            "lock_regions": [
                {
                    "lock": region.lock,
                    "kind": region.kind,
                    "line": region.line,
                    "awaits_inside": list(region.await_lines),
                }
                for region in info.lock_regions
            ],
            "spawns": [
                {
                    "kind": spawn.kind,
                    "targets": list(spawn.targets),
                    "line": spawn.line,
                    "retained": spawn.retained,
                }
                for spawn in info.spawns
            ],
        }

    shared_state = []
    for (cls, attr), accesses in sorted(concurrency.shared_state.items()):
        if not in_scope(cls):
            continue
        contexts_seen: set[str] = set()
        for access in accesses:
            contexts_seen.update(concurrency.contexts.get(access.function, set()))
        common = set(accesses[0].locks)
        for access in accesses[1:]:
            common.intersection_update(access.locks)
        shared_state.append(
            {
                "state": f"{cls}.{attr}",
                "contexts": sorted(contexts_seen),
                "writes": sum(1 for access in accesses if access.write),
                "reads": sum(1 for access in accesses if not access.write),
                "common_locks": sorted(common),
                "sync_point": f"{cls}.{attr}"
                in config.concurrency_sync_points,
                "accessors": sorted(
                    {access.function for access in accesses}
                ),
            }
        )

    findings = []
    for rule_cls in (
        BlockingInLoopRule,
        UnlockedSharedStateRule,
        AwaitUnderLockRule,
        ToctouAcrossAwaitRule,
        OrphanSpawnRule,
    ):
        findings.extend(
            _finding_payload(finding)
            for finding in rule_cls().check_program(program)
        )

    return {
        "packages": list(packages),
        "allow_blocking": sorted(config.allow_blocking),
        "sync_points": sorted(config.concurrency_sync_points),
        "functions": functions,
        "shared_state": shared_state,
        "findings": findings,
        "clean": not findings,
    }


def _exception_certificate(program: ProgramContext) -> dict[str, Any]:
    """The EXC10xx verdict as a diffable artifact.

    Per declared boundary: whether it exists, its sanctioned escapes, and
    the full inferred escape set with each type's sanction status (so a
    reviewer sees what a boundary *actually* leaks, not just violations).
    Plus every broad handler in the scoped packages with its disposition
    (re-raises / replaces / observes / swallows), taxonomy-adoption counts
    over all raise sites, and the findings that survive the configured
    sanctions.  ``clean`` is True exactly when no EXC10xx finding
    survives — the condition CI gates on.
    """
    from tools.repolint.graphs.exceptions import UNKNOWN
    from tools.repolint.rules.exceptions import (
        BoundaryEscapeRule,
        ContextLossRule,
        DeadHandlerRule,
        SwallowedExceptionRule,
        UntypedRaiseRule,
    )

    config = program.config
    exceptions = program.exceptions
    resolver = exceptions.resolver
    packages = tuple(sorted(config.exception_packages))

    def in_scope(module: str) -> bool:
        if not packages:
            return True
        return any(
            module == package or module.startswith(package + ".")
            for package in packages
        )

    boundaries: dict[str, Any] = {}
    for boundary, sanctioned in sorted(config.exception_boundaries.items()):
        declared = boundary in program.index.functions
        escapes = []
        for exc_type in sorted(exceptions.escape_set(boundary)):
            is_failure = exc_type != UNKNOWN and resolver.is_exception_family(
                exc_type
            )
            escapes.append(
                {
                    "type": exc_type,
                    "sanctioned": any(
                        resolver.is_subtype(exc_type, s) for s in sanctioned
                    ),
                    # Non-Exception control flow (CancelledError, SystemExit)
                    # and UNKNOWN are reported but never violations.
                    "failure": is_failure,
                }
            )
        boundaries[boundary] = {
            "declared": declared,
            "sanctioned": list(sanctioned),
            "escapes": escapes,
        }

    broad_handlers = []
    for qualname in sorted(exceptions.functions):
        facts = exceptions.functions[qualname]
        if not in_scope(facts.module):
            continue
        for region in facts.tries.values():
            for clause in region.clauses:
                if not clause.broad:
                    continue
                broad_handlers.append(
                    {
                        "function": qualname,
                        "line": clause.line,
                        "catches": clause.spelling,
                        "reraises": clause.reraises,
                        "replaces": clause.raises_new,
                        "observes": clause.observes,
                        "swallows": clause.swallows,
                    }
                )

    root = config.exception_taxonomy_root
    taxonomy: dict[str, Any] = {
        "root": root,
        "classes": sorted(
            qualname
            for qualname in program.index.classes
            if root and resolver.is_subtype(qualname, root)
        ),
    }
    typed = untyped = unknown = 0
    for qualname, facts in exceptions.functions.items():
        if not in_scope(facts.module):
            continue
        for site in facts.raises:
            if site.bare or site.reraises_bound:
                continue
            for exc_type in site.types:
                if exc_type == UNKNOWN:
                    unknown += 1
                elif root and resolver.is_subtype(exc_type, root):
                    typed += 1
                else:
                    untyped += 1
    taxonomy["raises"] = {
        "taxonomy": typed,
        "other": untyped,
        "unknown": unknown,
    }

    findings = []
    for rule_cls in (
        SwallowedExceptionRule,
        BoundaryEscapeRule,
        DeadHandlerRule,
        UntypedRaiseRule,
        ContextLossRule,
    ):
        findings.extend(
            _finding_payload(finding)
            for finding in rule_cls().check_program(program)
        )

    return {
        "packages": list(packages),
        "boundaries": boundaries,
        "broad_handlers": broad_handlers,
        "taxonomy": taxonomy,
        "findings": findings,
        "clean": not findings,
    }


def build_report(program: ProgramContext) -> dict[str, Any]:
    config = program.config
    import_graph = program.import_graph
    call_graph = program.call_graph
    effects = program.effects
    index = call_graph.index

    edges: dict[str, list[tuple[str, bool]]] = {}
    for edge in call_graph.edges:
        edges.setdefault(edge.caller, []).append((edge.callee, edge.receiver_owned))

    certificate: dict[str, Any] = {
        "entry_points": list(config.entry_points),
        "sync_points": sorted(config.sync_points),
        "reachable": {},
    }
    for entry in config.entry_points:
        if entry not in index.functions:
            certificate["reachable"][entry] = None
            continue
        rows = []
        for qualname, shared in sorted(reachable_from(edges, entry)):
            function = index.functions[qualname]
            effect = effects[qualname]
            rows.append(
                {
                    "function": qualname,
                    "public": function.is_public,
                    "shared_context": shared,
                    "effect": effect.level.label,
                    "sync_point": qualname in config.sync_points,
                }
            )
        certificate["reachable"][entry] = rows

    return {
        "package": config.package,
        "layers": {
            "free": sorted(config.free_layers),
            "ranks": dict(sorted(config.layer_ranks.items())),
            **import_graph.to_payload(),
        },
        "cycles": [list(component) for component in find_cycles(import_graph)],
        "call_graph": call_graph.to_payload(),
        "effects": {
            qualname: effects[qualname].to_payload()
            for qualname in sorted(effects)
        },
        "certificate": certificate,
        "concurrency_certificate": _concurrency_certificate(program),
        "exception_certificate": _exception_certificate(program),
        "hotpath": {"functions": sorted(config.hot_functions)},
    }
