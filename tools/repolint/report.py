"""``python -m tools.repolint report``: the whole-program analysis artifact.

One JSON document bundling everything the ARCH/PAR/HOT passes computed:
the import-layer graph with ranks, detected cycles, the call graph, an
effect classification for every function, and the parallel-safety
certificate — per rollout entry point, every reachable function with its
effect level and whether it executes in shared context.  CI archives this
artifact so architecture drift is diffable across commits.
"""

from __future__ import annotations

from typing import Any

from tools.repolint.effects import reachable_from
from tools.repolint.engine import ProgramContext
from tools.repolint.graphs.imports import find_cycles


def build_report(program: ProgramContext) -> dict[str, Any]:
    config = program.config
    import_graph = program.import_graph
    call_graph = program.call_graph
    effects = program.effects
    index = call_graph.index

    edges: dict[str, list[tuple[str, bool]]] = {}
    for edge in call_graph.edges:
        edges.setdefault(edge.caller, []).append((edge.callee, edge.receiver_owned))

    certificate: dict[str, Any] = {
        "entry_points": list(config.entry_points),
        "sync_points": sorted(config.sync_points),
        "reachable": {},
    }
    for entry in config.entry_points:
        if entry not in index.functions:
            certificate["reachable"][entry] = None
            continue
        rows = []
        for qualname, shared in sorted(reachable_from(edges, entry)):
            function = index.functions[qualname]
            effect = effects[qualname]
            rows.append(
                {
                    "function": qualname,
                    "public": function.is_public,
                    "shared_context": shared,
                    "effect": effect.level.label,
                    "sync_point": qualname in config.sync_points,
                }
            )
        certificate["reachable"][entry] = rows

    return {
        "package": config.package,
        "layers": {
            "free": sorted(config.free_layers),
            "ranks": dict(sorted(config.layer_ranks.items())),
            **import_graph.to_payload(),
        },
        "cycles": [list(component) for component in find_cycles(import_graph)],
        "call_graph": call_graph.to_payload(),
        "effects": {
            qualname: effects[qualname].to_payload()
            for qualname in sorted(effects)
        },
        "certificate": certificate,
        "hotpath": {"functions": sorted(config.hot_functions)},
    }
