"""Developer tooling for the PA-FEAT reproduction (not shipped with the package)."""
