PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-changed typecheck test test-serve test-fault test-chaos serve bench-serve bench-resilience check

## Full static-analysis gate: every repolint rule over src/.
lint:
	$(PYTHON) -m tools.repolint src/

## Fast path: only .py files git reports as modified/untracked.
lint-changed:
	$(PYTHON) -m tools.repolint --changed src/

## mypy --strict over the library (no-op with a notice if mypy is absent).
typecheck:
	@$(PYTHON) -c "import importlib.util,sys; sys.exit(0 if importlib.util.find_spec('mypy') else 1)" \
		&& $(PYTHON) -m mypy --strict src/repro \
		|| echo "mypy not installed (pip install -e .[dev]); skipping typecheck"

## Tier-1 suite (excludes the fault-injection and chaos markers).
test:
	$(PYTHON) -m pytest -x -q -m "not fault and not chaos"

## Serving subsystem only: engine parity, batcher, registry, server, metrics.
test-serve:
	$(PYTHON) -m pytest -x -q tests/test_serve_engine.py tests/test_serve_batcher.py \
		tests/test_serve_registry.py tests/test_serve_server.py tests/test_serve_metrics.py \
		tests/test_resilience.py

## Fault-injection / crash-safety suite.
test-fault:
	$(PYTHON) -m pytest -x -q -m fault

## Chaos drills against a live server: latency storms, corrupt artifacts,
## mid-batch crashes.  Asserts shedding, breaker recovery and exact answers.
test-chaos:
	$(PYTHON) -m pytest -x -q -m chaos

## Run the selection server on a saved model (MODEL=path/to/artifact).
serve:
	$(PYTHON) -m repro serve --checkpoint-dir $(MODEL)

## Batched-vs-sequential serving throughput; writes BENCH_serve.json.
bench-serve:
	$(PYTHON) benchmarks/bench_serve.py

## Resilience-primitive overhead gate; writes BENCH_resilience.json.
bench-resilience:
	$(PYTHON) benchmarks/bench_resilience.py

## Everything CI runs.
check: lint typecheck test test-fault test-chaos
