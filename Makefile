PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-changed typecheck test test-serve test-fault serve bench-serve check

## Full static-analysis gate: every repolint rule over src/.
lint:
	$(PYTHON) -m tools.repolint src/

## Fast path: only .py files git reports as modified/untracked.
lint-changed:
	$(PYTHON) -m tools.repolint --changed src/

## mypy --strict over the library (no-op with a notice if mypy is absent).
typecheck:
	@$(PYTHON) -c "import importlib.util,sys; sys.exit(0 if importlib.util.find_spec('mypy') else 1)" \
		&& $(PYTHON) -m mypy --strict src/repro \
		|| echo "mypy not installed (pip install -e .[dev]); skipping typecheck"

## Tier-1 suite (excludes the slower fault-injection marker).
test:
	$(PYTHON) -m pytest -x -q -m "not fault"

## Serving subsystem only: engine parity, batcher, registry, server, metrics.
test-serve:
	$(PYTHON) -m pytest -x -q tests/test_serve_engine.py tests/test_serve_batcher.py \
		tests/test_serve_registry.py tests/test_serve_server.py tests/test_serve_metrics.py

## Fault-injection / crash-safety suite.
test-fault:
	$(PYTHON) -m pytest -x -q -m fault

## Run the selection server on a saved model (MODEL=path/to/artifact).
serve:
	$(PYTHON) -m repro serve --checkpoint-dir $(MODEL)

## Batched-vs-sequential serving throughput; writes BENCH_serve.json.
bench-serve:
	$(PYTHON) benchmarks/bench_serve.py

## Everything CI runs.
check: lint typecheck test test-fault
