PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-changed lint-concurrency lint-exceptions typecheck test test-serve test-fault test-chaos test-chaos-tsan test-rollout test-parallel-tsan serve bench-serve bench-resilience bench-rollout bench-obs check

## Full static-analysis gate: every repolint rule over src/.
lint:
	$(PYTHON) -m tools.repolint src/

## Fast path: only .py files git reports as modified/untracked (SHA-keyed
## result cache on, so unchanged files replay their findings).
lint-changed:
	$(PYTHON) -m tools.repolint --changed src/

## ASYNC9xx rules plus the concurrency certificate (must be clean).
lint-concurrency:
	$(PYTHON) -m tools.repolint --select ASYNC901,ASYNC902,ASYNC903,ASYNC904,ASYNC905 src/
	$(PYTHON) -m tools.repolint report --anchor src --out concurrency-certificate.json
	$(PYTHON) -c "import json; c = json.load(open('concurrency-certificate.json'))['concurrency_certificate']; assert c['clean'], c['findings']; print('concurrency certificate clean:', len(c['functions']), 'functions')"

## EXC10xx rules plus the exception certificate (must be clean).
lint-exceptions:
	$(PYTHON) -m tools.repolint --select EXC1001,EXC1002,EXC1003,EXC1004,EXC1005 src/
	$(PYTHON) -m tools.repolint report --anchor src --out exception-certificate.json
	$(PYTHON) -c "import json; c = json.load(open('exception-certificate.json'))['exception_certificate']; assert c['clean'], c['findings']; print('exception certificate clean:', len(c['boundaries']), 'boundaries,', len(c['broad_handlers']), 'broad handlers')"

## mypy --strict over the library (no-op with a notice if mypy is absent).
typecheck:
	@$(PYTHON) -c "import importlib.util,sys; sys.exit(0 if importlib.util.find_spec('mypy') else 1)" \
		&& $(PYTHON) -m mypy --strict src/repro \
		|| echo "mypy not installed (pip install -e .[dev]); skipping typecheck"

## Tier-1 suite (excludes the fault-injection and chaos markers).
test:
	$(PYTHON) -m pytest -x -q -m "not fault and not chaos"

## Serving subsystem only: engine parity, batcher, registry, server, metrics.
test-serve:
	$(PYTHON) -m pytest -x -q tests/test_serve_engine.py tests/test_serve_batcher.py \
		tests/test_serve_registry.py tests/test_serve_server.py tests/test_serve_metrics.py \
		tests/test_resilience.py

## Fault-injection / crash-safety suite.
test-fault:
	$(PYTHON) -m pytest -x -q -m fault

## Chaos drills against a live server: latency storms, corrupt artifacts,
## mid-batch crashes.  Asserts shedding, breaker recovery and exact answers.
test-chaos:
	$(PYTHON) -m pytest -x -q -m chaos

## Chaos drills with the runtime thread sanitizer armed process-wide:
## any cross-context unlocked write observed during a drill fails it.
test-chaos-tsan:
	REPRO_TSAN=1 $(PYTHON) -m pytest -x -q -m chaos

## Rollout engine only: determinism contracts plus its fault drills.
test-rollout:
	$(PYTHON) -m pytest -x -q tests/test_rollout.py tests/test_rollout_faults.py

## The CI parity lane, locally: tier-1 with every fit collecting through
## the 2-worker rollout engine and the runtime sanitizer armed — the
## conftest gate fails any test observing a lockset violation.
test-parallel-tsan:
	REPRO_ROLLOUT_WORKERS=2 REPRO_TSAN=1 $(PYTHON) -m pytest -x -q -m "not fault and not chaos"

## Run the selection server on a saved model (MODEL=path/to/artifact).
serve:
	$(PYTHON) -m repro serve --checkpoint-dir $(MODEL)

## Batched-vs-sequential serving throughput; writes BENCH_serve.json.
bench-serve:
	$(PYTHON) benchmarks/bench_serve.py

## Resilience-primitive overhead gate; writes BENCH_resilience.json.
bench-resilience:
	$(PYTHON) benchmarks/bench_resilience.py

## Rollout speedup/parity/tsan gates; writes BENCH_rollout.json.
bench-rollout:
	$(PYTHON) benchmarks/bench_rollout.py

## Telemetry parity + disabled-path overhead gates; writes BENCH_obs.json
## and sample telemetry under benchmarks/results/obs_telemetry/.
bench-obs:
	$(PYTHON) benchmarks/bench_obs.py

## Everything CI runs.
check: lint lint-concurrency lint-exceptions typecheck test test-fault test-chaos-tsan test-parallel-tsan
