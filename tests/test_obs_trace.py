"""Trace spans: deterministic ids, fake clocks, null-tracer cost, rollout
span propagation across the worker pool."""

from __future__ import annotations

import io
import json

from repro.core.pafeat import PAFeat
from repro.obs.trace import NULL_TRACER, Tracer, read_trace
from repro.rollout import ParallelRolloutEngine
from tests.conftest import fast_config


def _records(sink: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestSpans:
    def test_span_records_offset_and_duration(self):
        sink = io.StringIO()
        tracer = Tracer(sink, run_id="r1", clock=FakeClock())
        with tracer.span("work", task=3):
            pass
        (record,) = _records(sink)
        assert record["trace"] == "r1"
        assert record["name"] == "work"
        assert record["span"] == 1
        assert record["parent"] is None
        # Epoch read at construction (101), enter at 102, exit at 103.
        assert record["start_s"] == 1.0
        assert record["duration_s"] == 1.0
        assert record["attrs"] == {"task": 3}

    def test_nested_spans_carry_parent_ids(self):
        sink = io.StringIO()
        tracer = Tracer(sink, run_id="r", clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner", parent=outer):
                pass
        by_name = {r["name"]: r for r in _records(sink)}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]

    def test_span_ids_are_sequential(self):
        sink = io.StringIO()
        tracer = Tracer(sink, clock=FakeClock())
        for _ in range(3):
            with tracer.span("s"):
                pass
        assert [r["span"] for r in _records(sink)] == [1, 2, 3]

    def test_emit_records_duration_without_start(self):
        sink = io.StringIO()
        tracer = Tracer(sink, clock=FakeClock())
        with tracer.span("fill") as fill:
            span_id = tracer.emit("episode", 0.25, parent=fill, episode=7)
        assert span_id == 2  # the open fill span took id 1
        records = {r["name"]: r for r in _records(sink)}
        episode = records["episode"]
        assert episode["start_s"] is None
        assert episode["duration_s"] == 0.25
        assert episode["parent"] == records["fill"]["span"]
        assert episode["attrs"] == {"episode": 7}

    def test_read_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path, run_id="rt", clock=FakeClock()) as tracer:
            with tracer.span("a"):
                pass
        records = read_trace(path)
        assert len(records) == 1
        assert records[0]["name"] == "a"

    def test_close_disables(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl", clock=FakeClock())
        tracer.close()
        assert tracer.enabled is False
        assert tracer.emit("late", 1.0) == 0


class TestNullTracer:
    def test_disabled_span_is_shared_and_inert(self):
        first = NULL_TRACER.span("anything", attr=1)
        second = NULL_TRACER.span("other")
        assert first is second  # one shared null span, no allocation
        with first as span:
            assert span.span_id == 0

    def test_disabled_emit_returns_zero(self):
        assert NULL_TRACER.emit("x", 1.0) == 0

    def test_disabled_tracer_writes_nothing(self, tmp_path):
        tracer = Tracer(None)
        with tracer.span("s"):
            pass
        assert tracer.enabled is False


class TestRolloutSpanPropagation:
    def test_worker_timings_merge_in_plan_order(self, tiny_split):
        train, _ = tiny_split
        model = PAFeat(fast_config(n_iterations=2)).fit(train)
        trainer = model.trainer
        engine = ParallelRolloutEngine(2, seed=0)
        sink = io.StringIO()
        engine.tracer = Tracer(sink, run_id="rollout-test")
        trainer.rollout_engine = engine
        try:
            trainer.buffer_filling(6)
        finally:
            trainer.rollout_engine = None
        records = _records(sink)
        by_name: dict[str, list[dict]] = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)

        (fill,) = by_name["rollout.fill"]
        assert fill["attrs"]["episodes"] == 6
        assert fill["attrs"]["workers"] == 2

        # Stage spans are measured on the coordinator and parented to fill.
        for stage in ("rollout.plan", "rollout.execute", "rollout.merge"):
            (span,) = by_name[stage]
            assert span["parent"] == fill["span"]

        # Worker-measured episode durations arrive via emit() in plan
        # order — the merge barrier's ordering is visible in the trace.
        episodes = by_name["rollout.episode"]
        assert [e["attrs"]["episode"] for e in episodes] == list(range(6))
        for episode in episodes:
            assert episode["parent"] == fill["span"]
            assert episode["start_s"] is None
            assert episode["duration_s"] >= 0.0
            assert episode["attrs"]["steps"] >= 1

    def test_untraced_fill_leaves_elapsed_zero(self, tiny_split):
        train, _ = tiny_split
        model = PAFeat(fast_config(n_iterations=2)).fit(train)
        trainer = model.trainer
        engine = ParallelRolloutEngine(2, seed=0)
        trainer.rollout_engine = engine
        try:
            trainer.buffer_filling(4)
        finally:
            trainer.rollout_engine = None
        # The tracer defaults to NULL_TRACER: plans must not request
        # wall-timing, so the disabled path costs no clock reads.
        assert engine.tracer is NULL_TRACER
