"""Parse-once source cache, SHA-keyed result cache, file-level suppression.

The performance satellite's correctness story: a shared parse must not
change any verdict, a stale or corrupt result cache must only ever cost a
recompute, and ``# repolint: disable-file=CODE`` must silence exactly the
named rules — never its neighbours.
"""

from __future__ import annotations

from pathlib import Path

from tools.repolint.cache import ResultCache, SourceCache, content_sha
from tools.repolint.engine import (
    analyze_paths,
    analyze_source,
    file_suppressed_codes,
)

DIRTY = "import random\nrandom.seed(0)\n"


def codes(findings) -> list[str]:
    return [f.code for f in findings]


def write_module(tmp_path: Path, name: str, source: str) -> Path:
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return target


# ---------------------------------------------------------------------------
# SourceCache
# ---------------------------------------------------------------------------

def test_source_cache_parses_each_file_once(tmp_path):
    target = write_module(tmp_path, "mod.py", "X = 1\n")
    cache = SourceCache()
    first = cache.parse(target)
    second = cache.parse(target)
    assert first is second
    assert cache.parses == 1
    assert cache.hits == 1
    assert first.sha == content_sha("X = 1\n")


def test_analyze_paths_shares_one_parse_per_file(tmp_path):
    targets = [
        write_module(tmp_path, "a.py", "A = 1\n"),
        write_module(tmp_path, "b.py", "B = 2\n"),
    ]
    cache = SourceCache()
    analyze_paths(targets, source_cache=cache)
    assert cache.parses == 2  # one parse per file, however many rules ran


def test_cached_analysis_matches_uncached(tmp_path):
    target = write_module(tmp_path, "mod.py", DIRTY)
    plain = analyze_paths([target])
    shared = analyze_paths([target], source_cache=SourceCache())
    assert [(f.code, f.line) for f in plain] == [
        (f.code, f.line) for f in shared
    ]
    assert plain  # the snippet is not clean


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------

def test_result_cache_replays_findings_on_sha_hit(tmp_path):
    target = write_module(tmp_path, "mod.py", DIRTY)
    cache_path = tmp_path / "cache.json"

    first_cache = ResultCache(cache_path)
    first = analyze_paths([target], result_cache=first_cache)
    assert first_cache.misses == 1 and first_cache.hits == 0
    assert cache_path.exists()

    second_cache = ResultCache(cache_path)
    second = analyze_paths([target], result_cache=second_cache)
    assert second_cache.hits == 1 and second_cache.misses == 0
    assert [(f.code, f.line, f.message) for f in first] == [
        (f.code, f.line, f.message) for f in second
    ]


def test_result_cache_misses_when_content_changes(tmp_path):
    target = write_module(tmp_path, "mod.py", DIRTY)
    cache_path = tmp_path / "cache.json"
    analyze_paths([target], result_cache=ResultCache(cache_path))

    target.write_text(DIRTY + "Y = 1\n", encoding="utf-8")
    cache = ResultCache(cache_path)
    findings = analyze_paths([target], result_cache=cache)
    assert cache.misses == 1 and cache.hits == 0
    assert findings  # recomputed, still dirty


def test_clean_files_cache_their_emptiness(tmp_path):
    target = write_module(tmp_path, "mod.py", "X = 1\n")
    cache_path = tmp_path / "cache.json"
    analyze_paths([target], result_cache=ResultCache(cache_path))

    cache = ResultCache(cache_path)
    findings = analyze_paths([target], result_cache=cache)
    assert cache.hits == 1
    assert findings == []


def test_corrupt_cache_file_is_treated_as_empty(tmp_path):
    target = write_module(tmp_path, "mod.py", DIRTY)
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json", encoding="utf-8")
    cache = ResultCache(cache_path)
    findings = analyze_paths([target], result_cache=cache)
    assert findings
    assert cache.misses == 1
    # And the save overwrote the corruption with a valid cache.
    replay = ResultCache(cache_path)
    assert analyze_paths([target], result_cache=replay)
    assert replay.hits == 1


def test_cached_findings_are_stored_post_suppression(tmp_path):
    target = write_module(
        tmp_path, "mod.py", "import random\nrandom.seed(0)  # repolint: disable=RNG102\n"
    )
    cache_path = tmp_path / "cache.json"
    first = analyze_paths([target], result_cache=ResultCache(cache_path))
    assert "RNG102" not in codes(first)
    cache = ResultCache(cache_path)
    second = analyze_paths([target], result_cache=cache)
    assert cache.hits == 1
    assert "RNG102" not in codes(second)


# ---------------------------------------------------------------------------
# File-level suppression
# ---------------------------------------------------------------------------

def test_file_suppressed_codes_parses_the_pragma():
    lines = [
        "'''docstring'''",
        "# repolint: disable-file=RNG102, PAR602",
        "X = 1",
    ]
    assert file_suppressed_codes(lines) == {"RNG102", "PAR602"}
    assert file_suppressed_codes(["X = 1"]) == set()


def test_disable_file_silences_only_the_named_rule():
    source = (
        "# repolint: disable-file=RNG102\n"
        "import random\n"
        "import numpy as np\n"
        "random.seed(0)\n"
        "def f(x):\n"
        "    return np.exp(x) / np.sum(np.exp(x))\n"
    )
    suppressed = analyze_source(source, Path("pkg/mod.py"))
    assert "RNG102" not in codes(suppressed)
    # The numerically unsafe softmax still fires: disable-file is per-rule.
    assert any(code.startswith("NUM") for code in codes(suppressed))

    unsuppressed = analyze_source(
        source.replace("# repolint: disable-file=RNG102\n", ""),
        Path("pkg/mod.py"),
    )
    assert "RNG102" in codes(unsuppressed)


def test_disable_file_all_silences_everything():
    source = (
        "# repolint: disable-file=all\n"
        "import random\n"
        "random.seed(0)\n"
    )
    assert analyze_source(source, Path("pkg/mod.py")) == []


def test_per_line_disable_does_not_match_disable_file():
    # The old per-line syntax must not accidentally suppress the file.
    source = (
        "import random\n"
        "# repolint: disable=RNG102\n"
        "random.seed(0)\n"
    )
    assert "RNG102" in codes(analyze_source(source, Path("pkg/mod.py")))
