"""Parse-once source cache, SHA-keyed result cache, file-level suppression.

The performance satellite's correctness story: a shared parse must not
change any verdict, a stale or corrupt result cache must only ever cost a
recompute, ``# repolint: disable-file=CODE`` must silence exactly the
named rules — never its neighbours — and neither the config-fingerprint
cache key nor the ``--jobs`` process pool may change a single verdict.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from tools.repolint.cache import (
    ResultCache,
    SourceCache,
    config_fingerprint,
    content_sha,
)
from tools.repolint.config import RepolintConfig
from tools.repolint.engine import (
    analyze_paths,
    analyze_source,
    file_suppressed_codes,
)

DIRTY = "import random\nrandom.seed(0)\n"


def codes(findings) -> list[str]:
    return [f.code for f in findings]


def write_module(tmp_path: Path, name: str, source: str) -> Path:
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return target


# ---------------------------------------------------------------------------
# SourceCache
# ---------------------------------------------------------------------------

def test_source_cache_parses_each_file_once(tmp_path):
    target = write_module(tmp_path, "mod.py", "X = 1\n")
    cache = SourceCache()
    first = cache.parse(target)
    second = cache.parse(target)
    assert first is second
    assert cache.parses == 1
    assert cache.hits == 1
    assert first.sha == content_sha("X = 1\n")


def test_analyze_paths_shares_one_parse_per_file(tmp_path):
    targets = [
        write_module(tmp_path, "a.py", "A = 1\n"),
        write_module(tmp_path, "b.py", "B = 2\n"),
    ]
    cache = SourceCache()
    analyze_paths(targets, source_cache=cache)
    assert cache.parses == 2  # one parse per file, however many rules ran


def test_cached_analysis_matches_uncached(tmp_path):
    target = write_module(tmp_path, "mod.py", DIRTY)
    plain = analyze_paths([target])
    shared = analyze_paths([target], source_cache=SourceCache())
    assert [(f.code, f.line) for f in plain] == [
        (f.code, f.line) for f in shared
    ]
    assert plain  # the snippet is not clean


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------

def test_result_cache_replays_findings_on_sha_hit(tmp_path):
    target = write_module(tmp_path, "mod.py", DIRTY)
    cache_path = tmp_path / "cache.json"

    first_cache = ResultCache(cache_path)
    first = analyze_paths([target], result_cache=first_cache)
    assert first_cache.misses == 1 and first_cache.hits == 0
    assert cache_path.exists()

    second_cache = ResultCache(cache_path)
    second = analyze_paths([target], result_cache=second_cache)
    assert second_cache.hits == 1 and second_cache.misses == 0
    assert [(f.code, f.line, f.message) for f in first] == [
        (f.code, f.line, f.message) for f in second
    ]


def test_result_cache_misses_when_content_changes(tmp_path):
    target = write_module(tmp_path, "mod.py", DIRTY)
    cache_path = tmp_path / "cache.json"
    analyze_paths([target], result_cache=ResultCache(cache_path))

    target.write_text(DIRTY + "Y = 1\n", encoding="utf-8")
    cache = ResultCache(cache_path)
    findings = analyze_paths([target], result_cache=cache)
    assert cache.misses == 1 and cache.hits == 0
    assert findings  # recomputed, still dirty


def test_clean_files_cache_their_emptiness(tmp_path):
    target = write_module(tmp_path, "mod.py", "X = 1\n")
    cache_path = tmp_path / "cache.json"
    analyze_paths([target], result_cache=ResultCache(cache_path))

    cache = ResultCache(cache_path)
    findings = analyze_paths([target], result_cache=cache)
    assert cache.hits == 1
    assert findings == []


def test_corrupt_cache_file_is_treated_as_empty(tmp_path):
    target = write_module(tmp_path, "mod.py", DIRTY)
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json", encoding="utf-8")
    cache = ResultCache(cache_path)
    findings = analyze_paths([target], result_cache=cache)
    assert findings
    assert cache.misses == 1
    # And the save overwrote the corruption with a valid cache.
    replay = ResultCache(cache_path)
    assert analyze_paths([target], result_cache=replay)
    assert replay.hits == 1


def test_cached_findings_are_stored_post_suppression(tmp_path):
    target = write_module(
        tmp_path, "mod.py", "import random\nrandom.seed(0)  # repolint: disable=RNG102\n"
    )
    cache_path = tmp_path / "cache.json"
    first = analyze_paths([target], result_cache=ResultCache(cache_path))
    assert "RNG102" not in codes(first)
    cache = ResultCache(cache_path)
    second = analyze_paths([target], result_cache=cache)
    assert cache.hits == 1
    assert "RNG102" not in codes(second)


# ---------------------------------------------------------------------------
# File-level suppression
# ---------------------------------------------------------------------------

def test_file_suppressed_codes_parses_the_pragma():
    lines = [
        "'''docstring'''",
        "# repolint: disable-file=RNG102, PAR602",
        "X = 1",
    ]
    assert file_suppressed_codes(lines) == {"RNG102", "PAR602"}
    assert file_suppressed_codes(["X = 1"]) == set()


def test_disable_file_silences_only_the_named_rule():
    source = (
        "# repolint: disable-file=RNG102\n"
        "import random\n"
        "import numpy as np\n"
        "random.seed(0)\n"
        "def f(x):\n"
        "    return np.exp(x) / np.sum(np.exp(x))\n"
    )
    suppressed = analyze_source(source, Path("pkg/mod.py"))
    assert "RNG102" not in codes(suppressed)
    # The numerically unsafe softmax still fires: disable-file is per-rule.
    assert any(code.startswith("NUM") for code in codes(suppressed))

    unsuppressed = analyze_source(
        source.replace("# repolint: disable-file=RNG102\n", ""),
        Path("pkg/mod.py"),
    )
    assert "RNG102" in codes(unsuppressed)


def test_disable_file_all_silences_everything():
    source = (
        "# repolint: disable-file=all\n"
        "import random\n"
        "random.seed(0)\n"
    )
    assert analyze_source(source, Path("pkg/mod.py")) == []


def test_per_line_disable_does_not_match_disable_file():
    # The old per-line syntax must not accidentally suppress the file.
    source = (
        "import random\n"
        "# repolint: disable=RNG102\n"
        "random.seed(0)\n"
    )
    assert "RNG102" in codes(analyze_source(source, Path("pkg/mod.py")))


# ---------------------------------------------------------------------------
# Config fingerprint (the --changed + ResultCache interaction fix)
# ---------------------------------------------------------------------------

def test_config_fingerprint_is_stable_and_semantic():
    base = RepolintConfig()
    assert config_fingerprint(base) == config_fingerprint(RepolintConfig())
    changed = replace(base, hot_functions=frozenset({"repro.core.env.step"}))
    assert config_fingerprint(changed) != config_fingerprint(base)
    assert config_fingerprint(None) == "no-config"
    assert config_fingerprint(None) != config_fingerprint(base)


def test_config_fingerprint_ignores_toml_ordering():
    # Reordering entries of a mapping/set field must not invalidate the
    # cache — only a semantic change should.
    one = replace(RepolintConfig(), layer_ranks={"data": 0, "core": 4})
    other = replace(RepolintConfig(), layer_ranks={"core": 4, "data": 0})
    assert config_fingerprint(one) == config_fingerprint(other)


def test_result_cache_ignores_entries_from_a_different_config(tmp_path):
    """The --changed fast path must not replay findings computed under an
    older pyproject contract: same file sha, different config → miss."""
    target = write_module(tmp_path, "mod.py", DIRTY)
    cache_path = tmp_path / "cache.json"

    first = ResultCache(cache_path, fingerprint="contract-v1")
    analyze_paths([target], result_cache=first)
    assert first.misses == 1

    same = ResultCache(cache_path, fingerprint="contract-v1")
    analyze_paths([target], result_cache=same)
    assert same.hits == 1 and same.misses == 0

    edited = ResultCache(cache_path, fingerprint="contract-v2")
    findings = analyze_paths([target], result_cache=edited)
    assert edited.hits == 0 and edited.misses == 1
    assert findings  # recomputed under the new contract

    # And the save re-keyed the cache to the new fingerprint.
    rekeyed = ResultCache(cache_path, fingerprint="contract-v2")
    analyze_paths([target], result_cache=rekeyed)
    assert rekeyed.hits == 1


def test_for_repo_keys_cache_to_the_resolved_config(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repolint]\npackage = \"repro\"\n", encoding="utf-8"
    )
    target = write_module(tmp_path, "mod.py", DIRTY)
    analyze_paths([target], result_cache=ResultCache.for_repo(tmp_path))

    warm = ResultCache.for_repo(tmp_path)
    analyze_paths([target], result_cache=warm)
    assert warm.hits == 1

    # A contract edit in pyproject.toml empties the cache wholesale.
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repolint]\npackage = \"repro\"\n"
        "[tool.repolint.hotpath]\nfunctions = [\"repro.core.env.step\"]\n",
        encoding="utf-8",
    )
    cold = ResultCache.for_repo(tmp_path)
    analyze_paths([target], result_cache=cold)
    assert cold.hits == 0 and cold.misses == 1


# ---------------------------------------------------------------------------
# --jobs process pool
# ---------------------------------------------------------------------------

def test_parallel_jobs_matches_serial(tmp_path):
    targets = [
        write_module(tmp_path, "a.py", DIRTY),
        write_module(tmp_path, "b.py", "import numpy as np\n\n\ndef f(x):\n    return np.exp(x) / np.sum(np.exp(x))\n"),
        write_module(tmp_path, "c.py", "X = 1\n"),
        write_module(tmp_path, "d.py", "def broken(:\n"),
    ]
    serial = analyze_paths(targets, jobs=1)
    parallel = analyze_paths(targets, jobs=4)
    assert [(f.path, f.line, f.code, f.message) for f in serial] == [
        (f.path, f.line, f.code, f.message) for f in parallel
    ]
    assert {"RNG102", "PARSE001"} <= set(codes(serial))


def test_parallel_jobs_populates_the_result_cache(tmp_path):
    targets = [
        write_module(tmp_path, "a.py", DIRTY),
        write_module(tmp_path, "b.py", "X = 1\n"),
    ]
    cache_path = tmp_path / "cache.json"
    analyze_paths(targets, result_cache=ResultCache(cache_path), jobs=4)

    warm = ResultCache(cache_path)
    replayed = analyze_paths(targets, result_cache=warm, jobs=4)
    assert warm.hits == 2 and warm.misses == 0
    assert codes(replayed) == codes(analyze_paths(targets, jobs=1))


def test_ad_hoc_rules_fall_back_to_the_serial_path(tmp_path):
    """Workers rebuild rules by registry code, so a caller-supplied rule
    instance must route through the in-process loop (and still run)."""
    from tools.repolint.engine import Finding, Rule

    class EveryFileRule(Rule):
        code = "TEST999"
        name = "every-file"

        def check(self, ctx):
            yield self.finding(ctx, ctx.tree, "saw this file")

    targets = [
        write_module(tmp_path, "a.py", "X = 1\n"),
        write_module(tmp_path, "b.py", "Y = 2\n"),
    ]
    findings = analyze_paths(targets, rules=[EveryFileRule()], jobs=4)
    assert codes(findings) == ["TEST999", "TEST999"]


# ---------------------------------------------------------------------------
# LINT001: unused suppressions
# ---------------------------------------------------------------------------

def test_stale_per_line_pragma_is_flagged():
    source = "import random\nX = 1  # repolint: disable=RNG102\n"
    findings = analyze_source(source, Path("pkg/mod.py"))
    assert codes(findings) == ["LINT001"]
    assert findings[0].line == 2
    assert "RNG102" in findings[0].message


def test_used_pragma_is_not_flagged():
    source = "import random\nrandom.seed(0)  # repolint: disable=RNG102\n"
    assert analyze_source(source, Path("pkg/mod.py")) == []


def test_blanket_all_pragma_is_never_flagged():
    source = "X = 1  # repolint: disable=all\n"
    assert analyze_source(source, Path("pkg/mod.py")) == []
    assert analyze_source(
        "# repolint: disable-file=all\nX = 1\n", Path("pkg/mod.py")
    ) == []


def test_stale_disable_file_pragma_is_flagged_at_the_pragma_line():
    source = "'''doc'''\n# repolint: disable-file=RNG102\nX = 1\n"
    findings = analyze_source(source, Path("pkg/mod.py"))
    assert codes(findings) == ["LINT001"]
    assert findings[0].line == 2
    assert "fires nowhere" in findings[0].message


def test_pragma_for_a_rule_that_did_not_run_is_not_flagged():
    # --select RNG101 must not claim the RNG102 pragma is stale: the rule
    # it names never ran, so staleness is unprovable.
    from tools.repolint.rules import all_rules

    source = "import random\nrandom.seed(0)  # repolint: disable=RNG102\n"
    subset = [r for r in all_rules() if r.code in {"RNG101", "LINT001"}]
    assert analyze_source(source, Path("pkg/mod.py"), rules=subset) == []


def test_program_rule_pragma_staleness_needs_the_program_pass():
    # A per-file-only pass cannot judge a PAR602 pragma; with a config
    # (program rules running) a stale one is flagged.
    stale = "STATE = {}\n\n\ndef f():  # repolint: disable=PAR602\n    return 1\n"
    assert analyze_source(stale, Path("pkg/mod.py")) == []
    findings = analyze_source(
        stale, Path("pkg/mod.py"), module="pkg.mod", config=RepolintConfig(package="pkg")
    )
    assert "LINT001" in codes(findings)


def test_lint001_is_itself_suppressible():
    source = "import random\nX = 1  # repolint: disable=RNG102,LINT001\n"
    assert analyze_source(source, Path("pkg/mod.py")) == []
