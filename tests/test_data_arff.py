"""Tests for the Mulan/ARFF loader."""

import numpy as np
import pytest

from repro.data.arff import ArffError, load_arff_suite, parse_arff

DENSE_ARFF = """% a comment
@relation demo

@attribute feat1 numeric
@attribute feat2 real
@attribute colour {red, green, blue}
@attribute label1 {0, 1}
@attribute label2 {0, 1}

@data
1.0, 2.5, red, 0, 1
2.0, 3.5, green, 1, 0
% another comment
3.0, ?, blue, 1, 1
"""

SPARSE_ARFF = """@relation sparse
@attribute f1 numeric
@attribute f2 numeric
@attribute f3 numeric
@attribute label1 {0,1}
@attribute label2 {0,1}
@data
{0 1.5, 3 1}
{1 2.0, 2 3.0, 4 1}
{}
"""


@pytest.fixture
def dense_path(tmp_path):
    path = tmp_path / "demo.arff"
    path.write_text(DENSE_ARFF)
    return path


@pytest.fixture
def sparse_path(tmp_path):
    path = tmp_path / "sparse.arff"
    path.write_text(SPARSE_ARFF)
    return path


class TestParseArff:
    def test_dense_parse(self, dense_path):
        names, values = parse_arff(dense_path)
        assert names == ["feat1", "feat2", "colour", "label1", "label2"]
        assert values.shape == (3, 5)
        assert values[0, 2] == 0.0  # red → index 0
        assert values[1, 2] == 1.0  # green → index 1
        assert np.isnan(values[2, 1])  # missing

    def test_sparse_parse(self, sparse_path):
        names, values = parse_arff(sparse_path)
        assert values.shape == (3, 5)
        np.testing.assert_array_equal(values[0], [1.5, 0, 0, 1, 0])
        np.testing.assert_array_equal(values[2], [0, 0, 0, 0, 0])

    def test_missing_data_section_raises(self, tmp_path):
        path = tmp_path / "bad.arff"
        path.write_text("@relation x\n@attribute a numeric\n")
        with pytest.raises(ArffError, match="no @data"):
            parse_arff(path)

    def test_bad_row_width_raises(self, tmp_path):
        path = tmp_path / "bad.arff"
        path.write_text("@relation x\n@attribute a numeric\n@data\n1,2\n")
        with pytest.raises(ArffError, match="row has 2 values"):
            parse_arff(path)

    def test_unknown_nominal_value_raises(self, tmp_path):
        path = tmp_path / "bad.arff"
        path.write_text("@relation x\n@attribute a {x,y}\n@attribute b numeric\n@data\nz,1\n")
        with pytest.raises(ArffError, match="not in nominal domain"):
            parse_arff(path)

    def test_quoted_attribute_names(self, tmp_path):
        path = tmp_path / "q.arff"
        path.write_text("@relation x\n@attribute 'my feat' numeric\n@attribute y numeric\n@data\n1,2\n")
        names, _ = parse_arff(path)
        assert names[0] == "my feat"


class TestLoadArffSuite:
    def test_mulan_convention_labels_last(self, dense_path):
        suite = load_arff_suite(dense_path, n_labels=2, n_seen=1)
        assert suite.n_features == 3
        assert suite.n_seen == 1
        assert suite.n_unseen == 1
        assert suite.table.label_names == ["label1", "label2"]

    def test_missing_features_imputed_with_mean(self, dense_path):
        suite = load_arff_suite(dense_path, n_labels=2, n_seen=1)
        # feat2 row 2 was '?'; imputed with mean of [2.5, 3.5] = 3.0.
        assert suite.table.features[2, 1] == pytest.approx(3.0)

    def test_labels_first_mode(self, tmp_path):
        path = tmp_path / "lf.arff"
        path.write_text(
            "@relation x\n@attribute l1 {0,1}\n@attribute l2 {0,1}\n"
            "@attribute f1 numeric\n@data\n0,1,5.0\n1,0,6.0\n"
        )
        suite = load_arff_suite(path, n_labels=2, n_seen=1, labels_first=True)
        assert suite.table.feature_names == ["f1"]
        np.testing.assert_array_equal(suite.table.labels[:, 0], [0, 1])

    def test_non_binary_labels_rejected(self, tmp_path):
        path = tmp_path / "nb.arff"
        path.write_text(
            "@relation x\n@attribute f numeric\n@attribute l numeric\n"
            "@attribute l2 numeric\n@data\n1.0,2,0\n2.0,0,1\n"
        )
        with pytest.raises(ArffError, match="binary"):
            load_arff_suite(path, n_labels=2, n_seen=1)

    def test_invalid_partition_rejected(self, dense_path):
        with pytest.raises(ValueError, match="n_seen"):
            load_arff_suite(dense_path, n_labels=2, n_seen=2)

    def test_loaded_suite_trains(self, tmp_path, rng):
        """A real-format file goes through the whole pipeline."""
        lines = [
            "@relation gen",
            *[f"@attribute f{i} numeric" for i in range(5)],
            "@attribute l0 {0,1}",
            "@attribute l1 {0,1}",
            "@data",
        ]
        for _ in range(60):
            x = rng.standard_normal(5)
            labels = [int(x[0] > 0), int(x[1] > 0)]
            lines.append(",".join([f"{v:.4f}" for v in x] + [str(v) for v in labels]))
        path = tmp_path / "gen.arff"
        path.write_text("\n".join(lines))

        from repro.core.pafeat import PAFeat
        from tests.conftest import fast_config

        suite = load_arff_suite(path, n_labels=2, n_seen=1)
        model = PAFeat(fast_config(n_iterations=4)).fit(suite)
        assert model.select(suite.unseen_tasks[0])
