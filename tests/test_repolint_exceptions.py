"""Exception-flow analysis: escape sets, handler semantics, EXC10xx rules.

Escape-set mechanics are tested directly against
:class:`ProgramContext.from_sources` (hermetic multi-module programs, no
filesystem); the five EXC rules through ``analyze_source(..., config=...)``
like every other program rule; and the suite ends with the repo-level gate:
the real package's exception certificate must be clean.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from tools.repolint import RepolintConfig, analyze_source, build_program
from tools.repolint.engine import ProgramContext
from tools.repolint.graphs.exceptions import UNKNOWN
from tools.repolint.report import build_report

REPO_ROOT = Path(__file__).resolve().parent.parent

ERRORS = (
    "class Base(Exception):\n"
    "    pass\n"
    "\n"
    "\n"
    "class Child(Base):\n"
    "    pass\n"
)


def codes(findings) -> list[str]:
    return [f.code for f in findings]


def exc_config(**overrides) -> RepolintConfig:
    defaults = dict(package="pkg", exception_packages=("pkg",))
    defaults.update(overrides)
    return RepolintConfig(**defaults)


def escapes_of(sources: dict[str, str], qualname: str, **config_overrides):
    program = ProgramContext.from_sources(sources, exc_config(**config_overrides))
    return program.exceptions.escape_set(qualname)


def run_rules(source: str, **config_overrides) -> list:
    extra = config_overrides.pop("extra_sources", {})
    return analyze_source(
        source,
        Path("pkg/mod.py"),
        module="pkg.mod",
        config=exc_config(**config_overrides),
        extra_sources=extra,
    )


# ---------------------------------------------------------------------------
# Escape-set inference
# ---------------------------------------------------------------------------

def test_escape_set_seeds_from_raise_statements():
    sources = {"pkg.mod": "def f():\n    raise ValueError('bad')\n"}
    assert escapes_of(sources, "pkg.mod.f") == {"ValueError"}


def test_escapes_propagate_through_callees():
    sources = {
        "pkg.mod": (
            "def g():\n"
            "    raise KeyError('k')\n"
            "\n"
            "\n"
            "def f():\n"
            "    return g()\n"
        )
    }
    assert "KeyError" in escapes_of(sources, "pkg.mod.f")


def test_except_narrows_callee_escape_by_superclass():
    sources = {
        "pkg.mod": (
            "def g():\n"
            "    raise KeyError('k')\n"
            "\n"
            "\n"
            "def f():\n"
            "    try:\n"
            "        return g()\n"
            "    except LookupError:\n"
            "        return None\n"
        )
    }
    assert "KeyError" not in escapes_of(sources, "pkg.mod.f")


def test_except_subclass_does_not_catch_superclass_raise():
    sources = {
        "pkg.mod": (
            "def f():\n"
            "    try:\n"
            "        raise LookupError('l')\n"
            "    except KeyError:\n"
            "        return None\n"
        )
    }
    assert "LookupError" in escapes_of(sources, "pkg.mod.f")


def test_reraising_handler_keeps_the_type_escaping():
    sources = {
        "pkg.mod": (
            "def f():\n"
            "    try:\n"
            "        raise ValueError('v')\n"
            "    except ValueError:\n"
            "        raise\n"
        )
    }
    assert "ValueError" in escapes_of(sources, "pkg.mod.f")


def test_swallowing_handler_removes_the_type():
    sources = {
        "pkg.mod": (
            "def f():\n"
            "    try:\n"
            "        raise ValueError('v')\n"
            "    except ValueError:\n"
            "        return None\n"
        )
    }
    assert escapes_of(sources, "pkg.mod.f") == frozenset()


def test_handler_body_raise_is_not_caught_by_sibling_clauses():
    sources = {
        "pkg.mod": (
            "def f():\n"
            "    try:\n"
            "        raise ValueError('v')\n"
            "    except ValueError as exc:\n"
            "        raise KeyError('k') from exc\n"
            "    except KeyError:\n"
            "        return None\n"
        )
    }
    assert "KeyError" in escapes_of(sources, "pkg.mod.f")


def test_else_body_is_not_guarded_by_the_handlers():
    sources = {
        "pkg.mod": (
            "def f():\n"
            "    try:\n"
            "        x = 1\n"
            "    except ValueError:\n"
            "        return None\n"
            "    else:\n"
            "        raise ValueError('late')\n"
        )
    }
    assert "ValueError" in escapes_of(sources, "pkg.mod.f")


def test_pure_try_finally_does_not_narrow():
    sources = {
        "pkg.mod": (
            "def f():\n"
            "    try:\n"
            "        raise ValueError('v')\n"
            "    finally:\n"
            "        cleanup = True\n"
        )
    }
    assert "ValueError" in escapes_of(sources, "pkg.mod.f")


def test_reraise_survives_an_enclosing_finally():
    sources = {
        "pkg.mod": (
            "def f():\n"
            "    try:\n"
            "        try:\n"
            "            raise ValueError('v')\n"
            "        except ValueError:\n"
            "            raise\n"
            "    finally:\n"
            "        done = True\n"
        )
    }
    assert "ValueError" in escapes_of(sources, "pkg.mod.f")


def test_recursive_call_cycle_converges():
    sources = {
        "pkg.mod": (
            "def f(n):\n"
            "    if n <= 0:\n"
            "        raise ValueError('done')\n"
            "    return g(n - 1)\n"
            "\n"
            "\n"
            "def g(n):\n"
            "    return f(n)\n"
        )
    }
    program = ProgramContext.from_sources(sources, exc_config())
    assert "ValueError" in program.exceptions.escape_set("pkg.mod.f")
    assert "ValueError" in program.exceptions.escape_set("pkg.mod.g")


def test_tuple_except_clause_catches_every_member():
    sources = {
        "pkg.mod": (
            "def f(flag):\n"
            "    try:\n"
            "        if flag:\n"
            "            raise KeyError('k')\n"
            "        raise ValueError('v')\n"
            "    except (KeyError, ValueError):\n"
            "        return None\n"
        )
    }
    assert escapes_of(sources, "pkg.mod.f") == frozenset()


def test_module_level_tuple_constant_expands_in_except():
    sources = {
        "pkg.mod": (
            "_RETRYABLE = (KeyError, ValueError)\n"
            "\n"
            "\n"
            "def f():\n"
            "    try:\n"
            "        raise KeyError('k')\n"
            "    except _RETRYABLE:\n"
            "        return None\n"
        )
    }
    assert escapes_of(sources, "pkg.mod.f") == frozenset()


def test_cross_module_subclass_is_caught_by_imported_base():
    sources = {
        "pkg.errors": ERRORS,
        "pkg.mod": (
            "from pkg.errors import Base, Child\n"
            "\n"
            "\n"
            "def f():\n"
            "    try:\n"
            "        raise Child('c')\n"
            "    except Base:\n"
            "        return None\n"
        ),
    }
    assert escapes_of(sources, "pkg.mod.f") == frozenset()


def test_reexport_chain_canonicalizes_to_the_defining_class():
    sources = {
        "pkg.errors": ERRORS,
        "pkg.shim": "from pkg.errors import Base as Base\n",
        "pkg.mod": (
            "from pkg.shim import Base\n"
            "\n"
            "\n"
            "def f():\n"
            "    raise Base('b')\n"
        ),
    }
    assert escapes_of(sources, "pkg.mod.f") == {"pkg.errors.Base"}


def test_factory_return_annotation_types_the_raise():
    sources = {
        "pkg.errors": ERRORS,
        "pkg.mod": (
            "from pkg.errors import Child\n"
            "\n"
            "\n"
            "def make(detail) -> Child:\n"
            "    return Child(detail)\n"
            "\n"
            "\n"
            "def f():\n"
            "    raise make('boom')\n"
        ),
    }
    assert escapes_of(sources, "pkg.mod.f") == {"pkg.errors.Child"}


def test_bound_variable_reraise_carries_the_caught_types():
    sources = {
        "pkg.mod": (
            "def f():\n"
            "    try:\n"
            "        raise ValueError('v')\n"
            "    except ValueError as exc:\n"
            "        cleanup = True\n"
            "        raise exc\n"
        )
    }
    assert "ValueError" in escapes_of(sources, "pkg.mod.f")


def test_unknown_raise_is_only_caught_by_broad_handlers():
    narrow = {
        "pkg.mod": (
            "def f(errs):\n"
            "    try:\n"
            "        raise errs[0]\n"
            "    except ValueError:\n"
            "        return None\n"
        )
    }
    assert UNKNOWN in escapes_of(narrow, "pkg.mod.f")
    broad = {
        "pkg.mod": (
            "def f(errs):\n"
            "    try:\n"
            "        raise errs[0]\n"
            "    except Exception:\n"
            "        return None\n"
        )
    }
    assert escapes_of(broad, "pkg.mod.f") == frozenset()


def test_awaiting_a_foreign_future_contributes_unknown():
    sources = {
        "pkg.mod": (
            "async def f(fut):\n"
            "    return await fut\n"
        )
    }
    assert UNKNOWN in escapes_of(sources, "pkg.mod.f")


@pytest.mark.skipif(
    sys.version_info < (3, 11), reason="except* requires Python 3.11"
)
def test_except_star_clauses_narrow_like_plain_except():
    sources = {
        "pkg.mod": (
            "def f():\n"
            "    try:\n"
            "        raise ValueError('v')\n"
            "    except* ValueError:\n"
            "        return None\n"
        )
    }
    assert escapes_of(sources, "pkg.mod.f") == frozenset()


# ---------------------------------------------------------------------------
# EXC1001 — swallowed exceptions
# ---------------------------------------------------------------------------

def test_exc1001_flags_silent_broad_except():
    findings = run_rules(
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    assert "EXC1001" in codes(findings)


def test_exc1001_spares_logging_reraising_and_replacing_handlers():
    logging_handler = run_rules(
        "import logging\n"
        "logger = logging.getLogger(__name__)\n"
        "\n"
        "\n"
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        logger.exception('boom')\n"
    )
    reraising = run_rules(
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        raise\n"
    )
    replacing = run_rules(
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception as exc:\n"
        "        raise ValueError('wrapped') from exc\n"
    )
    for findings in (logging_handler, reraising, replacing):
        assert "EXC1001" not in codes(findings)


def test_exc1001_ignores_narrow_handlers():
    findings = run_rules(
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except ValueError:\n"
        "        pass\n"
    )
    assert "EXC1001" not in codes(findings)


def test_exc1001_honours_configured_observer_calls():
    source = (
        "def f(metrics):\n"
        "    try:\n"
        "        work()\n"
        "    except Exception as exc:\n"
        "        metrics.record_failure(exc)\n"
    )
    silent = run_rules(source)
    assert "EXC1001" in codes(silent)
    observed = run_rules(
        source, exception_log_functions=("record_failure",)
    )
    assert "EXC1001" not in codes(observed)


# ---------------------------------------------------------------------------
# EXC1002 — boundary escapes
# ---------------------------------------------------------------------------

def test_exc1002_flags_unsanctioned_escape():
    findings = run_rules(
        "def helper():\n"
        "    raise KeyError('k')\n"
        "\n"
        "\n"
        "def entry():\n"
        "    return helper()\n",
        exception_boundaries={"pkg.mod.entry": ("ValueError",)},
    )
    exc1002 = [f for f in findings if f.code == "EXC1002"]
    assert exc1002 and "KeyError" in exc1002[0].message


def test_exc1002_sanctions_cover_subclasses():
    findings = run_rules(
        "from pkg.errors import Child\n"
        "\n"
        "\n"
        "def entry():\n"
        "    raise Child('c')\n",
        extra_sources={"pkg.errors": ERRORS},
        exception_boundaries={"pkg.mod.entry": ("pkg.errors.Base",)},
    )
    assert "EXC1002" not in codes(findings)


def test_exc1002_exempts_non_exception_control_flow():
    findings = run_rules(
        "def entry():\n"
        "    raise SystemExit(0)\n",
        exception_boundaries={"pkg.mod.entry": ()},
    )
    assert "EXC1002" not in codes(findings)


# ---------------------------------------------------------------------------
# EXC1003 — dead handlers
# ---------------------------------------------------------------------------

def test_exc1003_flags_handler_the_body_cannot_raise():
    findings = run_rules(
        "from pkg.errors import Child\n"
        "\n"
        "\n"
        "def safe():\n"
        "    return 1\n"
        "\n"
        "\n"
        "def f():\n"
        "    try:\n"
        "        return safe()\n"
        "    except Child:\n"
        "        return None\n",
        extra_sources={"pkg.errors": ERRORS},
    )
    assert "EXC1003" in codes(findings)


def test_exc1003_spares_handlers_kept_alive_by_callee_escapes():
    findings = run_rules(
        "from pkg.errors import Child\n"
        "\n"
        "\n"
        "def risky():\n"
        "    raise Child('c')\n"
        "\n"
        "\n"
        "def f():\n"
        "    try:\n"
        "        return risky()\n"
        "    except Child:\n"
        "        return None\n",
        extra_sources={"pkg.errors": ERRORS},
    )
    assert "EXC1003" not in codes(findings)


def test_exc1003_never_claims_builtin_clauses_dead():
    # Any library call may raise any builtin; only program-defined classes
    # are provable.
    findings = run_rules(
        "def f():\n"
        "    try:\n"
        "        return compute()\n"
        "    except KeyError:\n"
        "        return None\n"
    )
    assert "EXC1003" not in codes(findings)


def test_exc1003_skips_regions_with_untypeable_raises():
    findings = run_rules(
        "from pkg.errors import Child\n"
        "\n"
        "\n"
        "def f(errs):\n"
        "    try:\n"
        "        raise errs[0]\n"
        "    except Child:\n"
        "        return None\n",
        extra_sources={"pkg.errors": ERRORS},
    )
    assert "EXC1003" not in codes(findings)


# ---------------------------------------------------------------------------
# EXC1004 — untyped raises
# ---------------------------------------------------------------------------

def test_exc1004_flags_bare_runtime_error_and_names_the_taxonomy():
    findings = run_rules(
        "def f():\n"
        "    raise RuntimeError('oops')\n",
        exception_taxonomy_root="pkg.errors.Base",
        extra_sources={"pkg.errors": ERRORS},
    )
    exc1004 = [f for f in findings if f.code == "EXC1004"]
    assert exc1004
    assert "pkg.errors.Base" in exc1004[0].hint


def test_exc1004_spares_typed_raises_and_out_of_scope_modules():
    typed = run_rules(
        "from pkg.errors import Child\n"
        "\n"
        "\n"
        "def f():\n"
        "    raise Child('c')\n",
        extra_sources={"pkg.errors": ERRORS},
    )
    assert "EXC1004" not in codes(typed)
    out_of_scope = run_rules(
        "def f():\n"
        "    raise RuntimeError('oops')\n",
        exception_packages=("pkg.core",),
    )
    assert "EXC1004" not in codes(out_of_scope)


# ---------------------------------------------------------------------------
# EXC1005 — context loss
# ---------------------------------------------------------------------------

def test_exc1005_flags_from_less_raise_in_handler():
    findings = run_rules(
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except KeyError:\n"
        "        raise ValueError('wrapped')\n"
    )
    assert "EXC1005" in codes(findings)


def test_exc1005_accepts_from_exc_and_from_none():
    chained = run_rules(
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except KeyError as exc:\n"
        "        raise ValueError('wrapped') from exc\n"
    )
    suppressed = run_rules(
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except KeyError:\n"
        "        raise ValueError('wrapped') from None\n"
    )
    for findings in (chained, suppressed):
        assert "EXC1005" not in codes(findings)


def test_exc1005_allows_reraising_the_bound_variable():
    findings = run_rules(
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except KeyError as exc:\n"
        "        cleanup = True\n"
        "        raise exc\n"
    )
    assert "EXC1005" not in codes(findings)


# ---------------------------------------------------------------------------
# The real repository's certificate
# ---------------------------------------------------------------------------

def test_real_repo_exception_certificate_is_clean():
    program = build_program(REPO_ROOT / "src")
    assert program is not None
    certificate = build_report(program)["exception_certificate"]
    assert certificate["clean"] is True
    assert certificate["findings"] == []
    # Every configured boundary is mapped, and every Exception-family
    # escape it leaks is covered by its sanction list.
    boundaries = certificate["boundaries"]
    assert set(boundaries) == set(program.config.exception_boundaries)
    for entry in boundaries.values():
        assert entry["declared"] is True
        for escape in entry["escapes"]:
            if escape["failure"]:
                assert escape["sanctioned"]
    # The taxonomy gate: no raise in the package is untypeable.
    assert certificate["taxonomy"]["raises"]["unknown"] == 0
