"""Runtime thread sanitizer: recording, locksets, violations, gating.

The static ASYNC9xx pass is tested in ``test_repolint_concurrency``; this
suite exercises its dynamic twin — the ``REPRO_TSAN`` recorder the chaos
suite arms.  Every test restores the sanitizer's process-global state so
the rest of the run is unaffected.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import tsan
from repro.analysis.tsan import TrackedLock


@pytest.fixture
def armed():
    """Sanitizer on, state empty; restored afterwards."""
    previous = tsan.set_tsan_enabled(True)
    tsan.reset()
    yield
    tsan.reset()
    tsan.set_tsan_enabled(previous)


def in_thread(fn) -> None:
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join()


class Owner:
    pass


# ---------------------------------------------------------------------------
# Gating
# ---------------------------------------------------------------------------

def test_disabled_sanitizer_records_nothing():
    previous = tsan.set_tsan_enabled(False)
    tsan.reset()
    try:
        owner = Owner()
        tsan.note(owner, "attr", write=True)
        tsan.register_loop()
        assert tsan.violations() == []
    finally:
        tsan.set_tsan_enabled(previous)


def test_set_tsan_enabled_returns_previous_value():
    previous = tsan.set_tsan_enabled(True)
    try:
        assert tsan.set_tsan_enabled(previous) is True
    finally:
        tsan.set_tsan_enabled(previous)


def test_tracked_lock_is_a_real_lock_when_disabled():
    lock = TrackedLock("test")
    with lock:
        assert lock.locked()
    assert not lock.locked()


# ---------------------------------------------------------------------------
# Violation detection
# ---------------------------------------------------------------------------

def test_cross_context_unlocked_write_is_a_violation(armed):
    owner = Owner()
    tsan.register_loop()
    tsan.note(owner, "current")
    in_thread(lambda: tsan.note(owner, "current", write=True))
    found = tsan.violations()
    assert len(found) == 1
    violation = found[0]
    assert violation.attr == "current"
    assert violation.contexts == frozenset({"loop", "thread"})
    assert "no common lock" in violation.describe()


def test_common_lock_suppresses_violation(armed):
    owner = Owner()
    lock = TrackedLock("swap")
    tsan.register_loop()
    with lock:
        tsan.note(owner, "current")

    def writer():
        with lock:
            tsan.note(owner, "current", write=True)

    in_thread(writer)
    assert tsan.violations() == []


def test_partial_locking_is_still_a_violation(armed):
    owner = Owner()
    lock = TrackedLock("swap")
    tsan.register_loop()
    tsan.note(owner, "current")  # loop-side read takes no lock

    def writer():
        with lock:
            tsan.note(owner, "current", write=True)

    in_thread(writer)
    assert len(tsan.violations()) == 1


def test_read_only_cross_context_traffic_is_clean(armed):
    owner = Owner()
    tsan.register_loop()
    tsan.note(owner, "current")
    in_thread(lambda: tsan.note(owner, "current"))
    assert tsan.violations() == []


def test_single_context_writes_are_clean(armed):
    owner = Owner()
    tsan.register_loop()
    tsan.note(owner, "current", write=True)
    tsan.note(owner, "current")
    assert tsan.violations() == []


def test_distinct_owners_do_not_merge(armed):
    first, second = Owner(), Owner()
    tsan.register_loop()
    tsan.note(first, "current", write=True)
    in_thread(lambda: tsan.note(second, "current", write=True))
    assert tsan.violations() == []


def test_reset_clears_records_and_loop_registration(armed):
    owner = Owner()
    tsan.register_loop()
    tsan.note(owner, "current", write=True)
    in_thread(lambda: tsan.note(owner, "current"))
    assert tsan.violations()
    tsan.reset()
    assert tsan.violations() == []


# ---------------------------------------------------------------------------
# Lock bookkeeping
# ---------------------------------------------------------------------------

def test_tracked_lock_releases_name_on_exit(armed):
    owner = Owner()
    lock = TrackedLock("swap")
    with lock:
        pass
    tsan.register_loop()
    tsan.note(owner, "current", write=True)  # after the with: lockset empty
    in_thread(lambda: tsan.note(owner, "current"))
    assert len(tsan.violations()) == 1


def test_held_locks_are_per_thread(armed):
    owner = Owner()
    lock = TrackedLock("swap")
    tsan.register_loop()

    def writer():
        # This thread never acquired the lock; its lockset must be empty
        # even while the main thread holds it.
        tsan.note(owner, "current", write=True)

    with lock:
        tsan.note(owner, "current")
        in_thread(writer)
    assert len(tsan.violations()) == 1
