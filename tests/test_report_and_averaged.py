"""Tests for the report orchestrator and multi-run averaging."""

import numpy as np
import pytest

from repro.experiments import report
from repro.experiments.runner import run_method_averaged


class TestReportOrchestrator:
    def test_artefact_inventory_is_complete(self):
        names = [name for name, _ in report._artefacts("smoke", ("water-quality",))]
        assert names == [
            "Table I", "Fig. 5", "Fig. 6", "Table II",
            "Fig. 7", "Table III", "Fig. 8", "Fig. 9",
        ]

    def test_build_report_assembles_sections(self, monkeypatch, tmp_path):
        def fake_artefacts(scale, datasets):
            yield "Table I", lambda: "ROWS-1"
            yield "Fig. 5", lambda: "ROWS-5"

        monkeypatch.setattr(report, "_artefacts", fake_artefacts)
        output = tmp_path / "r.md"
        text = report.build_report("smoke", ("water-quality",), output)
        assert "## Table I" in text and "ROWS-1" in text
        assert "## Fig. 5" in text and "ROWS-5" in text
        assert output.read_text() == text

    def test_report_runs_one_real_artefact(self):
        """Smoke-run the cheapest artefact through the real path."""
        sections = dict(report._artefacts("mini", ("water-quality",)))
        rendered = sections["Table I"]()
        assert "yeast" in rendered


class TestRunMethodAveraged:
    def test_averages_over_runs(self):
        result = run_method_averaged(
            "k-best", "water-quality", scale="smoke", n_runs=2
        )
        assert result.method == "k-best"
        assert 0.0 <= result.avg_f1 <= 1.0
        assert result.per_task  # first run's detail retained

    def test_single_run_equals_direct(self):
        averaged = run_method_averaged(
            "all-features", "water-quality", scale="smoke", n_runs=1, base_seed=3
        )
        from repro.experiments.runner import load_suite, run_method

        suite = load_suite("water-quality", "smoke")
        train, test = suite.split_rows(0.7, np.random.default_rng(3))
        direct = run_method("all-features", train, test, scale="smoke", seed=3)
        assert averaged.avg_f1 == pytest.approx(direct.avg_f1)

    def test_invalid_runs_raise(self):
        with pytest.raises(ValueError, match="n_runs"):
            run_method_averaged("k-best", "water-quality", scale="smoke", n_runs=0)
