"""Structured logger: stdlib interop, bound run ids, JSON formatting."""

from __future__ import annotations

import io
import json
import logging

from repro.obs.log import JsonFormatter, configure_json, get_logger


class TestStructuredLogger:
    def test_logs_through_stdlib_with_context(self, caplog):
        logger = get_logger("serve.test")
        with caplog.at_level(logging.WARNING, logger="repro.serve.test"):
            logger.warning("retry %d failed", 3, reason="timeout")
        (record,) = caplog.records
        assert record.name == "repro.serve.test"
        assert record.getMessage() == "retry 3 failed"
        assert record.component == "serve.test"
        assert record.fields == {"reason": "timeout"}

    def test_bind_stamps_run_id(self, caplog):
        logger = get_logger("rollout.test").bind("run-42")
        with caplog.at_level(logging.INFO, logger="repro.rollout.test"):
            logger.info("starting")
        (record,) = caplog.records
        assert record.run_id == "run-42"

    def test_disabled_level_pays_no_formatting(self, caplog):
        logger = get_logger("quiet.test")
        with caplog.at_level(logging.ERROR, logger="repro.quiet.test"):
            logger.debug("never seen %s", object())
        assert caplog.records == []

    def test_exception_carries_exc_info(self, caplog):
        logger = get_logger("errors.test")
        with caplog.at_level(logging.ERROR, logger="repro.errors.test"):
            try:
                raise ValueError("boom")
            except ValueError:
                logger.exception("it broke", stage="merge")
        (record,) = caplog.records
        assert record.exc_info is not None
        assert record.exc_info[0] is ValueError
        assert record.fields == {"stage": "merge"}


class TestJsonOutput:
    def test_formatter_emits_one_json_object(self):
        record = logging.LogRecord(
            "repro.serve", logging.WARNING, __file__, 1, "queue at %d", (9,), None
        )
        record.component = "serve"
        record.run_id = "r1"
        record.fields = {"depth": 9}
        payload = json.loads(JsonFormatter().format(record))
        assert payload == {
            "level": "WARNING",
            "logger": "repro.serve",
            "message": "queue at 9",
            "component": "serve",
            "run_id": "r1",
            "fields": {"depth": 9},
        }

    def test_configure_json_round_trip(self):
        stream = io.StringIO()
        handler = configure_json(stream, level=logging.INFO)
        try:
            get_logger("json.test").info("hello", n=1)
        finally:
            logging.getLogger("repro").removeHandler(handler)
        payload = json.loads(stream.getvalue())
        assert payload["message"] == "hello"
        assert payload["component"] == "json.test"
        assert payload["fields"] == {"n": 1}
