"""Tests for the Dueling DQN agent."""

import numpy as np
import pytest

from repro.rl.agent import DuelingDQNAgent
from repro.rl.schedules import ConstantSchedule
from repro.rl.transition import Transition


def make_agent(epsilon=0.0, gamma=0.9, **kwargs):
    return DuelingDQNAgent(
        state_dim=4,
        n_actions=2,
        hidden=[16],
        gamma=gamma,
        lr=1e-2,
        epsilon_schedule=ConstantSchedule(epsilon),
        target_sync_every=5,
        rng=np.random.default_rng(0),
        **kwargs,
    )


def transition_between(state, action, reward, next_state, done, return_to_go=None):
    return Transition(
        state=np.asarray(state, dtype=float),
        action=action,
        reward=reward,
        next_state=np.asarray(next_state, dtype=float),
        done=done,
        return_to_go=return_to_go,
    )


class TestActionSelection:
    def test_greedy_returns_argmax(self):
        agent = make_agent(epsilon=1.0)  # epsilon ignored when greedy
        state = np.ones(4)
        q = agent.q_values(state)[0]
        if q[0] != q[1]:
            assert agent.act(state, greedy=True) == int(np.argmax(q))

    def test_full_exploration_is_uniform(self):
        agent = make_agent(epsilon=1.0)
        actions = [agent.act(np.ones(4)) for _ in range(300)]
        rate = np.mean(actions)
        assert 0.35 < rate < 0.65

    def test_zero_epsilon_is_deterministic_when_q_separated(self):
        agent = make_agent(epsilon=0.0)
        # Train Q to prefer action 1 strongly in this state.
        batch = [
            transition_between(np.ones(4), 1, 10.0, np.zeros(4), True),
            transition_between(np.ones(4), 0, -10.0, np.zeros(4), True),
        ]
        for _ in range(100):
            agent.update(batch)
        actions = {agent.act(np.ones(4)) for _ in range(20)}
        assert actions == {1}


class TestUpdates:
    def test_update_reduces_td_error(self):
        agent = make_agent()
        batch = [transition_between(np.ones(4), 1, 1.0, np.zeros(4), True)]
        first_loss = agent.update(batch)
        for _ in range(50):
            last_loss = agent.update(batch)
        assert last_loss < first_loss

    def test_terminal_target_is_reward(self):
        agent = make_agent()
        batch = [transition_between(np.ones(4), 1, 0.7, np.zeros(4), True)]
        for _ in range(300):
            agent.update(batch)
        assert agent.q_values(np.ones(4))[0][1] == pytest.approx(0.7, abs=0.05)

    def test_bootstrap_propagates_future_value(self):
        agent = make_agent(gamma=1.0)
        terminal = transition_between([0, 1, 0, 0], 1, 1.0, [0, 0, 1, 0], True)
        first = transition_between([1, 0, 0, 0], 1, 0.0, [0, 1, 0, 0], False)
        for _ in range(400):
            agent.update([terminal, first])
        # Q(first, 1) should approach gamma * max_a Q(second) ≈ 1.0.
        assert agent.q_values(np.array([1.0, 0, 0, 0]))[0][1] > 0.5

    def test_return_to_go_tightens_target(self):
        agent = make_agent(gamma=1.0)
        batch = [
            transition_between(np.ones(4), 1, 0.0, np.zeros(4), False, return_to_go=2.0)
        ]
        for _ in range(300):
            agent.update(batch)
        # Bootstrap alone would give ~0 (untrained next-state Q ≈ 0); the
        # stored return lifts the target to 2.
        assert agent.q_values(np.ones(4))[0][1] > 1.0

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            make_agent().update([])

    def test_update_counts(self):
        agent = make_agent()
        batch = [transition_between(np.ones(4), 0, 0.0, np.zeros(4), True)]
        agent.update(batch)
        assert agent.update_count == 1


class TestTargetNetwork:
    def test_target_sync_after_interval(self):
        agent = make_agent()
        batch = [transition_between(np.ones(4), 1, 1.0, np.zeros(4), True)]
        for _ in range(agent.target_sync_every):
            agent.update(batch)
        online = agent.online.forward(np.ones((1, 4)))
        target = agent.target.forward(np.ones((1, 4)))
        np.testing.assert_allclose(online, target)

    def test_target_differs_between_syncs(self):
        agent = make_agent()
        batch = [transition_between(np.ones(4), 1, 1.0, np.zeros(4), True)]
        agent.update(batch)  # one update, no sync yet (sync at 5)
        online = agent.online.forward(np.ones((1, 4)))
        target = agent.target.forward(np.ones((1, 4)))
        assert not np.allclose(online, target)


class TestPolicySnapshots:
    def test_save_load_round_trip(self):
        agent = make_agent()
        batch = [transition_between(np.ones(4), 1, 1.0, np.zeros(4), True)]
        for _ in range(20):
            agent.update(batch)
        snapshot = agent.save_policy()
        q_before = agent.q_values(np.ones(4)).copy()
        for _ in range(20):
            agent.update([transition_between(np.ones(4), 1, -5.0, np.zeros(4), True)])
        assert not np.allclose(agent.q_values(np.ones(4)), q_before)
        agent.load_policy(snapshot)
        np.testing.assert_allclose(agent.q_values(np.ones(4)), q_before)

    def test_load_resyncs_target(self):
        agent = make_agent()
        snapshot = agent.save_policy()
        agent.update([transition_between(np.ones(4), 1, 1.0, np.zeros(4), True)])
        agent.load_policy(snapshot)
        np.testing.assert_allclose(
            agent.online.forward(np.ones((1, 4))),
            agent.target.forward(np.ones((1, 4))),
        )


class TestValidation:
    def test_invalid_gamma(self):
        with pytest.raises(ValueError, match="gamma"):
            make_agent(gamma=1.5)

    def test_double_dqn_flag_changes_bootstrap(self):
        plain = make_agent(double_dqn=False)
        double = make_agent(double_dqn=True)
        batch = [transition_between(np.ones(4), 1, 1.0, np.full(4, 0.5), False)]
        # Just exercising both paths; they should both train without error.
        assert np.isfinite(plain.update(batch))
        assert np.isfinite(double.update(batch))
