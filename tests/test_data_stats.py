"""Tests for correlation / mutual-information statistics."""

import numpy as np
import pytest

from repro.data.stats import (
    feature_redundancy_matrix,
    mutual_information_scores,
    pearson_representation,
)


class TestPearsonRepresentation:
    def test_perfect_correlation_is_one(self, rng):
        x = rng.standard_normal((100, 1))
        representation = pearson_representation(x, x[:, 0])
        assert representation[0] == pytest.approx(1.0)

    def test_sign_is_dropped(self, rng):
        x = rng.standard_normal((100, 1))
        representation = pearson_representation(x, -x[:, 0])
        assert representation[0] == pytest.approx(1.0)

    def test_constant_feature_scores_zero(self, rng):
        x = np.hstack([np.ones((50, 1)), rng.standard_normal((50, 1))])
        representation = pearson_representation(x, rng.integers(0, 2, 50))
        assert representation[0] == 0.0

    def test_constant_labels_score_zero(self, rng):
        representation = pearson_representation(
            rng.standard_normal((50, 3)), np.ones(50)
        )
        np.testing.assert_array_equal(representation, 0.0)

    def test_independent_feature_scores_low(self, rng):
        x = rng.standard_normal((2000, 1))
        labels = rng.integers(0, 2, 2000)
        assert pearson_representation(x, labels)[0] < 0.1

    def test_output_in_unit_interval(self, rng):
        representation = pearson_representation(
            rng.standard_normal((60, 8)), rng.integers(0, 2, 60)
        )
        assert np.all((representation >= 0) & (representation <= 1))

    def test_row_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="row mismatch"):
            pearson_representation(rng.standard_normal((5, 2)), np.zeros(6))


class TestMutualInformation:
    def test_informative_feature_beats_noise(self, rng):
        labels = rng.integers(0, 2, 1000)
        informative = labels + 0.3 * rng.standard_normal(1000)
        noise = rng.standard_normal(1000)
        scores = mutual_information_scores(
            np.column_stack([informative, noise]), labels
        )
        assert scores[0] > scores[1] + 0.1

    def test_non_negative(self, rng):
        scores = mutual_information_scores(
            rng.standard_normal((200, 5)), rng.integers(0, 2, 200)
        )
        assert np.all(scores >= 0.0)

    def test_single_class_labels_score_zero(self, rng):
        scores = mutual_information_scores(rng.standard_normal((50, 3)), np.ones(50))
        np.testing.assert_array_equal(scores, 0.0)

    def test_invalid_bins_raise(self, rng):
        with pytest.raises(ValueError, match="n_bins"):
            mutual_information_scores(
                rng.standard_normal((10, 2)), np.zeros(10), n_bins=1
            )

    def test_perfectly_predictive_feature_near_label_entropy(self, rng):
        labels = rng.integers(0, 2, 2000)
        scores = mutual_information_scores(labels[:, None].astype(float), labels)
        entropy = -np.mean(labels) * np.log(np.mean(labels)) - (
            1 - np.mean(labels)
        ) * np.log(1 - np.mean(labels))
        assert scores[0] == pytest.approx(entropy, rel=0.05)


class TestRedundancyMatrix:
    def test_diagonal_is_one(self, rng):
        matrix = feature_redundancy_matrix(rng.standard_normal((100, 4)))
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_symmetric(self, rng):
        matrix = feature_redundancy_matrix(rng.standard_normal((100, 4)))
        np.testing.assert_allclose(matrix, matrix.T)

    def test_duplicated_column_fully_redundant(self, rng):
        x = rng.standard_normal((100, 1))
        matrix = feature_redundancy_matrix(np.hstack([x, x]))
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_constant_column_zero(self, rng):
        x = np.hstack([np.ones((50, 1)), rng.standard_normal((50, 1))])
        matrix = feature_redundancy_matrix(x)
        assert matrix[0, 1] == 0.0
        assert matrix[0, 0] == 0.0
