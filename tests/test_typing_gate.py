"""Strict-typing gate: ``mypy --strict src/repro`` must pass.

mypy is a dev-only dependency (``pip install -e .[dev]``); when it is not
installed — e.g. in the minimal runtime container — the gate is skipped
here and enforced by the CI lint job instead, which always installs it.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

mypy_available = importlib.util.find_spec("mypy") is not None


@pytest.mark.skipif(not mypy_available, reason="mypy is not installed")
def test_mypy_strict_src_repro():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "src/repro"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
